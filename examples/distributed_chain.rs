//! Distributed supply-chain tracking: multiple warehouses, per-site
//! inference, and state migration — the scenario of Sections 4 and 5.3.
//!
//! Pallets move through a three-warehouse supply chain. Each warehouse runs
//! its own inference engine; when objects are dispatched to the next
//! warehouse their collapsed inference state (one co-location weight per
//! candidate container) travels with them. The example compares the
//! communication cost and containment accuracy of that strategy against the
//! "ship nothing" and "ship every raw reading to a central server" extremes.
//!
//! ```text
//! cargo run --release --example distributed_chain
//! ```

use rfid::core::InferenceConfig;
use rfid::dist::{DistributedConfig, DistributedDriver, MigrationStrategy};
use rfid::sim::{ChainConfig, SupplyChainSimulator, WarehouseConfig};
use rfid::types::Epoch;

fn main() {
    // 1. Simulate a 3-warehouse chain for 40 minutes with occasional
    //    misplaced items.
    let chain_config = ChainConfig {
        warehouse: WarehouseConfig::default()
            .with_length(2400)
            .with_read_rate(0.8)
            .with_items_per_case(6)
            .with_anomaly_interval(120)
            .with_seed(3),
        num_warehouses: 3,
        transit_secs: 120,
        fanout: 2,
    };
    let chain = SupplyChainSimulator::new(chain_config).generate();
    println!(
        "simulated {} sites, {} readings, {} objects, {} inter-site transfers",
        chain.sites.len(),
        chain.total_readings(),
        chain.objects().len(),
        chain.transfers.len()
    );

    // 2. Run the same trace under three strategies.
    let end = Epoch(chain.sites[0].meta.length);
    for strategy in [
        MigrationStrategy::None,
        MigrationStrategy::CollapsedWeights,
        MigrationStrategy::Centralized,
    ] {
        let outcome = DistributedDriver::new(DistributedConfig {
            strategy,
            inference: InferenceConfig::default(),
            ..Default::default()
        })
        .run(&chain);

        let objects = chain.objects();
        let correct = objects
            .iter()
            .filter(|&&o| outcome.container_of(o) == chain.containment.container_at(o, end))
            .count();
        println!(
            "{:<24} containment accuracy {:>5.1}%   bytes transferred {:>12}",
            format!("{strategy:?}"),
            100.0 * correct as f64 / objects.len() as f64,
            outcome.comm.total_bytes()
        );
    }
    println!(
        "\nCollapsed-weight migration approaches the centralized accuracy while \
         moving orders of magnitude fewer bytes — the paper's headline distributed result."
    );
}
