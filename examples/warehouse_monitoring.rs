//! Warehouse monitoring with containment anomalies: the misplaced-item
//! scenario that motivates the paper's containment queries and change-point
//! detection.
//!
//! A warehouse runs for an hour while items are occasionally moved into the
//! wrong case ("misplaced"). The inference engine detects the containment
//! changes from the raw RFID stream alone; the example compares the detected
//! changes against the injected ground truth and also shows how the SMURF*
//! baseline fares on the same trace.
//!
//! ```text
//! cargo run --release --example warehouse_monitoring
//! ```

use rfid::core::{InferenceConfig, InferenceEngine};
use rfid::eval::{changes_f_measure, metrics::ReportedChange, ChangeMatchConfig};
use rfid::sim::{WarehouseConfig, WarehouseSimulator};
use rfid::smurf::{SmurfStar, SmurfStarConfig};
use rfid::types::Epoch;

fn main() {
    // 1. Simulate one hour with an item moved to a wrong case every 2 minutes.
    let config = WarehouseConfig::default()
        .with_length(3600)
        .with_read_rate(0.8)
        .with_items_per_case(8)
        .with_anomaly_interval(120)
        .with_seed(11);
    let trace = WarehouseSimulator::new(config).generate();
    let true_changes = trace.truth.containment.changes();
    println!(
        "simulated {} readings, {} true containment changes",
        trace.readings.len(),
        true_changes.len()
    );

    // 2. Stream the readings through the engine with change-point detection
    //    enabled (threshold calibrated offline by sampling from the model).
    let mut engine = InferenceEngine::new(
        InferenceConfig::default().with_recent_history(500),
        trace.read_rates.clone(),
    );
    let mut readings = trace.readings.clone();
    let mut cursor = 0usize;
    let all = readings.readings().to_vec();
    for t in 0..=trace.meta.length {
        let now = Epoch(t);
        while cursor < all.len() && all[cursor].time == now {
            engine.observe(all[cursor]);
            cursor += 1;
        }
        if let Some(report) = engine.step(now) {
            for change in &report.changes {
                println!(
                    "  detected: {} moved to {:?} around {}",
                    change.object, change.new_container, change.change_at
                );
            }
        }
    }
    engine.run_inference(Epoch(trace.meta.length));

    // 3. Score the detections.
    let reported: Vec<ReportedChange> = engine
        .detected_changes()
        .iter()
        .map(|c| ReportedChange {
            object: c.object,
            change_at: c.change_at,
            new_container: c.new_container,
        })
        .collect();
    let pr = changes_f_measure(true_changes, &reported, ChangeMatchConfig::default());
    println!(
        "RFINFER change detection: precision {:.0}%, recall {:.0}%, F-measure {:.0}%",
        100.0 * pr.precision,
        100.0 * pr.recall,
        pr.f_measure()
    );

    // 4. The SMURF* baseline on the same trace, for comparison.
    let smurf = SmurfStar::new(SmurfStarConfig::default()).run(&trace.readings);
    let smurf_reported: Vec<ReportedChange> = smurf
        .changes
        .iter()
        .map(|c| ReportedChange {
            object: c.object,
            change_at: c.change_at,
            new_container: c.new_container,
        })
        .collect();
    let smurf_pr = changes_f_measure(true_changes, &smurf_reported, ChangeMatchConfig::default());
    println!(
        "SMURF* change detection:  precision {:.0}%, recall {:.0}%, F-measure {:.0}%",
        100.0 * smurf_pr.precision,
        100.0 * smurf_pr.recall,
        smurf_pr.f_measure()
    );
}
