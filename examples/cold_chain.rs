//! Cold-chain monitoring: the hybrid-query scenario that motivates Query 1
//! of the paper.
//!
//! Temperature-sensitive products travel through a warehouse whose first
//! shelf is a freezer. The inference engine turns noisy RFID readings into
//! `(time, tag, location, container)` events; the query processor joins them
//! with the temperature stream and raises an alert for every product that
//! sits outside the freezer at positive temperatures for longer than the
//! allowed exposure window.
//!
//! ```text
//! cargo run --release --example cold_chain
//! ```

use rfid::core::{InferenceConfig, InferenceEngine};
use rfid::query::{ExposureQuery, QueryProcessor};
use rfid::sim::{TemperatureModel, WarehouseConfig, WarehouseSimulator};
use rfid::types::{Epoch, LocationId};

fn main() {
    // 1. Simulate the warehouse. Shelf 0 (location 2) is the freezer.
    let config = WarehouseConfig::default()
        .with_length(1200)
        .with_read_rate(0.85)
        .with_items_per_case(8)
        .with_seed(7);
    let trace = WarehouseSimulator::new(config).generate();
    let freezer_location = LocationId(2);
    let temperature = TemperatureModel::new([freezer_location]);
    let sensor_stream = temperature.generate(trace.meta.num_locations, Epoch(trace.meta.length));

    // 2. Inference: raw readings -> enriched events.
    let mut engine = InferenceEngine::new(
        InferenceConfig::default().without_change_detection(),
        trace.read_rates.clone(),
    );
    engine.observe_batch(&trace.readings);
    engine.run_inference(Epoch(trace.meta.length));

    // 3. Register Query 1 with a 10-minute exposure window so alerts fire
    //    within the simulated horizon (the paper's 6-hour window behaves the
    //    same way on longer traces).
    let mut processor = QueryProcessor::new();
    processor.register(ExposureQuery {
        duration_secs: 600,
        ..ExposureQuery::q1([])
    });
    for reading in sensor_stream {
        processor.on_sensor(reading);
    }

    // 4. Replay the enriched event stream through the query processor.
    let mut alerts = Vec::new();
    for t in (0..=trace.meta.length).step_by(10) {
        for mut event in engine.events_at(Epoch(t)) {
            event.property = Some("temperature-sensitive".to_string());
            alerts.extend(processor.on_event(&event));
        }
    }

    println!(
        "raised {} exposure alert(s) over {} monitored objects",
        alerts.len(),
        trace.objects().len()
    );
    for alert in alerts.iter().take(5) {
        let max_temp = alert
            .readings
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  {}: exposed since {} (alerted at {}, max {:.1} °C over {} readings)",
            alert.tag,
            alert.since,
            alert.at,
            max_temp,
            alert.readings.len()
        );
    }
}
