//! Quickstart: simulate a small warehouse, run RFINFER over its noisy RFID
//! stream, and print the inferred containment and locations next to the
//! ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rfid::core::{InferenceConfig, InferenceEngine};
use rfid::sim::{WarehouseConfig, WarehouseSimulator};
use rfid::types::Epoch;

fn main() {
    // 1. Simulate 15 minutes of a warehouse: pallets of cases arrive at the
    //    entry door, cases are scanned on the belt, stored on shelves and
    //    dispatched; readers miss ~20% of interrogations.
    let config = WarehouseConfig::default()
        .with_length(900)
        .with_read_rate(0.8)
        .with_items_per_case(10)
        .with_seed(42);
    let trace = WarehouseSimulator::new(config).generate();
    println!(
        "simulated {} raw readings for {} items in {} cases",
        trace.readings.len(),
        trace.objects().len(),
        trace.containers().len()
    );

    // 2. Stream the readings through the inference engine, which runs RFINFER
    //    every 300 seconds.
    let mut engine = InferenceEngine::new(
        InferenceConfig::default().without_change_detection(),
        trace.read_rates.clone(),
    );
    engine.observe_batch(&trace.readings);
    let report = engine.run_inference(Epoch(trace.meta.length));
    println!(
        "RFINFER converged in {} iteration(s), {:?} wall-clock",
        report.outcome.iterations, report.duration
    );

    // 3. Compare the inferred containment with the ground truth.
    let end = Epoch(trace.meta.length);
    let objects = trace.objects();
    let correct = objects
        .iter()
        .filter(|&&o| engine.container_of(o) == trace.truth.container_at(o, end))
        .count();
    println!(
        "containment: {}/{} objects assigned to their true case ({:.1}% correct)",
        correct,
        objects.len(),
        100.0 * correct as f64 / objects.len() as f64
    );

    // 4. Show a few enriched events — the (time, tag, location, container)
    //    stream that the query processor consumes.
    println!("\nsample enriched events at t=600:");
    for event in engine.events_at(Epoch(600)).into_iter().take(5) {
        println!(
            "  {} at {} in {:?}",
            event.tag,
            event.location,
            event.container.map(|c| c.to_string())
        );
    }
}
