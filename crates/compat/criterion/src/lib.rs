//! Offline stand-in for `criterion`.
//!
//! Implements the `criterion_group!` / `criterion_main!` macros and the
//! `Criterion` / `BenchmarkGroup` / `Bencher` / `BenchmarkId` API surface the
//! workspace's benches use. Measurement is deliberately simple — a short
//! warm-up followed by a fixed number of timed samples whose median is
//! printed — but the timings are real, so `cargo bench` produces usable
//! relative numbers and `cargo bench --no-run` type-checks the benches.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark (overridable per group).
const DEFAULT_SAMPLES: usize = 10;

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark named after a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }

    /// A benchmark with a function name and parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// The display name of the benchmark.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    median: Option<Duration>,
}

impl Bencher {
    /// Time the routine: one warm-up call, then the configured number of
    /// samples; the median is reported.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.median = Some(times[times.len() / 2]);
    }
}

fn run_bench(full_name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        median: None,
    };
    f(&mut bencher);
    match bencher.median {
        Some(t) => println!("bench: {full_name:<60} median {t:>12.2?} ({samples} samples)"),
        None => println!("bench: {full_name:<60} (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        let full = format!("{}/{}", self.name, id.into_name());
        run_bench(&full, self.samples, |b| f(b));
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        let full = format!("{}/{}", self.name, id.name);
        run_bench(&full, self.samples, |b| f(b, input));
        self
    }

    /// Finish the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Apply command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_bench(name, DEFAULT_SAMPLES, |b| f(b));
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            _criterion: self,
        }
    }
}

/// Prevent the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
