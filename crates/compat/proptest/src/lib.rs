//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro, `prop_assert!` / `prop_assert_eq!`, integer and float range
//! strategies, `Just`, `any::<bool>()`, tuple strategies, `prop_oneof!`,
//! `.prop_map`, and the `prop::collection` / `prop::option` helpers.
//!
//! Unlike the real crate there is no shrinking: each test draws a fixed
//! number of deterministic pseudo-random cases (seeded from the test name),
//! which keeps failures reproducible without a persistence file.

/// Number of random cases each `proptest!` test executes.
pub const NUM_CASES: usize = 64;

/// Deterministic test RNG (SplitMix64).
pub mod test_runner {
    /// A small deterministic generator for drawing test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test name.
        pub fn deterministic(name: &str) -> TestRng {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform u64 below `span`.
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// A uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategies: recipes for generating random values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map the generated value through a function.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of options.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end);
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end);
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    );
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// A size specification: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end);
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for vectors of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for B-tree maps.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            let mut map = BTreeMap::new();
            // draw extra attempts so duplicate keys still usually reach the
            // requested minimum size
            for _ in 0..n * 2 {
                if map.len() >= n {
                    break;
                }
                map.insert(self.key.sample(rng), self.value.sample(rng));
            }
            if map.is_empty() && self.size.lo > 0 {
                map.insert(self.key.sample(rng), self.value.sample(rng));
            }
            map
        }
    }

    /// `prop::collection::btree_map(key, value, size)`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for optional values (`None` about a quarter of the time).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Run each property in the block over [`NUM_CASES`] sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategies = ($($crate::__check_strategy($strat),)*);
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    #[allow(unused_variables, unused_mut)]
                    let ($(mut $arg,)*) = {
                        let ($(ref $arg,)*) = __strategies;
                        ($($crate::strategy::Strategy::sample($arg, &mut __rng),)*)
                    };
                    $body
                }
            }
        )*
    };
}

/// Identity helper giving `proptest!` a place to constrain its inputs.
pub fn __check_strategy<S: strategy::Strategy>(s: S) -> S {
    s
}

/// Assert inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module alias used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}
