//! Offline stand-in for `rand_chacha`: an actual ChaCha block cipher core
//! with 8 rounds, exposed through the `rand` stand-in's traits. Seeding from
//! a `u64` expands the seed with SplitMix64 (the same scheme `rand_core`'s
//! default `seed_from_u64` uses), so streams are deterministic, well mixed
//! and independent across nearby seeds.

use rand::{RngCore, SeedableRng};

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input state (constants, key, counter, nonce).
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means exhausted.
    cursor: usize,
    /// Spare half of a split u64 request.
    spare: Option<u32>,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // one double round: a column round plus a diagonal round
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = working;
        self.cursor = 0;
        // 64-bit block counter in words 12..14
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut sm);
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&key);
        // counter and nonce start at zero
        let mut rng = ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
            spare: None,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if let Some(word) = self.spare.take() {
            return word;
        }
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        self.spare = None;
        if self.cursor >= 15 {
            self.refill();
        }
        let lo = self.block[self.cursor] as u64;
        let hi = self.block[self.cursor + 1] as u64;
        self.cursor += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_samples_land_in_range_with_sane_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let x = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..=7);
            assert!((3..=7).contains(&v));
            let w = rng.gen_range(0usize..5);
            assert!(w < 5);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate} far from 0.25");
    }
}
