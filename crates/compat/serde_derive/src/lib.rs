//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! crates.io is unreachable in this build environment, so there is no
//! `syn`/`quote`; the input item is parsed directly from the
//! `proc_macro::TokenStream`. Only the shapes this workspace actually uses
//! are supported: non-generic structs (named, tuple, unit) and enums whose
//! variants are unit, newtype, tuple or struct variants. Encoding follows
//! serde's defaults: structs become objects, newtype structs are transparent,
//! unit variants become strings, and data variants are externally tagged
//! (`{"Variant": ...}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Tuple fields; the arity.
    Tuple(usize),
    /// Named field identifiers.
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum ItemKind {
    Struct { fields: Fields },
    Enum { variants: Vec<Variant> },
}

#[derive(Debug)]
struct Item {
    name: String,
    /// Simple type-parameter names (`T`, `U`); bounds and lifetimes are not
    /// supported by the stand-in.
    generics: Vec<String>,
    kind: ItemKind,
}

impl Item {
    /// `impl<T: serde::Trait, ...> serde::Trait for Name<T, ...>` header
    /// pieces: the impl generics and the type path.
    fn impl_header(&self, bound: &str) -> (String, String) {
        if self.generics.is_empty() {
            (String::new(), self.name.clone())
        } else {
            let params: Vec<String> = self
                .generics
                .iter()
                .map(|g| format!("{g}: serde::{bound}"))
                .collect();
            (
                format!("<{}>", params.join(", ")),
                format!("{}<{}>", self.name, self.generics.join(", ")),
            )
        }
    }
}

/// Skip `#[...]` attributes (including doc comments) at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) at the cursor.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Count top-level comma-separated entries in a token list, treating `<...>`
/// as nesting (parentheses/brackets/braces arrive pre-grouped).
fn count_top_level_entries(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut entries = 0usize;
    let mut saw_token = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                saw_token = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                saw_token = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                entries += 1;
                saw_token = false;
            }
            _ => saw_token = true,
        }
    }
    if saw_token {
        entries += 1;
    }
    entries
}

/// Extract the field names from a named-field body (the inside of `{ ... }`).
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        i = skip_vis(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        names.push(name.to_string());
        i += 1;
        // expect ':', then skip the type until a top-level ','
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

fn parse_enum_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Tuple(count_top_level_entries(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Named(parse_named_fields(&inner))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // skip an optional discriminant and the trailing comma
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1i32;
            while depth > 0 {
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                    Some(TokenTree::Ident(id)) if depth == 1 => generics.push(id.to_string()),
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    Some(other) => panic!(
                        "serde_derive stand-in supports only plain type parameters ({name}: {other:?})"
                    ),
                    None => panic!("serde_derive: unterminated generics on {name}"),
                }
                i += 1;
            }
        }
    }
    let kind = match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(count_top_level_entries(&inner))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unsupported struct body {other:?}"),
            };
            ItemKind::Struct { fields }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    parse_enum_variants(&inner)
                }
                other => panic!("serde_derive: unsupported enum body {other:?}"),
            };
            ItemKind::Enum { variants }
        }
        other => panic!("serde_derive: cannot derive for '{other}'"),
    };
    Item {
        name,
        generics,
        kind,
    }
}

fn ser_named_fields(prefix: &str, names: &[String]) -> String {
    let mut out = String::from("serde::Value::Obj(vec![");
    for n in names {
        out.push_str(&format!(
            "(\"{n}\".to_string(), serde::Serialize::serialize(&{prefix}{n})),"
        ));
    }
    out.push_str("])");
    out
}

fn de_named_fields(path: &str, names: &[String], obj_expr: &str) -> String {
    let mut out = format!("Ok({path} {{");
    for n in names {
        out.push_str(&format!("{n}: serde::field({obj_expr}, \"{n}\")?,"));
    }
    out.push_str("})");
    out
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let (impl_generics, ty) = item.impl_header("Serialize");
    let code = match &item.kind {
        ItemKind::Struct { fields } => {
            let body = match fields {
                Fields::Unit => "serde::Value::Null".to_string(),
                Fields::Tuple(1) => "serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("serde::Value::Arr(vec![{}])", items.join(","))
                }
                Fields::Named(names) => ser_named_fields("self.", names),
            };
            format!(
                "impl{impl_generics} serde::Serialize for {ty} {{\n\
                     fn serialize(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        ItemKind::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::Str(\"{vname}\".to_string()),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::serialize({b})"))
                                .collect();
                            format!("serde::Value::Arr(vec![{}])", items.join(","))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => serde::Value::Obj(vec![(\"{vname}\".to_string(), {inner})]),",
                            binds.join(",")
                        ));
                    }
                    Fields::Named(field_names) => {
                        let inner = ser_named_fields("", field_names);
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => serde::Value::Obj(vec![(\"{vname}\".to_string(), {inner})]),",
                            field_names.join(",")
                        ));
                    }
                }
            }
            format!(
                "impl{impl_generics} serde::Serialize for {ty} {{\n\
                     fn serialize(&self) -> serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let (impl_generics, ty) = item.impl_header("Deserialize");
    let code = match &item.kind {
        ItemKind::Struct { fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::deserialize(__v)?))")
                }
                Fields::Tuple(n) => {
                    let mut out = format!(
                        "let __arr = __v.as_arr().ok_or_else(|| serde::Error::msg(\"expected array for {name}\"))?;\n\
                         if __arr.len() != {n} {{ return Err(serde::Error::msg(\"wrong tuple arity for {name}\")); }}\n\
                         Ok({name}("
                    );
                    for i in 0..*n {
                        out.push_str(&format!("serde::Deserialize::deserialize(&__arr[{i}])?,"));
                    }
                    out.push_str("))");
                    out
                }
                Fields::Named(names) => {
                    format!(
                        "let __obj = __v.as_obj().ok_or_else(|| serde::Error::msg(\"expected object for {name}\"))?;\n{}",
                        de_named_fields(name, names, "__obj")
                    )
                }
            };
            format!(
                "impl{impl_generics} serde::Deserialize for {ty} {{\n\
                     fn deserialize(__v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        ItemKind::Enum { variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}),"
                    )),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(serde::Deserialize::deserialize(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let mut arm = format!(
                            "\"{vname}\" => {{\n\
                                 let __arr = __inner.as_arr().ok_or_else(|| serde::Error::msg(\"expected array for {name}::{vname}\"))?;\n\
                                 if __arr.len() != {n} {{ return Err(serde::Error::msg(\"wrong arity for {name}::{vname}\")); }}\n\
                                 Ok({name}::{vname}("
                        );
                        for i in 0..*n {
                            arm.push_str(&format!("serde::Deserialize::deserialize(&__arr[{i}])?,"));
                        }
                        arm.push_str("))},");
                        data_arms.push_str(&arm);
                    }
                    Fields::Named(field_names) => {
                        let build = de_named_fields(&format!("{name}::{vname}"), field_names, "__obj");
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __obj = __inner.as_obj().ok_or_else(|| serde::Error::msg(\"expected object for {name}::{vname}\"))?;\n\
                                 {build}\n\
                             }},"
                        ));
                    }
                }
            }
            format!(
                "impl{impl_generics} serde::Deserialize for {ty} {{\n\
                     fn deserialize(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match __v {{\n\
                             serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(serde::Error::msg(format!(\"unknown variant '{{__other}}' of {name}\"))),\n\
                             }},\n\
                             serde::Value::Obj(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {data_arms}\n\
                                     __other => Err(serde::Error::msg(format!(\"unknown variant '{{__other}}' of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(serde::Error::msg(\"expected enum representation for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl parses")
}
