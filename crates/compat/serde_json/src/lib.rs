//! Offline stand-in for `serde_json`: JSON text round-tripping for the
//! companion `serde` stand-in's [`serde::Value`] data model.

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize().to_json())
}

/// Serialize a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(value.serialize().to_json().into_bytes())
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::deserialize(&Value::from_json(text)?)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|_| Error::msg("invalid UTF-8"))?;
    from_str(text)
}
