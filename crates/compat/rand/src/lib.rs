//! Offline stand-in for `rand`.
//!
//! Provides the traits and helpers this workspace uses — `Rng::gen_range` /
//! `gen_bool`, `SeedableRng::seed_from_u64` and `seq::SliceRandom` — with
//! uniform sampling built on a 64-bit generator core. The concrete generator
//! lives in the companion `rand_chacha` stand-in.

use std::ops::{Range, RangeInclusive};

/// The 64-bit generator core.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform u64 in `[0, span)` via 128-bit widening multiply.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_int_range!(u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                (lo + below(rng, span.wrapping_add(1)) as i64) as $t
            }
        }
    )*};
}
impl_signed_range!(i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform sample from the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Random slice helpers (`choose`, `shuffle`).
pub mod seq {
    use super::{below, Rng};

    /// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(below(rng, self.len() as u64) as usize)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}
