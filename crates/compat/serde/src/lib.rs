//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, self-contained replacement for the subset of serde it uses:
//! `#[derive(Serialize, Deserialize)]` on structs and enums, plus JSON
//! round-tripping through `serde_json`. Instead of serde's visitor
//! architecture, serialization goes through a self-describing [`Value`] tree
//! (the same data model `serde_json::Value` exposes), which is all the
//! workspace needs: wire-size accounting, state migration payloads and
//! round-trip tests.
//!
//! The derive macros are re-exported from the companion `serde_derive`
//! proc-macro crate, so `use serde::{Serialize, Deserialize};` imports both
//! the traits and the derives exactly like the real crate does.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A JSON-style number: unsigned, signed or floating.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The number as an `f64` (lossy for very large integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The number as a `u64` if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(u) => Some(u),
            Number::I(i) if i >= 0 => Some(i as u64),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The number as an `i64` if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }
}

/// The self-describing data model every `Serialize` impl produces and every
/// `Deserialize` impl consumes. Mirrors the JSON data model.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Arr(Vec<Value>),
    /// An ordered map with string keys (struct fields, map entries,
    /// externally-tagged enum variants).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// View as an object (list of `(key, value)` entries).
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// View as an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// View as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text into a value.
    pub fn from_json(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::msg("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_number(n: Number, out: &mut String) {
    use fmt::Write;
    match n {
        Number::U(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip float formatting, kept
                // float-typed in the text (serde_json prints `1.0`, not `1`)
                // so parsing re-enters the float path — otherwise `-0.0`
                // would come back as the integer `-0`, dropping the sign bit.
                let start = out.len();
                let _ = write!(out, "{f}");
                if !out[start..].contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::msg(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::msg("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::msg("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // surrogate pair
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                }
                _ => {
                    // collect the full UTF-8 sequence starting at pos-1
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        let n = if float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| Error::msg("invalid number"))?,
            )
        } else if text.starts_with('-') {
            Number::I(
                text.parse::<i64>()
                    .map_err(|_| Error::msg("invalid number"))?,
            )
        } else {
            Number::U(
                text.parse::<u64>()
                    .map_err(|_| Error::msg("invalid number"))?,
            )
        };
        Ok(Value::Num(n))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Serialization / deserialization error.
pub struct Error {
    msg: String,
}

impl Error {
    /// Create an error with a message.
    pub fn msg(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Serialize `self` into a value tree.
    fn serialize(&self) -> Value;
}

/// A type that can reconstruct itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserialize from a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t)))),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Num(Number::U(v as u64))
                } else {
                    Value::Num(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t)))),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    Value::Null => Ok(<$t>::NAN), // non-finite floats render as null
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_arr()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(value)?;
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_arr()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

/// Render a serialized map key as a JSON object key string. String keys are
/// used verbatim (like serde_json); anything else keys on its compact JSON
/// rendering (serde_json does the same for integer keys).
fn key_to_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        other => other.to_json(),
    }
}

/// Reconstruct a map key of type `K` from an object key string: first try the
/// key as a plain string, then as a parsed JSON scalar (integer keys).
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    let parsed = Value::from_json(key)?;
    K::deserialize(&parsed)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (key_to_string(k.serialize()), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_obj()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Arr(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let arr = value.as_arr().ok_or_else(|| Error::msg("expected tuple array"))?;
                let mut it = arr.iter();
                Ok(($(
                    $name::deserialize(it.next().ok_or_else(|| Error::msg("tuple too short"))?)?,
                )+))
            }
        }
    )+};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

// --------------------------------------------------------- derive plumbing

/// Look up a struct field in a serialized object; missing fields deserialize
/// from `Null` (so `Option` fields tolerate omission).
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v).map_err(|e| Error::msg(format!("field '{name}': {e}"))),
        None => {
            T::deserialize(&Value::Null).map_err(|_| Error::msg(format!("missing field '{name}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_text_round_trips() {
        let v = Value::Obj(vec![
            ("a".to_string(), Value::Num(Number::U(3))),
            (
                "b".to_string(),
                Value::Arr(vec![Value::Null, Value::Bool(true)]),
            ),
            ("c".to_string(), Value::Str("he\"llo\n".to_string())),
            ("d".to_string(), Value::Num(Number::F(-2.5))),
        ]);
        let text = v.to_json();
        let back = Value::from_json(&text).unwrap();
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn numbers_preserve_integer_precision() {
        let big = (1u64 << 62) - 1;
        let text = Value::Num(Number::U(big)).to_json();
        let back = Value::from_json(&text).unwrap();
        match back {
            Value::Num(n) => assert_eq!(n.as_u64(), Some(big)),
            _ => panic!("expected number"),
        }
    }

    #[test]
    fn map_with_integer_keys_round_trips() {
        let mut m: BTreeMap<u64, String> = BTreeMap::new();
        m.insert(7, "seven".to_string());
        m.insert(1 << 40, "big".to_string());
        let text = m.serialize().to_json();
        let back: BTreeMap<u64, String> =
            Deserialize::deserialize(&Value::from_json(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }
}
