//! # rfid-smurf
//!
//! The baseline the paper compares against: SMURF-style per-tag adaptive
//! window smoothing (Jeffery et al., "An adaptive RFID middleware for
//! supporting metaphysical data independence") extended with the heuristic
//! containment inference and containment-change detection described in
//! Appendix C.3 of the paper — the combination the paper calls **SMURF***.
//!
//! Unlike RFINFER, SMURF* smooths *over time for each tag individually* and
//! then combines the per-tag location estimates with co-location counting
//! heuristics to guess containment. The paper shows (Figures 5(c) and 5(d))
//! that this is considerably less accurate than smoothing over containment
//! relations; this crate exists so the benchmark harness can regenerate that
//! comparison.

#![warn(missing_docs)]

pub mod containment;
pub mod smoothing;

pub use containment::{SmurfStar, SmurfStarConfig, SmurfStarOutcome};
pub use smoothing::{SmurfConfig, SmurfSmoother};
