//! SMURF* — heuristic containment inference and change detection on top of
//! per-tag SMURF smoothing (Appendix C.3 of the paper).
//!
//! For every item the algorithm counts, per candidate case, how often the
//! smoothed locations of item and case coincide. Within the item's adaptive
//! window it then checks, at each potential change time `t`, whether the most
//! frequently co-located case before `t` equals the one after `t`. If they
//! differ *and* none of the top-k cases before `t` appears among the top-k
//! after `t`, a containment change is reported at `t`, and the case most
//! co-located from `t` onward becomes the item's new container.

use crate::smoothing::{SmoothedTag, SmurfConfig, SmurfSmoother};
use rfid_types::{ContainmentMap, Epoch, LocationId, ReadingBatch, TagId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the SMURF* baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmurfStarConfig {
    /// Smoothing configuration.
    pub smurf: SmurfConfig,
    /// The `k` of the top-k co-location check used before reporting a
    /// containment change.
    pub top_k: usize,
    /// Epoch stride at which co-location is sampled (sampling every epoch is
    /// unnecessary because smoothed locations change slowly).
    pub sample_stride: u32,
}

impl Default for SmurfStarConfig {
    fn default() -> SmurfStarConfig {
        SmurfStarConfig {
            smurf: SmurfConfig::default(),
            top_k: 3,
            sample_stride: 5,
        }
    }
}

/// A containment change reported by SMURF*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmurfChange {
    /// The item whose containment changed.
    pub object: TagId,
    /// The epoch at which the change was detected.
    pub change_at: Epoch,
    /// The container before the change.
    pub old_container: Option<TagId>,
    /// The container after the change.
    pub new_container: Option<TagId>,
}

/// The output of one SMURF* run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SmurfStarOutcome {
    /// Final containment estimate per item.
    pub containment: ContainmentMap,
    /// Smoothed per-tag location estimates.
    pub locations: BTreeMap<TagId, SmoothedTag>,
    /// Containment changes reported.
    pub changes: Vec<SmurfChange>,
}

impl SmurfStarOutcome {
    /// Smoothed location of a tag at an epoch. Items with a container but no
    /// own estimate inherit the container's smoothed location.
    pub fn location_of(&self, tag: TagId, t: Epoch) -> Option<LocationId> {
        if let Some(own) = self.locations.get(&tag).and_then(|s| s.location_at(t)) {
            return Some(own);
        }
        if tag.is_object() {
            if let Some(container) = self.containment.container_of(tag) {
                return self
                    .locations
                    .get(&container)
                    .and_then(|s| s.location_at(t));
            }
        }
        None
    }

    /// The inferred container of an object.
    pub fn container_of(&self, object: TagId) -> Option<TagId> {
        self.containment.container_of(object)
    }
}

/// The SMURF* baseline algorithm.
#[derive(Debug, Clone, Default)]
pub struct SmurfStar {
    config: SmurfStarConfig,
}

impl SmurfStar {
    /// Create the baseline with the given configuration.
    pub fn new(config: SmurfStarConfig) -> SmurfStar {
        SmurfStar { config }
    }

    /// Run SMURF* over a batch of raw readings.
    pub fn run(&self, batch: &ReadingBatch) -> SmurfStarOutcome {
        // 1. Per-tag smoothing.
        let mut per_tag: BTreeMap<TagId, Vec<(Epoch, Vec<LocationId>)>> = BTreeMap::new();
        for (tag, readings) in batch.clone().by_tag() {
            let mut merged: Vec<(Epoch, Vec<LocationId>)> = Vec::new();
            for (epoch, reader) in readings {
                match merged.last_mut() {
                    Some((e, readers)) if *e == epoch => readers.push(reader.location()),
                    _ => merged.push((epoch, vec![reader.location()])),
                }
            }
            per_tag.insert(tag, merged);
        }
        let smoother = SmurfSmoother::new(self.config.smurf);
        let locations = smoother.smooth_all(&per_tag);

        // 2. Per-item co-location counting over sampled epochs.
        let items: Vec<TagId> = locations
            .keys()
            .copied()
            .filter(|t| t.is_object())
            .collect();
        let cases: Vec<TagId> = locations
            .keys()
            .copied()
            .filter(|t| t.is_container())
            .collect();
        let mut containment = ContainmentMap::new();
        let mut changes = Vec::new();

        for &item in &items {
            let item_smoothed = &locations[&item];
            if item_smoothed.locations.is_empty() {
                continue;
            }
            let first = item_smoothed.locations.first().unwrap().0;
            let last = item_smoothed.locations.last().unwrap().0;
            // Per sampled epoch, which cases share the item's smoothed
            // location.
            let stride = self.config.sample_stride.max(1);
            let mut colocated_at: Vec<(Epoch, Vec<TagId>)> = Vec::new();
            let mut t = first;
            while t <= last {
                if let Some(item_loc) = item_smoothed.location_at(t) {
                    let cs: Vec<TagId> = cases
                        .iter()
                        .copied()
                        .filter(|c| locations[c].location_at(t) == Some(item_loc))
                        .collect();
                    colocated_at.push((t, cs));
                }
                t = t.plus(stride);
            }
            if colocated_at.is_empty() {
                continue;
            }

            // Overall most co-located case (default containment).
            let overall = rank_cases(colocated_at.iter().flat_map(|(_, cs)| cs.iter().copied()));
            let default_container = overall.first().copied();

            // 3. Change detection: scan candidate change times.
            let mut detected: Option<SmurfChange> = None;
            let n = colocated_at.len();
            for split in 1..n {
                let before = rank_cases(
                    colocated_at[..split]
                        .iter()
                        .flat_map(|(_, cs)| cs.iter().copied()),
                );
                let after = rank_cases(
                    colocated_at[split..]
                        .iter()
                        .flat_map(|(_, cs)| cs.iter().copied()),
                );
                let (Some(&best_before), Some(&best_after)) = (before.first(), after.first())
                else {
                    continue;
                };
                if best_before == best_after {
                    continue;
                }
                let top_before: BTreeSet<TagId> =
                    before.iter().take(self.config.top_k).copied().collect();
                let top_after: BTreeSet<TagId> =
                    after.iter().take(self.config.top_k).copied().collect();
                if top_before.is_disjoint(&top_after) {
                    detected = Some(SmurfChange {
                        object: item,
                        change_at: colocated_at[split].0,
                        old_container: Some(best_before),
                        new_container: Some(best_after),
                    });
                    break;
                }
            }

            match detected {
                Some(change) => {
                    if let Some(new_container) = change.new_container {
                        containment.set(item, new_container);
                    }
                    changes.push(change);
                }
                None => {
                    if let Some(c) = default_container {
                        containment.set(item, c);
                    }
                }
            }
        }

        SmurfStarOutcome {
            containment,
            locations,
            changes,
        }
    }
}

/// Rank cases by how often they appear in the iterator, most frequent first
/// (ties broken by tag id for determinism).
fn rank_cases(colocations: impl Iterator<Item = TagId>) -> Vec<TagId> {
    let mut counts: BTreeMap<TagId, usize> = BTreeMap::new();
    for c in colocations {
        *counts.entry(c).or_insert(0) += 1;
    }
    let mut ranked: Vec<(TagId, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.into_iter().map(|(c, _)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_types::{RawReading, ReaderId};

    fn batch(readings: Vec<(u32, TagId, u16)>) -> ReadingBatch {
        ReadingBatch::from_readings(
            readings
                .into_iter()
                .map(|(t, tag, r)| RawReading::new(Epoch(t), tag, ReaderId(r)))
                .collect(),
        )
    }

    /// Item 1 travels with case 1 (location 0 then 1); case 2 stays at 0.
    fn stable_batch() -> ReadingBatch {
        let mut readings = Vec::new();
        for t in 0..40u32 {
            let loc = if t < 20 { 0 } else { 1 };
            readings.push((t, TagId::item(1), loc));
            readings.push((t, TagId::case(1), loc));
            readings.push((t, TagId::case(2), 0));
        }
        batch(readings)
    }

    #[test]
    fn smurf_star_recovers_stable_containment() {
        let outcome = SmurfStar::default().run(&stable_batch());
        assert_eq!(outcome.container_of(TagId::item(1)), Some(TagId::case(1)));
        assert!(outcome.changes.is_empty());
        assert_eq!(
            outcome.location_of(TagId::item(1), Epoch(5)),
            Some(LocationId(0))
        );
        assert_eq!(
            outcome.location_of(TagId::item(1), Epoch(35)),
            Some(LocationId(1))
        );
    }

    #[test]
    fn smurf_star_detects_a_clear_containment_change() {
        // Item travels with case 1 at location 0 for 60 epochs, then with
        // case 2 at location 2; the cases never share a location.
        let mut readings = Vec::new();
        for t in 0..60u32 {
            readings.push((t, TagId::item(1), 0));
            readings.push((t, TagId::case(1), 0));
            readings.push((t, TagId::case(2), 2));
        }
        for t in 60..120u32 {
            readings.push((t, TagId::item(1), 2));
            readings.push((t, TagId::case(1), 0));
            readings.push((t, TagId::case(2), 2));
        }
        let outcome = SmurfStar::default().run(&batch(readings));
        assert_eq!(outcome.container_of(TagId::item(1)), Some(TagId::case(2)));
        assert_eq!(outcome.changes.len(), 1);
        let change = outcome.changes[0];
        assert_eq!(change.old_container, Some(TagId::case(1)));
        assert_eq!(change.new_container, Some(TagId::case(2)));
        assert!(change.change_at >= Epoch(40) && change.change_at <= Epoch(90));
    }

    #[test]
    fn item_with_no_colocated_case_gets_no_container() {
        let readings = (0..10u32).map(|t| (t, TagId::item(5), 0)).collect();
        let outcome = SmurfStar::default().run(&batch(readings));
        assert_eq!(outcome.container_of(TagId::item(5)), None);
        // the item still has smoothed locations of its own
        assert_eq!(
            outcome.location_of(TagId::item(5), Epoch(3)),
            Some(LocationId(0))
        );
    }

    #[test]
    fn top_k_check_suppresses_spurious_changes() {
        // The item's most co-located case flips between two cases that are
        // both always nearby (both remain in each top-k set), so no change
        // should be reported.
        let mut readings = Vec::new();
        for t in 0..80u32 {
            readings.push((t, TagId::item(1), 0));
            readings.push((t, TagId::case(1), 0));
            if t % 2 == 0 {
                readings.push((t, TagId::case(2), 0));
            }
        }
        let outcome = SmurfStar::default().run(&batch(readings));
        assert!(outcome.changes.is_empty());
        assert_eq!(outcome.container_of(TagId::item(1)), Some(TagId::case(1)));
    }

    #[test]
    fn empty_batch_produces_empty_outcome() {
        let outcome = SmurfStar::default().run(&ReadingBatch::new());
        assert!(outcome.containment.is_empty());
        assert!(outcome.locations.is_empty());
        assert!(outcome.changes.is_empty());
    }
}
