//! SMURF-style adaptive-window smoothing of individual tag streams.
//!
//! SMURF treats each RFID tag's readings as a random sample of its true
//! presence: within a window of `w` interrogation epochs a tag present the
//! whole time should be read about `w * p` times, where `p` is the
//! empirically observed read rate. The window is sized adaptively — large
//! enough that a present-but-unlucky tag is unlikely to produce zero readings
//! (completeness), yet small enough to track transitions. Within the window
//! the tag's location is estimated as the reader that read it most often.

use rfid_types::{Epoch, LocationId, TagId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the SMURF smoother.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmurfConfig {
    /// Target failure probability δ of the completeness requirement: the
    /// window must be large enough that a present tag is missed entirely with
    /// probability at most δ.
    pub delta: f64,
    /// Smallest window considered, in epochs.
    pub min_window: u32,
    /// Largest window considered, in epochs.
    pub max_window: u32,
}

impl Default for SmurfConfig {
    fn default() -> SmurfConfig {
        SmurfConfig {
            delta: 0.05,
            min_window: 5,
            max_window: 120,
        }
    }
}

impl SmurfConfig {
    /// The window size SMURF's statistical model asks for given an observed
    /// per-epoch read rate: `w* = ceil( 2 ln(1/δ) / p )`, clamped to the
    /// configured bounds.
    pub fn required_window(&self, read_rate: f64) -> u32 {
        let p = read_rate.clamp(1e-3, 1.0);
        let w = (2.0 * (1.0 / self.delta).ln() / p).ceil() as u32;
        w.clamp(self.min_window, self.max_window)
    }
}

/// Per-tag smoothed estimates produced by [`SmurfSmoother`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SmoothedTag {
    /// The adaptive window size chosen for the tag, in epochs.
    pub window: u32,
    /// Smoothed `(epoch, location)` estimates at every epoch in the span of
    /// the tag's readings (missed epochs are filled in from the surrounding
    /// window).
    pub locations: Vec<(Epoch, LocationId)>,
}

impl SmoothedTag {
    /// The smoothed location at epoch `t` (nearest estimate at or before `t`,
    /// falling back to the first one).
    pub fn location_at(&self, t: Epoch) -> Option<LocationId> {
        if self.locations.is_empty() {
            return None;
        }
        let idx = self.locations.partition_point(|&(e, _)| e <= t);
        let chosen = if idx == 0 {
            &self.locations[0]
        } else {
            &self.locations[idx - 1]
        };
        Some(chosen.1)
    }
}

/// The SMURF smoother: consumes per-tag raw observations and produces
/// per-epoch location estimates with adaptive windows.
#[derive(Debug, Clone, Default)]
pub struct SmurfSmoother {
    config: SmurfConfig,
}

impl SmurfSmoother {
    /// Create a smoother with the given configuration.
    pub fn new(config: SmurfConfig) -> SmurfSmoother {
        SmurfSmoother { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SmurfConfig {
        &self.config
    }

    /// Smooth one tag's observations. `obs` is the time-ordered list of
    /// `(epoch, readers that detected the tag)`.
    pub fn smooth_tag(&self, obs: &[(Epoch, Vec<LocationId>)]) -> SmoothedTag {
        if obs.is_empty() {
            return SmoothedTag::default();
        }
        let first = obs.first().unwrap().0;
        let last = obs.last().unwrap().0;
        let span = last.since(first) + 1;
        // Empirical read rate over the tag's active span.
        let observed_epochs = obs.len() as f64;
        let read_rate = (observed_epochs / span as f64).min(1.0);
        let window = self.config.required_window(read_rate);

        // For every epoch in the span, vote among the readings inside the
        // centred window and pick the most frequent reader.
        let mut locations = Vec::with_capacity(span as usize);
        for t in first.0..=last.0 {
            let t = Epoch(t);
            let lo = t.minus(window / 2);
            let hi = t.plus(window / 2);
            let mut votes: BTreeMap<LocationId, usize> = BTreeMap::new();
            for (e, readers) in obs {
                if *e < lo || *e > hi {
                    continue;
                }
                // weight readings closer to t slightly higher by counting the
                // exact epoch twice
                let weight = if *e == t { 2 } else { 1 };
                for r in readers {
                    *votes.entry(*r).or_insert(0) += weight;
                }
            }
            if let Some((&loc, _)) = votes.iter().max_by_key(|(_, &count)| count) {
                locations.push((t, loc));
            }
        }
        SmoothedTag { window, locations }
    }

    /// Smooth every tag in a per-tag observation map.
    pub fn smooth_all(
        &self,
        per_tag: &BTreeMap<TagId, Vec<(Epoch, Vec<LocationId>)>>,
    ) -> BTreeMap<TagId, SmoothedTag> {
        per_tag
            .iter()
            .map(|(tag, obs)| (*tag, self.smooth_tag(obs)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs_from(readings: &[(u32, u16)]) -> Vec<(Epoch, Vec<LocationId>)> {
        readings
            .iter()
            .map(|&(t, l)| (Epoch(t), vec![LocationId(l)]))
            .collect()
    }

    #[test]
    fn required_window_shrinks_with_higher_read_rate() {
        let c = SmurfConfig::default();
        assert!(c.required_window(0.9) < c.required_window(0.3));
        assert!(c.required_window(0.001) <= c.max_window);
        assert!(c.required_window(1.0) >= c.min_window);
    }

    #[test]
    fn smoothing_fills_in_missed_epochs() {
        // The tag is at location 1 throughout but missed at epochs 2 and 3.
        let obs = obs_from(&[(0, 1), (1, 1), (4, 1), (5, 1)]);
        let smoothed = SmurfSmoother::default().smooth_tag(&obs);
        assert_eq!(smoothed.location_at(Epoch(2)), Some(LocationId(1)));
        assert_eq!(smoothed.location_at(Epoch(3)), Some(LocationId(1)));
        // estimates exist for every epoch in the span
        assert_eq!(smoothed.locations.len(), 6);
    }

    #[test]
    fn smoothing_tracks_a_location_transition() {
        let mut readings: Vec<(u32, u16)> = (0..30).map(|t| (t, 0)).collect();
        readings.extend((30..60).map(|t| (t, 2)));
        let smoothed = SmurfSmoother::default().smooth_tag(&obs_from(&readings));
        assert_eq!(smoothed.location_at(Epoch(5)), Some(LocationId(0)));
        assert_eq!(smoothed.location_at(Epoch(55)), Some(LocationId(2)));
    }

    #[test]
    fn empty_observations_yield_empty_estimate() {
        let smoothed = SmurfSmoother::default().smooth_tag(&[]);
        assert!(smoothed.locations.is_empty());
        assert_eq!(smoothed.location_at(Epoch(3)), None);
    }

    #[test]
    fn smooth_all_covers_every_tag() {
        let mut map = BTreeMap::new();
        map.insert(TagId::item(1), obs_from(&[(0, 0), (1, 0)]));
        map.insert(TagId::case(1), obs_from(&[(0, 1)]));
        let all = SmurfSmoother::default().smooth_all(&map);
        assert_eq!(all.len(), 2);
        assert_eq!(
            all[&TagId::case(1)].location_at(Epoch(0)),
            Some(LocationId(1))
        );
    }
}
