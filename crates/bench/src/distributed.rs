//! Distributed experiments: Figures 5(e)–5(f), Table 5, the query-state
//! table of Section 5.4 and the scalability study of Section 5.3.

use crate::Scale;
use rfid_core::{InferenceConfig, MemoryBudget};
use rfid_dist::{
    assert_audit, DistributedConfig, DistributedDriver, DistributedOutcome, MessageKind,
    MigrationStrategy, WireFormat,
};
use rfid_eval::{Series, Table};
use rfid_query::{Alert, ExposureQuery, QueryProcessor};
use rfid_sim::{
    presets, ChainConfig, ChainTrace, ChaosPlan, FaultPlan, FaultPlanConfig, SupplyChainSimulator,
    TemperatureModel, WarehouseConfig,
};
use rfid_types::{Epoch, LocationId, ObjectEvent, TagId};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

fn chain_config(scale: Scale, read_rate: f64, anomaly: Option<u32>) -> ChainConfig {
    let mut warehouse = WarehouseConfig::default()
        .with_length(scale.change_trace_secs())
        .with_read_rate(read_rate)
        .with_items_per_case(scale.items_per_case())
        .with_cases_per_pallet(scale.cases_per_pallet())
        .with_seed(97);
    warehouse.anomaly_interval = anomaly;
    ChainConfig {
        warehouse,
        num_warehouses: scale.num_warehouses(),
        transit_secs: 120,
        fanout: 2,
    }
}

fn dist_config(strategy: MigrationStrategy) -> DistributedConfig {
    DistributedConfig {
        strategy,
        inference: InferenceConfig::default(),
        ..Default::default()
    }
}

/// Containment error rate (%) of a distributed outcome against the chain's
/// ground truth, evaluated at the end of the trace.
pub fn chain_containment_error(chain: &ChainTrace, outcome: &DistributedOutcome) -> f64 {
    let end = Epoch(chain.sites[0].meta.length);
    let objects = chain.objects();
    if objects.is_empty() {
        return 0.0;
    }
    let wrong = objects
        .iter()
        .filter(|&&o| outcome.container_of(o) != chain.containment.container_at(o, end))
        .count();
    100.0 * wrong as f64 / objects.len() as f64
}

/// Figure 5(e): distributed inference error versus read rate for the None /
/// CR (critical-region state migration) / Centralized strategies.
pub fn fig5e(scale: Scale) -> Vec<Series> {
    let mut none = Series::new("None");
    let mut cr = Series::new("CR");
    let mut central = Series::new("Centralized");
    let rates: &[f64] = match scale {
        Scale::Smoke => &[0.7, 0.9],
        _ => &[0.6, 0.7, 0.8, 0.9, 1.0],
    };
    for &rr in rates {
        let chain = SupplyChainSimulator::new(chain_config(scale, rr, Some(60))).generate();
        for (series, strategy) in [
            (&mut none, MigrationStrategy::None),
            (&mut cr, MigrationStrategy::CriticalRegionReadings),
            (&mut central, MigrationStrategy::Centralized),
        ] {
            let outcome = DistributedDriver::new(dist_config(strategy)).run(&chain);
            series.push(rr, chain_containment_error(&chain, &outcome));
        }
    }
    vec![none, cr, central]
}

/// Figure 5(f): distributed inference error versus the containment-change
/// interval.
pub fn fig5f(scale: Scale) -> Vec<Series> {
    let mut none = Series::new("None");
    let mut cr = Series::new("CR");
    let mut central = Series::new("Centralized");
    let intervals: &[u32] = match scale {
        Scale::Smoke => &[60, 120],
        _ => &[20, 40, 60, 80, 100, 120],
    };
    for &interval in intervals {
        let chain = SupplyChainSimulator::new(chain_config(scale, 0.8, Some(interval))).generate();
        for (series, strategy) in [
            (&mut none, MigrationStrategy::None),
            (&mut cr, MigrationStrategy::CriticalRegionReadings),
            (&mut central, MigrationStrategy::Centralized),
        ] {
            let outcome = DistributedDriver::new(dist_config(strategy)).run(&chain);
            series.push(interval as f64, chain_containment_error(&chain, &outcome));
        }
    }
    vec![none, cr, central]
}

/// Table 5: communication cost (bytes) of the centralized approach and of the
/// None / CR migration methods, across read rates.
pub fn table5(scale: Scale) -> Table {
    let mut table = Table::new(
        "Table 5: communication cost (bytes)",
        &[
            "read rate",
            "Centralized",
            "None",
            "CR (collapsed)",
            "CR (readings)",
        ],
    );
    let rates: &[f64] = match scale {
        Scale::Smoke => &[0.8],
        _ => &[0.6, 0.7, 0.8, 0.9],
    };
    for &rr in rates {
        let chain = SupplyChainSimulator::new(chain_config(scale, rr, None)).generate();
        let central =
            DistributedDriver::new(dist_config(MigrationStrategy::Centralized)).run(&chain);
        let none = DistributedDriver::new(dist_config(MigrationStrategy::None)).run(&chain);
        let collapsed =
            DistributedDriver::new(dist_config(MigrationStrategy::CollapsedWeights)).run(&chain);
        let readings =
            DistributedDriver::new(dist_config(MigrationStrategy::CriticalRegionReadings))
                .run(&chain);
        table.push_row(&[
            format!("{rr:.1}"),
            central.comm.total_bytes().to_string(),
            none.comm.total_bytes().to_string(),
            collapsed.comm.total_bytes().to_string(),
            readings.comm.total_bytes().to_string(),
        ]);
    }
    table
}

/// Ground-truth alerts for a chain: run the query processor over the *true*
/// object events (true location and containment) so inferred results can be
/// scored with an F-measure.
pub fn ground_truth_alerts(
    chain: &ChainTrace,
    queries: &[ExposureQuery],
    temperature: &TemperatureModel,
    properties: &BTreeMap<TagId, String>,
    stride: u32,
) -> Vec<Alert> {
    let horizon = chain.sites[0].meta.length;
    let mut processor = QueryProcessor::new();
    for q in queries {
        processor.register(q.clone());
    }
    // one shared temperature stream (all sites use the same model)
    for reading in temperature.generate(chain.sites[0].meta.num_locations, Epoch(horizon)) {
        processor.on_sensor(reading);
    }
    let objects = chain.objects();
    let mut t = 0;
    while t <= horizon {
        let now = Epoch(t);
        for &object in &objects {
            // the true location of the object at its current site
            let location: Option<LocationId> = chain
                .sites
                .iter()
                .find_map(|site| site.truth.location_at(object, now));
            let Some(location) = location else { continue };
            let container = chain.containment.container_at(object, now);
            let mut event = ObjectEvent::new(now, object, location, container);
            if let Some(prop) = properties.get(&object) {
                event.property = Some(prop.clone());
            }
            processor.on_event(&event);
        }
        t += stride;
    }
    processor.alerts().to_vec()
}

/// F-measure between two alert sets: an inferred alert matches a true alert
/// on the same object for the same query.
pub fn alert_f_measure(truth: &[Alert], inferred: &[Alert]) -> f64 {
    let truth_keys: BTreeSet<(String, TagId)> =
        truth.iter().map(|a| (a.query.clone(), a.tag)).collect();
    let inferred_keys: BTreeSet<(String, TagId)> =
        inferred.iter().map(|a| (a.query.clone(), a.tag)).collect();
    if truth_keys.is_empty() && inferred_keys.is_empty() {
        return 100.0;
    }
    let matched = truth_keys.intersection(&inferred_keys).count() as f64;
    let precision = if inferred_keys.is_empty() {
        0.0
    } else {
        matched / inferred_keys.len() as f64
    };
    let recall = if truth_keys.is_empty() {
        1.0
    } else {
        matched / truth_keys.len() as f64
    };
    if precision + recall == 0.0 {
        0.0
    } else {
        100.0 * 2.0 * precision * recall / (precision + recall)
    }
}

/// The Section 5.4 table: F-measure and query-state size (with and without
/// centroid-based sharing) for Q1 and Q2 across read rates.
pub fn table_query(scale: Scale) -> Table {
    let mut table = Table::new(
        "Section 5.4: query accuracy and state size",
        &[
            "query",
            "read rate",
            "F-measure (%)",
            "state w/o share (bytes)",
            "state w/ share (bytes)",
        ],
    );
    let rates: &[f64] = match scale {
        Scale::Smoke => &[0.8],
        _ => &[0.6, 0.7, 0.8, 0.9],
    };
    // Freezer shelves: the first shelf location of every warehouse is a
    // freezer; everything else is at room temperature. Exposure windows are
    // scaled down so alerts fire within the simulated horizon.
    let temperature = TemperatureModel::new([LocationId(2)]);
    for &rr in rates {
        let chain = SupplyChainSimulator::new(chain_config(scale, rr, None)).generate();
        let mut properties = BTreeMap::new();
        for object in chain.objects() {
            let class = if object.serial() % 2 == 0 {
                "temperature-sensitive"
            } else {
                "frozen-food"
            };
            properties.insert(object, class.to_string());
        }
        let queries = vec![
            ExposureQuery {
                duration_secs: 900,
                ..ExposureQuery::q1([])
            },
            ExposureQuery {
                duration_secs: 1200,
                temp_threshold: 10.0,
                ..ExposureQuery::q2()
            },
        ];
        let truth_alerts = ground_truth_alerts(&chain, &queries, &temperature, &properties, 10);

        let mut config = dist_config(MigrationStrategy::CollapsedWeights);
        config.queries = queries.clone();
        config.product_properties = properties;
        config.temperature = Some(temperature.clone());
        let outcome = DistributedDriver::new(config).run(&chain);

        for query in ["Q1", "Q2"] {
            let truth: Vec<Alert> = truth_alerts
                .iter()
                .filter(|a| a.query == query)
                .cloned()
                .collect();
            let inferred: Vec<Alert> = outcome
                .alerts
                .iter()
                .filter(|a| a.query == query)
                .cloned()
                .collect();
            table.push_row(&[
                query.to_string(),
                format!("{rr:.1}"),
                format!("{:.1}", alert_f_measure(&truth, &inferred)),
                outcome.query_state_unshared_bytes.to_string(),
                outcome.query_state_shared_bytes.to_string(),
            ]);
        }
    }
    table
}

/// The wide short-dwell chain of the `parallel_scaling` and
/// `incremental_inference` experiments: `sites` warehouses with short shelf
/// dwells (60–180 s) and a fast injection cadence (120 s), so pallets reach
/// the deep sites of the DAG within the horizon and every site stays busy.
/// At `Scale::Default` with 8 sites this is the CHANGES.md reference scale:
/// 2400 s, 20 items/case, 3 cases/pallet, seed 97 — 286,534 readings,
/// 2,394 transfers, 1,200 objects.
pub fn short_dwell_chain(scale: Scale, sites: u32) -> ChainTrace {
    presets::short_dwell_chain(
        match scale {
            Scale::Smoke => 1500,
            _ => 2400,
        },
        sites,
        scale.items_per_case() * 2,
        scale.cases_per_pallet(),
    )
}

/// Parallel scale-out: sequential vs sharded thread-per-site wall-clock of
/// the federated driver on a wide chain — 8–16 sites with short shelf dwells
/// and a fast injection cadence, so pallets reach the deep sites of the DAG
/// within the horizon and every site stays busy.
///
/// Both runs produce bit-identical outcomes (asserted here on containment
/// and communication totals; the full field-by-field guarantee is pinned by
/// `crates/dist/tests/parallel_determinism.rs`), so the table isolates pure
/// execution-model cost: coordination overhead on one core, scale-out on
/// many.
pub fn parallel_scaling(scale: Scale) -> Table {
    let mut table = Table::new(
        "Parallel scale-out: sequential vs thread-per-site federated driver",
        &[
            "sites",
            "readings",
            "transfers",
            "sequential (s)",
            "parallel (s)",
            "speedup",
        ],
    );
    let site_counts: &[u32] = match scale {
        Scale::Smoke => &[8],
        _ => &[8, 12, 16],
    };
    for &sites in site_counts {
        let chain = short_dwell_chain(scale, sites);
        let config = |workers: usize| DistributedConfig {
            strategy: MigrationStrategy::CollapsedWeights,
            inference: InferenceConfig::default().without_change_detection(),
            num_workers: workers,
            ..Default::default()
        };
        let started = Instant::now();
        let sequential = DistributedDriver::new(config(1)).run(&chain);
        let seq_secs = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let parallel = DistributedDriver::new(config(sites as usize)).run(&chain);
        let par_secs = started.elapsed().as_secs_f64();
        assert_eq!(
            sequential.containment, parallel.containment,
            "parallel execution must not change the outcome"
        );
        assert_eq!(sequential.comm, parallel.comm);
        table.push_row(&[
            sites.to_string(),
            chain.total_readings().to_string(),
            chain.transfers.len().to_string(),
            format!("{seq_secs:.2}"),
            format!("{par_secs:.2}"),
            format!("{:.2}x", seq_secs / par_secs.max(1e-9)),
        ]);
    }
    table
}

/// Incremental inference: per-site inference wall-clock of full per-run
/// RFINFER recomputes versus dirty-set scheduled incremental runs, at the
/// 8-site short-dwell scale, for every migration strategy.
///
/// Both modes produce bit-identical outcomes (asserted here on containment
/// and communication; `crates/dist/tests/parallel_determinism.rs` and the
/// `crates/core` proptests pin the full guarantee) — the table isolates the
/// pure cost of re-deriving evidence the dirty journal proves unchanged.
/// "posterior reuse" / "evidence reuse" are the fractions of E-step
/// posterior and point-evidence evaluations served from the cross-run cache.
pub fn incremental_inference(scale: Scale) -> Table {
    let mut table = Table::new(
        "Incremental inference: per-site inference wall-clock, full recompute vs dirty-set cached",
        &[
            "strategy",
            "runs",
            "full (s)",
            "incremental (s)",
            "speedup",
            "posterior reuse",
            "evidence reuse",
        ],
    );
    let chain = short_dwell_chain(scale, 8);
    let mut total_full = 0.0;
    let mut total_incremental = 0.0;
    for (name, strategy) in [
        ("None", MigrationStrategy::None),
        ("CR-readings", MigrationStrategy::CriticalRegionReadings),
        ("CollapsedWeights", MigrationStrategy::CollapsedWeights),
        ("Centralized", MigrationStrategy::Centralized),
    ] {
        let config = |incremental: bool| DistributedConfig {
            strategy,
            inference: InferenceConfig::default()
                .without_change_detection()
                .with_incremental(incremental),
            ..Default::default()
        };
        let full = DistributedDriver::new(config(false)).run(&chain);
        let incremental = DistributedDriver::new(config(true)).run(&chain);
        assert_eq!(
            full.containment, incremental.containment,
            "incremental inference must not change the outcome"
        );
        assert_eq!(full.comm, incremental.comm);
        assert_eq!(full.inference_runs, incremental.inference_runs);
        let full_secs = full.inference_wall.as_secs_f64();
        let incr_secs = incremental.inference_wall.as_secs_f64();
        total_full += full_secs;
        total_incremental += incr_secs;
        table.push_row(&[
            name.to_string(),
            full.inference_runs.to_string(),
            format!("{full_secs:.2}"),
            format!("{incr_secs:.2}"),
            format!("{:.2}x", full_secs / incr_secs.max(1e-9)),
            format!(
                "{:.0}%",
                100.0 * incremental.inference_stats.posterior_reuse_fraction()
            ),
            format!(
                "{:.0}%",
                100.0 * incremental.inference_stats.evidence_reuse_fraction()
            ),
        ]);
    }
    table.push_row(&[
        "TOTAL".to_string(),
        String::new(),
        format!("{total_full:.2}"),
        format!("{total_incremental:.2}"),
        format!("{:.2}x", total_full / total_incremental.max(1e-9)),
        String::new(),
        String::new(),
    ]);
    table
}

/// One per-strategy measurement of the tree-vs-dense solver comparison.
#[derive(Debug, Clone)]
pub struct InferMeasurement {
    /// Migration strategy name.
    pub strategy: &'static str,
    /// Inference runs executed across all sites (identical for both solvers).
    pub runs: usize,
    /// Summed per-site inference wall-clock of the tree reference solver,
    /// seconds (incremental mode, as in PR 3).
    pub tree_secs: f64,
    /// Summed per-site inference wall-clock of the dense-interned solver,
    /// seconds (incremental mode, the default).
    pub dense_secs: f64,
    /// Fraction of E-step posteriors served from the cross-run cache
    /// (identical for both solvers — they replay the same reuse decisions).
    pub posterior_reuse: f64,
    /// Fraction of point-evidence values served from the cache.
    pub evidence_reuse: f64,
    /// Which dense EM kernel path produced `dense_secs`: `"vector"` for the
    /// chunk-of-8 lane kernels (the default), `"scalar"` when they are
    /// disabled. Both paths are bit-identical; only the wall-clock differs.
    pub kernel: &'static str,
}

/// Dense-solver comparison at the 8-site short-dwell reference scale: for
/// every migration strategy, the summed per-site inference wall-clock of the
/// `BTreeMap`-keyed tree reference versus the dense-interned columnar solver,
/// both running incrementally (so the dense gain compounds with — rather than
/// replaces — the dirty-set cache).
///
/// Both solvers are asserted to produce identical containment, communication
/// totals, run counts and reuse counters (the full bit-identity guarantee is
/// pinned by the `dense_solver_matches_tree_reference` proptest and the dist
/// determinism suite), so the table isolates pure solver cost.
pub fn infer_measurements(scale: Scale) -> Vec<InferMeasurement> {
    let chain = short_dwell_chain(scale, 8);
    let mut rows = Vec::new();
    for (name, strategy) in [
        ("None", MigrationStrategy::None),
        ("CR-readings", MigrationStrategy::CriticalRegionReadings),
        ("CollapsedWeights", MigrationStrategy::CollapsedWeights),
        ("Centralized", MigrationStrategy::Centralized),
    ] {
        let config = |dense: bool| DistributedConfig {
            strategy,
            inference: InferenceConfig::default()
                .without_change_detection()
                .with_dense(dense),
            ..Default::default()
        };
        let tree = DistributedDriver::new(config(false)).run(&chain);
        let dense = DistributedDriver::new(config(true)).run(&chain);
        assert_eq!(
            tree.containment, dense.containment,
            "{name}: the dense solver must not change the outcome"
        );
        assert_eq!(tree.comm, dense.comm);
        assert_eq!(tree.inference_runs, dense.inference_runs);
        assert_eq!(
            tree.inference_stats, dense.inference_stats,
            "{name}: both solvers replay the same reuse decisions"
        );
        let kernel = if config(true).inference.rfinfer.vector_kernels {
            "vector"
        } else {
            "scalar"
        };
        rows.push(InferMeasurement {
            strategy: name,
            runs: tree.inference_runs,
            tree_secs: tree.inference_wall.as_secs_f64(),
            dense_secs: dense.inference_wall.as_secs_f64(),
            posterior_reuse: dense.inference_stats.posterior_reuse_fraction(),
            evidence_reuse: dense.inference_stats.evidence_reuse_fraction(),
            kernel,
        });
    }
    rows
}

/// The human-readable table of [`infer_measurements`].
pub fn inference_dense(scale: Scale) -> Table {
    inference_dense_table(&infer_measurements(scale))
}

/// Render pre-computed measurements as the comparison table (so one
/// measurement pass can feed both the table and `BENCH_infer.json`).
pub fn inference_dense_table(measurements: &[InferMeasurement]) -> Table {
    let mut table = Table::new(
        "Dense-interned solver: per-site inference wall-clock, tree reference vs dense (both incremental)",
        &[
            "strategy",
            "runs",
            "tree (s)",
            "dense (s)",
            "speedup",
            "posterior reuse",
            "evidence reuse",
        ],
    );
    let mut total_tree = 0.0;
    let mut total_dense = 0.0;
    for m in measurements {
        total_tree += m.tree_secs;
        total_dense += m.dense_secs;
        table.push_row(&[
            m.strategy.to_string(),
            m.runs.to_string(),
            format!("{:.2}", m.tree_secs),
            format!("{:.2}", m.dense_secs),
            format!("{:.2}x", m.tree_secs / m.dense_secs.max(1e-9)),
            format!("{:.0}%", 100.0 * m.posterior_reuse),
            format!("{:.0}%", 100.0 * m.evidence_reuse),
        ]);
    }
    table.push_row(&[
        "TOTAL".to_string(),
        String::new(),
        format!("{total_tree:.2}"),
        format!("{total_dense:.2}"),
        format!("{:.2}x", total_tree / total_dense.max(1e-9)),
        String::new(),
        String::new(),
    ]);
    table
}

/// The machine-readable companion of [`inference_dense`] — the contents of
/// `BENCH_infer.json`, tracked across PRs so the inference-perf trajectory
/// stays visible alongside `BENCH_wire.json`. Hand-rendered JSON (stable key
/// order, one row object per strategy).
pub fn inference_dense_json(scale: Scale, measurements: &[InferMeasurement]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str("  \"reference\": \"8-site short-dwell chain, seed 97, 2400 s\",\n");
    out.push_str("  \"metric\": \"summed per-site inference wall-clock (s), incremental runs\",\n");
    let total_tree: f64 = measurements.iter().map(|m| m.tree_secs).sum();
    let total_dense: f64 = measurements.iter().map(|m| m.dense_secs).sum();
    out.push_str(&format!(
        "  \"total_tree_secs\": {total_tree:.3}, \"total_dense_secs\": {total_dense:.3}, \
         \"total_speedup\": {:.3},\n",
        total_tree / total_dense.max(1e-9)
    ));
    out.push_str("  \"rows\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"kernel\": \"{}\", \"runs\": {}, \"tree_secs\": {:.3}, \
             \"dense_secs\": {:.3}, \"speedup\": {:.3}, \"posterior_reuse\": {:.3}, \
             \"evidence_reuse\": {:.3}}}{}\n",
            m.strategy,
            m.kernel,
            m.runs,
            m.tree_secs,
            m.dense_secs,
            m.tree_secs / m.dense_secs.max(1e-9),
            m.posterior_reuse,
            m.evidence_reuse,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One `(strategy, format)` measurement of the wire-format comparison.
#[derive(Debug, Clone)]
pub struct WireMeasurement {
    /// Migration strategy name.
    pub strategy: &'static str,
    /// Wire format the run used.
    pub format: WireFormat,
    /// Total bytes across all message kinds.
    pub total_bytes: usize,
    /// Bytes of migrated inference state.
    pub inference_bytes: usize,
    /// Bytes of forwarded raw readings (Centralized only).
    pub raw_bytes: usize,
    /// Bytes of migrated query state.
    pub query_bytes: usize,
    /// Total inter-site messages.
    pub messages: usize,
    /// Whole-run wall-clock, seconds.
    pub wall_secs: f64,
    /// Containment accuracy (%) against ground truth.
    pub accuracy: f64,
}

/// Wire-format comparison at the 8-site short-dwell reference scale: for
/// every migration strategy, the full communication bill and whole-run
/// wall-clock under `Json` versus `Binary` framing.
///
/// Both formats are asserted to produce identical containment, custody and
/// message counts (the codec is pure representation; the full guarantee is
/// pinned by `crates/dist/tests/wire_equivalence.rs`), so the table isolates
/// the bytes-on-the-wire effect of the codec.
pub fn wire_measurements(scale: Scale) -> Vec<WireMeasurement> {
    let chain = short_dwell_chain(scale, 8);
    let mut rows = Vec::new();
    for (name, strategy) in [
        ("None", MigrationStrategy::None),
        ("CR-readings", MigrationStrategy::CriticalRegionReadings),
        ("CollapsedWeights", MigrationStrategy::CollapsedWeights),
        ("Centralized", MigrationStrategy::Centralized),
    ] {
        let mut per_format: Vec<(WireFormat, DistributedOutcome)> = Vec::new();
        for format in [WireFormat::Json, WireFormat::Binary] {
            let config = DistributedConfig {
                strategy,
                inference: InferenceConfig::default().without_change_detection(),
                wire_format: format,
                ..Default::default()
            };
            let started = Instant::now();
            let outcome = DistributedDriver::new(config).run(&chain);
            let wall_secs = started.elapsed().as_secs_f64();
            rows.push(WireMeasurement {
                strategy: name,
                format,
                total_bytes: outcome.comm.total_bytes(),
                inference_bytes: outcome.comm.bytes_of_kind(MessageKind::InferenceState),
                raw_bytes: outcome.comm.bytes_of_kind(MessageKind::RawReadings),
                query_bytes: outcome.comm.bytes_of_kind(MessageKind::QueryState),
                messages: outcome.comm.total_messages(),
                wall_secs,
                accuracy: 100.0 - chain_containment_error(&chain, &outcome),
            });
            per_format.push((format, outcome));
        }
        let (_, json) = &per_format[0];
        let (_, binary) = &per_format[1];
        assert_eq!(
            json.containment, binary.containment,
            "{name}: the wire format must not change the outcome"
        );
        assert_eq!(json.comm.total_messages(), binary.comm.total_messages());
        assert_eq!(json.ons, binary.ons);
    }
    rows
}

/// The human-readable table of [`wire_measurements`].
pub fn wire_formats(scale: Scale) -> Table {
    wire_formats_table(&wire_measurements(scale))
}

/// Render pre-computed measurements as the comparison table (so one
/// measurement pass can feed both the table and `BENCH_wire.json`).
pub fn wire_formats_table(measurements: &[WireMeasurement]) -> Table {
    let mut table = Table::new(
        "Wire-format comparison: Json vs Binary framing of all cross-site traffic",
        &[
            "strategy",
            "format",
            "accuracy (%)",
            "total bytes",
            "inference",
            "raw readings",
            "query state",
            "messages",
            "run wall (s)",
        ],
    );
    for m in measurements {
        table.push_row(&[
            m.strategy.to_string(),
            m.format.to_string(),
            format!("{:.1}", m.accuracy),
            m.total_bytes.to_string(),
            m.inference_bytes.to_string(),
            m.raw_bytes.to_string(),
            m.query_bytes.to_string(),
            m.messages.to_string(),
            format!("{:.2}", m.wall_secs),
        ]);
    }
    table
}

/// The machine-readable companion of [`wire_formats`] — the contents of
/// `BENCH_wire.json`, tracked across PRs so the perf trajectory stays
/// visible. Hand-rendered JSON (stable key order, one row object per
/// strategy/format pair).
pub fn wire_formats_json(scale: Scale, measurements: &[WireMeasurement]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str("  \"reference\": \"8-site short-dwell chain, seed 97, 2400 s\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"format\": \"{}\", \"accuracy_pct\": {:.2}, \
             \"total_bytes\": {}, \"inference_bytes\": {}, \"raw_bytes\": {}, \
             \"query_bytes\": {}, \"messages\": {}, \"wall_secs\": {:.3}}}{}\n",
            m.strategy,
            m.format,
            m.accuracy,
            m.total_bytes,
            m.inference_bytes,
            m.raw_bytes,
            m.query_bytes,
            m.messages,
            m.wall_secs,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One per-strategy measurement of the fault-degradation study.
#[derive(Debug, Clone)]
pub struct FaultMeasurement {
    /// Migration strategy name.
    pub strategy: &'static str,
    /// Containment accuracy (%) of the fault-free run.
    pub baseline_accuracy: f64,
    /// Containment accuracy (%) under the lossy fault plan.
    pub faulted_accuracy: f64,
    /// Total bytes on the wire without faults.
    pub baseline_bytes: usize,
    /// Total bytes on the wire under the fault plan (duplicated deliveries
    /// are charged once; outage-dropped readings never ship).
    pub faulted_bytes: usize,
    /// Inter-site messages without faults.
    pub baseline_messages: usize,
    /// Inter-site messages under the fault plan.
    pub faulted_messages: usize,
}

impl FaultMeasurement {
    /// Accuracy lost to the faults, in percentage points.
    pub fn degradation(&self) -> f64 {
        self.baseline_accuracy - self.faulted_accuracy
    }
}

/// The full fault-degradation study: the plan that was injected plus one
/// [`FaultMeasurement`] per migration strategy.
#[derive(Debug, Clone)]
pub struct FaultStudy {
    /// Seed of the generated [`FaultPlan`].
    pub seed: u64,
    /// Checkpoint cadence of the faulted runs, seconds.
    pub checkpoint_every_secs: u32,
    /// Scheduled site crashes in the plan.
    pub crashes: usize,
    /// Scheduled reader-outage bursts in the plan.
    pub outages: usize,
    /// Per-shipment delivery-delay probability.
    pub delay_probability: f64,
    /// Per-shipment duplicate-delivery probability.
    pub duplicate_probability: f64,
    /// One row per migration strategy.
    pub measurements: Vec<FaultMeasurement>,
}

/// Fault-degradation study at the 8-site short-dwell reference scale: for
/// every migration strategy, containment accuracy and communication cost of
/// the fault-free run versus a run under a seeded lossy [`FaultPlan`] —
/// reader-outage bursts, delayed and duplicated deliveries, and site crashes
/// with real downtime, restored from periodic checkpoints.
///
/// Every faulted run is executed both sequentially and with one worker per
/// site and asserted bit-identical (containment, communication, custody), so
/// the table measures the *faults*, never the executor. Zero-downtime crashes
/// would not show up at all — the crash-consistency suite pins that recovery
/// from a checkpoint plus journal replay is lossless — so the plan uses
/// crashes with downtime, which lose the down window's readings. The
/// `Centralized` baseline runs on a single engine with no per-site volatile
/// state, so only reader outages (not crashes or delivery faults) degrade it.
pub fn fault_measurements(scale: Scale) -> FaultStudy {
    let chain = short_dwell_chain(scale, 8);
    let horizon = chain.sites[0].meta.length;
    let fault_config = FaultPlanConfig {
        crash_probability: 0.5,
        max_downtime_secs: 180,
        ..FaultPlanConfig::lossy(presets::REFERENCE_SEED, 8, horizon)
    };
    let plan = FaultPlan::generate(&fault_config);
    let checkpoint_every = 300;
    let (crashes, outages) = plan.events().iter().fold((0, 0), |(c, o), e| match e {
        rfid_sim::FaultEvent::Crash { .. } => (c + 1, o),
        rfid_sim::FaultEvent::Outage { .. } => (c, o + 1),
        _ => (c, o),
    });
    let mut measurements = Vec::new();
    for (name, strategy) in [
        ("None", MigrationStrategy::None),
        ("CR-readings", MigrationStrategy::CriticalRegionReadings),
        ("CollapsedWeights", MigrationStrategy::CollapsedWeights),
        ("Centralized", MigrationStrategy::Centralized),
    ] {
        let base_config = |workers: usize| DistributedConfig {
            strategy,
            inference: InferenceConfig::default().without_change_detection(),
            num_workers: workers,
            ..Default::default()
        };
        let faulted_config = |workers: usize| {
            base_config(workers)
                .with_checkpoints(checkpoint_every)
                .with_faults(plan.clone())
        };
        let baseline = DistributedDriver::new(base_config(1)).run(&chain);
        let faulted = DistributedDriver::new(faulted_config(1)).run(&chain);
        let faulted_parallel = DistributedDriver::new(faulted_config(8)).run(&chain);
        assert_eq!(
            faulted.containment, faulted_parallel.containment,
            "{name}: the fault plan must injure both executors identically"
        );
        assert_eq!(faulted.comm, faulted_parallel.comm);
        assert_eq!(faulted.ons, faulted_parallel.ons);
        measurements.push(FaultMeasurement {
            strategy: name,
            baseline_accuracy: 100.0 - chain_containment_error(&chain, &baseline),
            faulted_accuracy: 100.0 - chain_containment_error(&chain, &faulted),
            baseline_bytes: baseline.comm.total_bytes(),
            faulted_bytes: faulted.comm.total_bytes(),
            baseline_messages: baseline.comm.total_messages(),
            faulted_messages: faulted.comm.total_messages(),
        });
    }
    FaultStudy {
        seed: fault_config.seed,
        checkpoint_every_secs: checkpoint_every,
        crashes,
        outages,
        delay_probability: fault_config.delay_probability,
        duplicate_probability: fault_config.duplicate_probability,
        measurements,
    }
}

/// The human-readable table of [`fault_measurements`].
pub fn faults(scale: Scale) -> Table {
    faults_table(&fault_measurements(scale))
}

/// Render a pre-computed study as the degradation table (so one measurement
/// pass can feed both the table and `BENCH_faults.json`).
pub fn faults_table(study: &FaultStudy) -> Table {
    let mut table = Table::new(
        "Fault degradation: accuracy and communication under a seeded lossy fault plan",
        &[
            "strategy",
            "baseline acc (%)",
            "faulted acc (%)",
            "degradation (pp)",
            "baseline bytes",
            "faulted bytes",
            "baseline msgs",
            "faulted msgs",
        ],
    );
    for m in &study.measurements {
        table.push_row(&[
            m.strategy.to_string(),
            format!("{:.1}", m.baseline_accuracy),
            format!("{:.1}", m.faulted_accuracy),
            format!("{:.1}", m.degradation()),
            m.baseline_bytes.to_string(),
            m.faulted_bytes.to_string(),
            m.baseline_messages.to_string(),
            m.faulted_messages.to_string(),
        ]);
    }
    table
}

/// The machine-readable companion of [`faults`] — the contents of
/// `BENCH_faults.json`, tracked across PRs alongside `BENCH_wire.json` and
/// `BENCH_infer.json`. Hand-rendered JSON (stable key order, one row object
/// per strategy).
pub fn faults_json(scale: Scale, study: &FaultStudy) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str("  \"reference\": \"8-site short-dwell chain, seed 97, 2400 s\",\n");
    out.push_str(
        "  \"metric\": \"containment accuracy (%) and comm cost, fault-free vs lossy plan\",\n",
    );
    out.push_str(&format!(
        "  \"plan\": {{\"seed\": {}, \"checkpoint_every_secs\": {}, \"crashes\": {}, \
         \"outages\": {}, \"delay_probability\": {:.3}, \"duplicate_probability\": {:.3}}},\n",
        study.seed,
        study.checkpoint_every_secs,
        study.crashes,
        study.outages,
        study.delay_probability,
        study.duplicate_probability,
    ));
    out.push_str("  \"rows\": [\n");
    for (i, m) in study.measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"baseline_accuracy_pct\": {:.2}, \
             \"faulted_accuracy_pct\": {:.2}, \"degradation_pp\": {:.2}, \
             \"baseline_bytes\": {}, \"faulted_bytes\": {}, \"baseline_messages\": {}, \
             \"faulted_messages\": {}}}{}\n",
            m.strategy,
            m.baseline_accuracy,
            m.faulted_accuracy,
            m.degradation(),
            m.baseline_bytes,
            m.faulted_bytes,
            m.baseline_messages,
            m.faulted_messages,
            if i + 1 == study.measurements.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One scenario × strategy row of the transport-degradation study.
#[derive(Debug, Clone)]
pub struct DegradedMeasurement {
    /// Fault scenario label (`loss 0.00` … `loss 0.30`, `partition 0<->1`).
    pub scenario: String,
    /// Migration strategy name.
    pub strategy: &'static str,
    /// Containment accuracy (%) under the scenario.
    pub accuracy: f64,
    /// Total bytes on the wire, *including* the Control overhead of acks,
    /// retransmissions and resyncs.
    pub total_bytes: usize,
    /// Bytes charged to [`MessageKind::Control`] alone.
    pub control_bytes: usize,
    /// Payload copies sent beyond each envelope's first attempt.
    pub retransmissions: u64,
    /// Duplicate copies discarded by receiver-side dedup.
    pub duplicates_dropped: u64,
    /// Late state messages merged into an already-cold-started engine.
    pub reconciled: u64,
    /// Envelopes given up on — the destination stayed in degraded mode.
    pub abandoned: u64,
}

/// The full transport-degradation study: one row per scenario × strategy.
#[derive(Debug, Clone)]
pub struct DegradedStudy {
    /// Seed of the generated loss plans.
    pub seed: u64,
    /// The swept per-attempt loss rates.
    pub loss_rates: Vec<f64>,
    /// All measurements, scenario-major.
    pub rows: Vec<DegradedMeasurement>,
}

/// Transport-degradation study at the 8-site short-dwell reference scale:
/// containment accuracy and total communication (now including the Control
/// bytes of acks and the payload bytes of retransmissions) for every
/// migration strategy, as the per-attempt loss rate sweeps {0, 0.05, 0.15,
/// 0.30} (ack losses at half the payload rate), plus one scripted scenario
/// that partitions the 0 ↔ 1 link for the entire horizon so the destination
/// demonstrably runs in degraded mode.
///
/// As with [`fault_measurements`], every faulted run is executed both
/// sequentially and with one worker per site and asserted bit-identical —
/// the loss/ack/partition draws are pure functions of message keys, so the
/// table measures the *network*, never the executor.
pub fn degraded_measurements(scale: Scale) -> DegradedStudy {
    let chain = short_dwell_chain(scale, 8);
    let horizon = chain.sites[0].meta.length;
    let loss_rates = vec![0.0, 0.05, 0.15, 0.30];
    let mut scenarios: Vec<(String, FaultPlan)> = loss_rates
        .iter()
        .map(|&rate| {
            let plan = presets::lossy_network_plan(
                presets::REFERENCE_SEED,
                8,
                horizon,
                rate,
                rate / 2.0,
                0.0,
                0,
            );
            (format!("loss {rate:.2}"), plan)
        })
        .collect();
    scenarios.push((
        "partition 0<->1".to_string(),
        FaultPlan::scripted_partition(8, 0, 1, Epoch(0), Epoch(horizon)),
    ));
    let mut rows = Vec::new();
    for (scenario, plan) in &scenarios {
        for (name, strategy) in [
            ("None", MigrationStrategy::None),
            ("CR-readings", MigrationStrategy::CriticalRegionReadings),
            ("CollapsedWeights", MigrationStrategy::CollapsedWeights),
            ("Centralized", MigrationStrategy::Centralized),
        ] {
            let config = |workers: usize| {
                DistributedConfig {
                    strategy,
                    inference: InferenceConfig::default().without_change_detection(),
                    num_workers: workers,
                    ..Default::default()
                }
                .with_faults(plan.clone())
            };
            let faulted = DistributedDriver::new(config(1)).run(&chain);
            let faulted_parallel = DistributedDriver::new(config(8)).run(&chain);
            assert_eq!(
                faulted.containment, faulted_parallel.containment,
                "{scenario}/{name}: the loss schedule must injure both executors identically"
            );
            assert_eq!(faulted.comm, faulted_parallel.comm, "{scenario}/{name}");
            assert_eq!(faulted.ons, faulted_parallel.ons, "{scenario}/{name}");
            assert_eq!(
                faulted.transport, faulted_parallel.transport,
                "{scenario}/{name}"
            );
            rows.push(DegradedMeasurement {
                scenario: scenario.clone(),
                strategy: name,
                accuracy: 100.0 - chain_containment_error(&chain, &faulted),
                total_bytes: faulted.comm.total_bytes(),
                control_bytes: faulted.comm.bytes_of_kind(MessageKind::Control),
                retransmissions: faulted.transport.retransmissions,
                duplicates_dropped: faulted.transport.duplicates_dropped,
                reconciled: faulted.transport.reconciled,
                abandoned: faulted.transport.abandoned,
            });
        }
    }
    DegradedStudy {
        seed: presets::REFERENCE_SEED,
        loss_rates,
        rows,
    }
}

/// The human-readable table of [`degraded_measurements`].
pub fn degraded(scale: Scale) -> Table {
    degraded_table(&degraded_measurements(scale))
}

/// Render a pre-computed study as the degradation table (so one measurement
/// pass can feed both the table and `BENCH_degraded.json`).
pub fn degraded_table(study: &DegradedStudy) -> Table {
    let mut table = Table::new(
        "Transport degradation: accuracy and communication under message loss and partitions",
        &[
            "scenario",
            "strategy",
            "accuracy (%)",
            "total bytes",
            "control bytes",
            "retx",
            "dedup drops",
            "reconciled",
            "abandoned",
        ],
    );
    for m in &study.rows {
        table.push_row(&[
            m.scenario.clone(),
            m.strategy.to_string(),
            format!("{:.1}", m.accuracy),
            m.total_bytes.to_string(),
            m.control_bytes.to_string(),
            m.retransmissions.to_string(),
            m.duplicates_dropped.to_string(),
            m.reconciled.to_string(),
            m.abandoned.to_string(),
        ]);
    }
    table
}

/// The machine-readable companion of [`degraded`] — the contents of
/// `BENCH_degraded.json`, tracked across PRs alongside `BENCH_faults.json`.
/// Hand-rendered JSON (stable key order, one row object per scenario ×
/// strategy).
pub fn degraded_json(scale: Scale, study: &DegradedStudy) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str("  \"reference\": \"8-site short-dwell chain, seed 97, 2400 s\",\n");
    out.push_str(
        "  \"metric\": \"containment accuracy (%) and comm cost (incl. Control) under \
         transport loss and partitions\",\n",
    );
    out.push_str(&format!(
        "  \"plan\": {{\"seed\": {}, \"loss_rates\": [{}], \
         \"partition\": \"0<->1 for the whole horizon\"}},\n",
        study.seed,
        study
            .loss_rates
            .iter()
            .map(|r| format!("{r:.2}"))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    out.push_str("  \"rows\": [\n");
    for (i, m) in study.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"strategy\": \"{}\", \"accuracy_pct\": {:.2}, \
             \"total_bytes\": {}, \"control_bytes\": {}, \"retransmissions\": {}, \
             \"duplicates_dropped\": {}, \"reconciled\": {}, \"abandoned\": {}}}{}\n",
            m.scenario,
            m.strategy,
            m.accuracy,
            m.total_bytes,
            m.control_bytes,
            m.retransmissions,
            m.duplicates_dropped,
            m.reconciled,
            m.abandoned,
            if i + 1 == study.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One schedule × strategy row of the chaos soak.
#[derive(Debug, Clone)]
pub struct ChaosMeasurement {
    /// Index of the schedule within the soak sweep.
    pub schedule: usize,
    /// Per-schedule derived seed.
    pub seed: u64,
    /// Migration strategy name.
    pub strategy: &'static str,
    /// Containment accuracy (%) under the chaos schedule.
    pub accuracy: f64,
    /// Total bytes on the wire, including Control overhead.
    pub total_bytes: usize,
    /// Poisoned envelopes diverted into the quarantine ledger.
    pub quarantined: u64,
    /// Anti-entropy resync requests sent after quarantines.
    pub resyncs: u64,
    /// Envelopes given up on (degraded-mode cold starts).
    pub abandoned: u64,
    /// Duplicate copies discarded by receiver-side dedup.
    pub duplicates_dropped: u64,
    /// High-water mark of the per-site observation stores.
    pub memory_high_water: u64,
}

/// One budget row of the accuracy-vs-memory-budget sweep.
#[derive(Debug, Clone)]
pub struct ChaosMemoryMeasurement {
    /// Budget label (`unbounded` or the observation cap).
    pub budget: String,
    /// Containment accuracy (%) under the budget.
    pub accuracy: f64,
    /// High-water mark of the observation stores.
    pub high_water: u64,
    /// Budget-driven compaction passes.
    pub compactions: u64,
    /// Observation entries collapsed into summary priors.
    pub compacted_observations: u64,
    /// Cold evidence-cache containers evicted.
    pub evicted_cache_entries: u64,
}

/// The full chaos soak: schedule × strategy rows plus the memory sweep.
#[derive(Debug, Clone)]
pub struct ChaosStudy {
    /// Master seed the per-schedule seeds derive from.
    pub master_seed: u64,
    /// Checkpoint cadence of every run, seconds.
    pub checkpoint_every_secs: u32,
    /// One row per schedule × strategy.
    pub soak: Vec<ChaosMeasurement>,
    /// Accuracy-vs-budget rows (schedule 0, `CollapsedWeights`).
    pub memory: Vec<ChaosMemoryMeasurement>,
}

/// Chaos soak at the 8-site short-dwell reference scale: a
/// [`ChaosPlan::schedule`](rfid_sim::ChaosPlan::schedule) of seeded
/// schedules — crashes with downtime restored from checkpoints, reader
/// outages, delivery delay/duplication, transmission and ack loss, link
/// partitions, corrupted wire bytes, rogue tag readings and per-site clock
/// skew, all at once — driven through every migration strategy.
///
/// Every run is executed both sequentially and with one worker per site and
/// asserted bit-identical *including* the chaos bookkeeping (quarantine
/// entries, memory counters, per-edge conservation ledgers), and every
/// outcome must pass the full invariant-oracle battery of
/// [`rfid_dist::audit`] — a soak that cannot account for every envelope
/// aborts instead of producing a table. A second sweep holds the schedule
/// fixed and tightens the per-site memory budget, measuring what graceful
/// degradation under memory pressure costs in accuracy.
pub fn chaos_measurements(scale: Scale) -> ChaosStudy {
    let chain = short_dwell_chain(scale, 8);
    let horizon = chain.sites[0].meta.length;
    let schedules = match scale {
        Scale::Smoke => 2,
        _ => 3,
    };
    let checkpoint_every = 300;
    let plans = ChaosPlan::schedule(presets::REFERENCE_SEED, schedules, 8, horizon);
    let mut soak = Vec::new();
    for (i, chaos) in plans.iter().enumerate() {
        for (name, strategy) in [
            ("None", MigrationStrategy::None),
            ("CR-readings", MigrationStrategy::CriticalRegionReadings),
            ("CollapsedWeights", MigrationStrategy::CollapsedWeights),
            ("Centralized", MigrationStrategy::Centralized),
        ] {
            let config = |workers: usize| {
                DistributedConfig {
                    strategy,
                    inference: InferenceConfig::default().without_change_detection(),
                    num_workers: workers,
                    ..Default::default()
                }
                .with_checkpoints(checkpoint_every)
                // An unbounded budget never compacts but does track the
                // high-water observation count, so the soak table can report
                // peak memory pressure per strategy.
                .with_memory_budget(MemoryBudget::unbounded())
                .with_faults(chaos.plan().clone())
            };
            let sequential = DistributedDriver::new(config(1)).run(&chain);
            let parallel = DistributedDriver::new(config(8)).run(&chain);
            let label = format!("schedule {i}/{name}");
            assert_eq!(
                sequential.containment, parallel.containment,
                "{label}: the chaos schedule must injure both executors identically"
            );
            assert_eq!(sequential.comm, parallel.comm, "{label}");
            assert_eq!(sequential.ons, parallel.ons, "{label}");
            assert_eq!(sequential.transport, parallel.transport, "{label}");
            assert_eq!(sequential.quarantine, parallel.quarantine, "{label}");
            assert_eq!(sequential.memory, parallel.memory, "{label}");
            assert_eq!(sequential.ledgers, parallel.ledgers, "{label}");
            assert_audit(&chain, &sequential);
            assert_audit(&chain, &parallel);
            soak.push(ChaosMeasurement {
                schedule: i,
                seed: chaos.config().seed,
                strategy: name,
                accuracy: 100.0 - chain_containment_error(&chain, &sequential),
                total_bytes: sequential.comm.total_bytes(),
                quarantined: sequential.transport.quarantined,
                resyncs: sequential.transport.resyncs,
                abandoned: sequential.transport.abandoned,
                duplicates_dropped: sequential.transport.duplicates_dropped,
                memory_high_water: sequential.memory.high_water,
            });
        }
    }
    let budgets = [
        ("unbounded".to_string(), MemoryBudget::unbounded()),
        ("4096".to_string(), MemoryBudget::capped(4096)),
        ("1024".to_string(), MemoryBudget::capped(1024)),
        ("256".to_string(), MemoryBudget::capped(256)),
    ];
    let mut memory = Vec::new();
    for (label, budget) in budgets {
        let outcome = DistributedDriver::new(
            DistributedConfig {
                strategy: MigrationStrategy::CollapsedWeights,
                inference: InferenceConfig::default().without_change_detection(),
                ..Default::default()
            }
            .with_checkpoints(checkpoint_every)
            .with_faults(plans[0].plan().clone())
            .with_memory_budget(budget),
        )
        .run(&chain);
        assert_audit(&chain, &outcome);
        memory.push(ChaosMemoryMeasurement {
            budget: label,
            accuracy: 100.0 - chain_containment_error(&chain, &outcome),
            high_water: outcome.memory.high_water,
            compactions: outcome.memory.compactions,
            compacted_observations: outcome.memory.compacted_observations,
            evicted_cache_entries: outcome.memory.evicted_cache_entries,
        });
    }
    ChaosStudy {
        master_seed: presets::REFERENCE_SEED,
        checkpoint_every_secs: checkpoint_every,
        soak,
        memory,
    }
}

/// The human-readable tables of [`chaos_measurements`].
pub fn chaos(scale: Scale) -> (Table, Table) {
    let study = chaos_measurements(scale);
    (chaos_table(&study), chaos_memory_table(&study))
}

/// Render the soak rows (so one measurement pass can feed both tables and
/// `BENCH_chaos.json`).
pub fn chaos_table(study: &ChaosStudy) -> Table {
    let mut table = Table::new(
        "Chaos soak: every fault family at once, all invariant oracles asserted",
        &[
            "schedule",
            "strategy",
            "accuracy (%)",
            "total bytes",
            "quarantined",
            "resyncs",
            "abandoned",
            "dedup drops",
            "mem high-water",
        ],
    );
    for m in &study.soak {
        table.push_row(&[
            m.schedule.to_string(),
            m.strategy.to_string(),
            format!("{:.1}", m.accuracy),
            m.total_bytes.to_string(),
            m.quarantined.to_string(),
            m.resyncs.to_string(),
            m.abandoned.to_string(),
            m.duplicates_dropped.to_string(),
            m.memory_high_water.to_string(),
        ]);
    }
    table
}

/// Render the accuracy-vs-memory-budget sweep of [`chaos_measurements`].
pub fn chaos_memory_table(study: &ChaosStudy) -> Table {
    let mut table = Table::new(
        "Graceful degradation: accuracy vs per-site memory budget (schedule 0, CollapsedWeights)",
        &[
            "budget (obs)",
            "accuracy (%)",
            "high-water",
            "compactions",
            "compacted obs",
            "evicted cache",
        ],
    );
    for m in &study.memory {
        table.push_row(&[
            m.budget.clone(),
            format!("{:.1}", m.accuracy),
            m.high_water.to_string(),
            m.compactions.to_string(),
            m.compacted_observations.to_string(),
            m.evicted_cache_entries.to_string(),
        ]);
    }
    table
}

/// The machine-readable companion of [`chaos`] — the contents of
/// `BENCH_chaos.json`, tracked across PRs alongside `BENCH_degraded.json`.
/// Hand-rendered JSON (stable key order).
pub fn chaos_json(scale: Scale, study: &ChaosStudy) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str("  \"reference\": \"8-site short-dwell chain, seed 97, 2400 s\",\n");
    out.push_str(
        "  \"metric\": \"containment accuracy (%) and degradation counters under full-fault \
         chaos schedules, all invariant oracles asserted\",\n",
    );
    out.push_str(&format!(
        "  \"plan\": {{\"master_seed\": {}, \"schedules\": {}, \
         \"checkpoint_every_secs\": {}}},\n",
        study.master_seed,
        study.soak.len() / 4,
        study.checkpoint_every_secs,
    ));
    out.push_str("  \"soak\": [\n");
    for (i, m) in study.soak.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"schedule\": {}, \"seed\": {}, \"strategy\": \"{}\", \
             \"accuracy_pct\": {:.2}, \"total_bytes\": {}, \"quarantined\": {}, \
             \"resyncs\": {}, \"abandoned\": {}, \"duplicates_dropped\": {}, \
             \"memory_high_water\": {}}}{}\n",
            m.schedule,
            m.seed,
            m.strategy,
            m.accuracy,
            m.total_bytes,
            m.quarantined,
            m.resyncs,
            m.abandoned,
            m.duplicates_dropped,
            m.memory_high_water,
            if i + 1 == study.soak.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"memory\": [\n");
    for (i, m) in study.memory.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"budget\": \"{}\", \"accuracy_pct\": {:.2}, \"high_water\": {}, \
             \"compactions\": {}, \"compacted_observations\": {}, \
             \"evicted_cache_entries\": {}}}{}\n",
            m.budget,
            m.accuracy,
            m.high_water,
            m.compactions,
            m.compacted_observations,
            m.evicted_cache_entries,
            if i + 1 == study.memory.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Section 5.3 scalability: wall-clock time of distributed inference as the
/// number of items per warehouse grows, with static and mobile shelf readers.
pub fn scalability(scale: Scale) -> Table {
    let mut table = Table::new(
        "Section 5.3: scalability (distributed inference wall-clock)",
        &[
            "items per warehouse",
            "shelf readers",
            "total items",
            "inference time (s)",
        ],
    );
    let multipliers: &[u32] = match scale {
        Scale::Smoke => &[1, 2],
        _ => &[1, 2, 4],
    };
    for &m in multipliers {
        for mobile in [false, true] {
            let mut config = chain_config(scale, 0.8, None);
            config.warehouse.items_per_case = scale.items_per_case() * m;
            if mobile {
                config.warehouse.shelf_scan = rfid_sim::ShelfScanMode::Mobile {
                    dwell_secs: 10,
                    shelves_per_aisle: config.warehouse.num_shelves,
                };
            }
            let chain = SupplyChainSimulator::new(config.clone()).generate();
            let total_items = chain.objects().len();
            let started = Instant::now();
            let _ = DistributedDriver::new(dist_config(MigrationStrategy::CollapsedWeights))
                .run(&chain);
            let elapsed = started.elapsed();
            let per_site = total_items / config.num_warehouses.max(1) as usize;
            table.push_row(&[
                per_site.to_string(),
                if mobile {
                    "mobile".to_string()
                } else {
                    "static".to_string()
                },
                total_items.to_string(),
                format!("{:.2}", elapsed.as_secs_f64()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5e_cr_tracks_centralized_and_beats_none_on_average() {
        let series = fig5e(Scale::Smoke);
        let none = &series[0];
        let cr = &series[1];
        let central = &series[2];
        let mean =
            |s: &Series| s.points.iter().map(|(_, y)| y).sum::<f64>() / s.points.len() as f64;
        assert!(
            mean(cr) <= mean(none) + 5.0,
            "CR should not be much worse than None"
        );
        assert!(
            mean(cr) <= mean(central) + 10.0,
            "CR should approximate centralized"
        );
        assert!(!central.points.is_empty());
    }

    #[test]
    fn table5_centralized_dwarfs_cr_costs() {
        let table = table5(Scale::Smoke);
        assert_eq!(table.headers.len(), 5);
        for row in &table.rows {
            let central: f64 = row[1].parse().unwrap();
            let none: f64 = row[2].parse().unwrap();
            let collapsed: f64 = row[3].parse().unwrap();
            assert_eq!(none, 0.0);
            // At smoke scale the gap is tens of times; at the paper's scale
            // (32k items per warehouse) it reaches three orders of magnitude.
            assert!(
                central > 20.0 * collapsed,
                "centralized ({central}) should dwarf collapsed-weight migration ({collapsed})"
            );
        }
    }

    #[test]
    fn parallel_scaling_reports_identical_outcomes_per_row() {
        // the function itself asserts sequential == parallel on every row
        let table = parallel_scaling(Scale::Smoke);
        assert_eq!(table.headers.len(), 6);
        assert_eq!(table.rows.len(), 1);
        let row = &table.rows[0];
        assert_eq!(row[0], "8");
        assert!(row[1].parse::<usize>().unwrap() > 0, "sites must read tags");
        assert!(
            row[2].parse::<usize>().unwrap() > 0,
            "short dwells must produce transfers"
        );
        assert!(row[3].parse::<f64>().unwrap() > 0.0);
        assert!(row[4].parse::<f64>().unwrap() > 0.0);
    }

    #[test]
    fn incremental_inference_reuses_work_without_changing_outcomes() {
        // the function itself asserts full == incremental on every row
        let table = incremental_inference(Scale::Smoke);
        assert_eq!(table.headers.len(), 7);
        assert_eq!(table.rows.len(), 5, "four strategies plus the total row");
        for row in &table.rows[..4] {
            assert!(row[1].parse::<usize>().unwrap() > 0, "engines must run");
            // wall-clock cells are 2-decimal formatted and may round to 0.00
            // on fast hardware — only require them to be well-formed
            assert!(row[3].parse::<f64>().unwrap() >= 0.0);
            let reuse: f64 = row[5].trim_end_matches('%').parse().unwrap();
            assert!(
                reuse > 0.0,
                "incremental mode must reuse cached posteriors ({row:?})"
            );
        }
        assert_eq!(table.rows[4][0], "TOTAL");
    }

    #[test]
    fn inference_dense_is_outcome_identical_and_tracked() {
        // the function itself asserts tree == dense on every row
        let rows = infer_measurements(Scale::Smoke);
        assert_eq!(rows.len(), 4, "one row per strategy");
        for m in &rows {
            assert!(m.runs > 0, "engines must run");
            assert!(m.tree_secs >= 0.0 && m.dense_secs >= 0.0);
            assert!(
                m.posterior_reuse > 0.0,
                "incremental runs must reuse cached posteriors ({m:?})"
            );
        }
        let table = inference_dense_table(&rows);
        assert_eq!(table.headers.len(), 7);
        assert_eq!(table.rows.len(), 5, "four strategies plus the total row");
        assert_eq!(table.rows[4][0], "TOTAL");
        let json = inference_dense_json(Scale::Smoke, &rows);
        assert!(json.contains("\"rows\": ["));
        assert!(json.contains("\"strategy\": \"Centralized\""));
        assert!(json.contains("\"kernel\": \"vector\""));
        assert!(json.contains("\"total_speedup\""));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn wire_formats_binary_beats_json_for_every_shipping_strategy() {
        let rows = wire_measurements(Scale::Smoke);
        assert_eq!(rows.len(), 8, "four strategies x two formats");
        for pair in rows.chunks(2) {
            let (json, binary) = (&pair[0], &pair[1]);
            assert_eq!(json.strategy, binary.strategy);
            assert_eq!(json.format, WireFormat::Json);
            assert_eq!(binary.format, WireFormat::Binary);
            assert_eq!(
                json.accuracy, binary.accuracy,
                "{}: format must not move accuracy",
                json.strategy
            );
            assert_eq!(json.messages, binary.messages);
            if json.strategy == "None" {
                assert_eq!(json.total_bytes, 0);
                assert_eq!(binary.total_bytes, 0);
            } else {
                assert!(
                    binary.total_bytes * 2 <= json.total_bytes,
                    "{}: binary ({} B) must at least halve JSON ({} B)",
                    json.strategy,
                    binary.total_bytes,
                    json.total_bytes
                );
            }
        }
        let table = wire_formats_table(&rows);
        assert_eq!(table.rows.len(), 8);
        let json_doc = wire_formats_json(Scale::Smoke, &rows);
        assert!(json_doc.contains("\"rows\": ["));
        assert!(json_doc.contains("\"strategy\": \"Centralized\""));
        assert!(json_doc.trim_end().ends_with('}'));
    }

    #[test]
    fn fault_study_is_executor_deterministic_and_tracked() {
        // the function itself asserts sequential == parallel on every
        // faulted row
        let study = fault_measurements(Scale::Smoke);
        assert_eq!(study.measurements.len(), 4, "one row per strategy");
        assert!(
            study.crashes + study.outages > 0,
            "the lossy preset must schedule site-level faults"
        );
        for m in &study.measurements {
            assert!((0.0..=100.0).contains(&m.baseline_accuracy), "{m:?}");
            assert!((0.0..=100.0).contains(&m.faulted_accuracy), "{m:?}");
            if m.strategy == "None" {
                assert_eq!(m.baseline_bytes, 0);
            } else {
                assert!(m.baseline_bytes > 0, "{}: strategies must ship", m.strategy);
            }
        }
        let table = faults_table(&study);
        assert_eq!(table.headers.len(), 8);
        assert_eq!(table.rows.len(), 4);
        let json = faults_json(Scale::Smoke, &study);
        assert!(json.contains("\"plan\": {"));
        assert!(json.contains("\"strategy\": \"Centralized\""));
        assert!(json.contains("\"degradation_pp\""));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn alert_f_measure_edge_cases() {
        assert_eq!(alert_f_measure(&[], &[]), 100.0);
        let alert = Alert {
            query: "Q1".to_string(),
            tag: TagId::item(1),
            since: Epoch(0),
            at: Epoch(10),
            readings: vec![],
        };
        assert_eq!(alert_f_measure(std::slice::from_ref(&alert), &[]), 0.0);
        assert_eq!(
            alert_f_measure(std::slice::from_ref(&alert), std::slice::from_ref(&alert)),
            100.0
        );
        let other = Alert {
            tag: TagId::item(2),
            ..alert.clone()
        };
        assert!(
            (alert_f_measure(std::slice::from_ref(&alert), &[alert.clone(), other]) - 66.66).abs()
                < 1.0
        );
    }
}
