//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--scale smoke|default|paper] [experiment...]
//! ```
//!
//! With no experiment names, every experiment is run. Results are printed as
//! plain-text tables / series; `EXPERIMENTS.md` records one full run.
//!
//! The `wire` experiment additionally writes its measurements as
//! machine-readable JSON to `BENCH_wire.json` (override the path with the
//! `BENCH_WIRE_OUT` environment variable), so the communication-cost
//! trajectory is tracked across PRs; the `inference_dense` experiment does
//! the same for solver wall-clock via `BENCH_infer.json` /
//! `BENCH_INFER_OUT`, the `faults` experiment for fault-degradation
//! tables via `BENCH_faults.json` / `BENCH_FAULTS_OUT`, the `degraded`
//! experiment for transport loss/partition degradation via
//! `BENCH_degraded.json` / `BENCH_DEGRADED_OUT`, and the `chaos` soak
//! (every fault family at once, all invariant oracles asserted) via
//! `BENCH_chaos.json` / `BENCH_CHAOS_OUT`.

use rfid_bench::{
    chaos_json, chaos_measurements, chaos_memory_table, chaos_table, degraded_json,
    degraded_measurements, degraded_table, fault_measurements, faults_json, faults_table, fig4,
    fig5a, fig5b, fig5c, fig5d, fig5e, fig5f, fig6a, fig6b, incremental_inference,
    infer_measurements, inference_dense_json, inference_dense_table, parallel_scaling, scalability,
    table3, table4, table5, table_query, wire_formats_json, wire_formats_table, wire_measurements,
    Scale,
};
use rfid_eval::Series;
use std::time::Instant;

const ALL: &[&str] = &[
    "fig4",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig5d",
    "fig5e",
    "fig5f",
    "fig6a",
    "fig6b",
    "table3",
    "table4",
    "table5",
    "table_query",
    "scalability",
    "parallel_scaling",
    "incremental_inference",
    "inference_dense",
    "wire",
    "faults",
    "degraded",
    "chaos",
];

fn print_series(title: &str, series: &[Series]) {
    println!("## {title}");
    for s in series {
        println!("{s}");
    }
    println!();
}

fn run(name: &str, scale: Scale) {
    let started = Instant::now();
    match name {
        "fig4" => print_series(
            "Figure 4: point / cumulative evidence of co-location (R, NRC, NRNC)",
            &fig4(scale),
        ),
        "fig5a" => print_series(
            "Figure 5(a): error (%) vs read rate — All / W1200 / CR",
            &fig5a(scale),
        ),
        "fig5b" => print_series(
            "Figure 5(b): inference time (s) vs trace length — All / W1200 / CR",
            &fig5b(scale),
        ),
        "fig5c" => print_series(
            "Figure 5(c): change-detection F-measure (%) vs change interval — RFINFER vs SMURF*",
            &fig5c(scale),
        ),
        "fig5d" => println!("{}", fig5d(scale)),
        "fig5e" => print_series(
            "Figure 5(e): distributed error (%) vs read rate — None / CR / Centralized",
            &fig5e(scale),
        ),
        "fig5f" => print_series(
            "Figure 5(f): distributed error (%) vs change interval — None / CR / Centralized",
            &fig5f(scale),
        ),
        "fig6a" => print_series(
            "Figure 6(a): basic algorithm error (%) vs read rate",
            &fig6a(scale),
        ),
        "fig6b" => print_series(
            "Figure 6(b): containment error (%) vs trace length — All / W1200 / CR",
            &fig6b(scale),
        ),
        "table3" => println!("{}", table3(scale)),
        "table4" => println!("{}", table4(scale)),
        "table5" => println!("{}", table5(scale)),
        "table_query" => println!("{}", table_query(scale)),
        "scalability" => println!("{}", scalability(scale)),
        "parallel_scaling" => println!("{}", parallel_scaling(scale)),
        "incremental_inference" => println!("{}", incremental_inference(scale)),
        "inference_dense" => {
            let measurements = infer_measurements(scale);
            println!("{}", inference_dense_table(&measurements));
            let path =
                std::env::var("BENCH_INFER_OUT").unwrap_or_else(|_| "BENCH_infer.json".to_string());
            match std::fs::write(&path, inference_dense_json(scale, &measurements)) {
                Ok(()) => eprintln!("[inference measurements written to {path}]"),
                Err(err) => eprintln!("[failed to write {path}: {err}]"),
            }
        }
        "wire" => {
            let measurements = wire_measurements(scale);
            println!("{}", wire_formats_table(&measurements));
            let path =
                std::env::var("BENCH_WIRE_OUT").unwrap_or_else(|_| "BENCH_wire.json".to_string());
            match std::fs::write(&path, wire_formats_json(scale, &measurements)) {
                Ok(()) => eprintln!("[wire measurements written to {path}]"),
                Err(err) => eprintln!("[failed to write {path}: {err}]"),
            }
        }
        "faults" => {
            let study = fault_measurements(scale);
            println!("{}", faults_table(&study));
            let path = std::env::var("BENCH_FAULTS_OUT")
                .unwrap_or_else(|_| "BENCH_faults.json".to_string());
            match std::fs::write(&path, faults_json(scale, &study)) {
                Ok(()) => eprintln!("[fault measurements written to {path}]"),
                Err(err) => eprintln!("[failed to write {path}: {err}]"),
            }
        }
        "degraded" => {
            let study = degraded_measurements(scale);
            println!("{}", degraded_table(&study));
            let path = std::env::var("BENCH_DEGRADED_OUT")
                .unwrap_or_else(|_| "BENCH_degraded.json".to_string());
            match std::fs::write(&path, degraded_json(scale, &study)) {
                Ok(()) => eprintln!("[degradation measurements written to {path}]"),
                Err(err) => eprintln!("[failed to write {path}: {err}]"),
            }
        }
        "chaos" => {
            let study = chaos_measurements(scale);
            println!("{}", chaos_table(&study));
            println!("{}", chaos_memory_table(&study));
            let quarantined: u64 = study.soak.iter().map(|m| m.quarantined).sum();
            let resyncs: u64 = study.soak.iter().map(|m| m.resyncs).sum();
            let evicted: u64 = study.memory.iter().map(|m| m.evicted_cache_entries).sum();
            eprintln!(
                "[chaos soak: {} runs, {quarantined} envelopes quarantined, \
                 {resyncs} resyncs, {evicted} cache entries evicted under budget; \
                 every run passed all invariant oracles]",
                study.soak.len() * 2 + study.memory.len(),
            );
            let path =
                std::env::var("BENCH_CHAOS_OUT").unwrap_or_else(|_| "BENCH_chaos.json".to_string());
            match std::fs::write(&path, chaos_json(scale, &study)) {
                Ok(()) => eprintln!("[chaos measurements written to {path}]"),
                Err(err) => eprintln!("[failed to write {path}: {err}]"),
            }
        }
        other => {
            eprintln!("unknown experiment '{other}'. known: {}", ALL.join(", "));
            std::process::exit(2);
        }
    }
    eprintln!(
        "[{name} finished in {:.1}s]\n",
        started.elapsed().as_secs_f64()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Default;
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--scale" {
            let value = iter.next().unwrap_or_default();
            scale = Scale::parse(&value).unwrap_or_else(|| {
                eprintln!("unknown scale '{value}' (use smoke, default or paper)");
                std::process::exit(2);
            });
        } else if arg == "--help" || arg == "-h" {
            println!("usage: experiments [--scale smoke|default|paper] [experiment...]");
            println!("experiments: {}", ALL.join(", "));
            return;
        } else {
            names.push(arg);
        }
    }
    if names.is_empty() {
        names = ALL.iter().map(|s| s.to_string()).collect();
    }
    println!("# Reproduction experiments (scale: {scale:?})\n");
    for name in names {
        run(&name, scale);
    }
}
