//! # rfid-bench
//!
//! The benchmark harness: one function per table and figure of the paper's
//! evaluation (Section 5 and Appendix C), shared by the `experiments` binary
//! and the integration tests, plus criterion micro-benchmarks (in
//! `benches/`).
//!
//! Every experiment accepts a [`Scale`] so that the same code can run as a
//! quick smoke test (CI) or at a size closer to the paper's setup. Results
//! are returned as [`rfid_eval::Table`]s and [`rfid_eval::Series`], which the
//! binary prints and `EXPERIMENTS.md` quotes.

#![warn(missing_docs)]

pub mod distributed;
pub mod single_site;

pub use distributed::{
    chaos, chaos_json, chaos_measurements, chaos_memory_table, chaos_table, ChaosMeasurement,
    ChaosMemoryMeasurement, ChaosStudy,
};
pub use distributed::{
    degraded, degraded_json, degraded_measurements, degraded_table, DegradedMeasurement,
    DegradedStudy,
};
pub use distributed::{
    fault_measurements, faults, faults_json, faults_table, fig5e, fig5f, incremental_inference,
    infer_measurements, inference_dense, inference_dense_json, inference_dense_table,
    parallel_scaling, scalability, table5, table_query, wire_formats, wire_formats_json,
    wire_formats_table, wire_measurements, FaultMeasurement, FaultStudy, InferMeasurement,
    WireMeasurement,
};
pub use single_site::{
    evaluate_rfinfer, evaluate_smurf_star, fig4, fig5a, fig5b, fig5c, fig5d, fig6a, fig6b, table3,
    table4, SingleSiteEval,
};

use serde::{Deserialize, Serialize};

/// How large to make each experiment's workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scale {
    /// A few hundred tags, short traces — finishes in seconds; used by tests.
    Smoke,
    /// A few thousand tags, traces of the paper's length — the default for
    /// the `experiments` binary.
    Default,
    /// Closer to the paper's population sizes; takes considerably longer.
    Paper,
}

impl Scale {
    /// Items per case for this scale (the paper uses 20).
    pub fn items_per_case(self) -> u32 {
        match self {
            Scale::Smoke => 4,
            Scale::Default => 10,
            Scale::Paper => 20,
        }
    }

    /// Cases per pallet (the paper uses 5).
    pub fn cases_per_pallet(self) -> u32 {
        match self {
            Scale::Smoke => 2,
            Scale::Default => 3,
            Scale::Paper => 5,
        }
    }

    /// Default single-site trace length in seconds (the paper uses 1500 for
    /// the basic experiments).
    pub fn trace_secs(self) -> u32 {
        match self {
            Scale::Smoke => 900,
            Scale::Default => 1500,
            Scale::Paper => 1500,
        }
    }

    /// Trace length for the change-point experiments (the paper simulates 4
    /// hours).
    pub fn change_trace_secs(self) -> u32 {
        match self {
            Scale::Smoke => 1800,
            Scale::Default => 3600,
            Scale::Paper => 14_400,
        }
    }

    /// Number of warehouses for the distributed experiments (the paper uses
    /// 10).
    pub fn num_warehouses(self) -> u32 {
        match self {
            Scale::Smoke => 2,
            Scale::Default => 4,
            Scale::Paper => 10,
        }
    }

    /// Parse from a command-line string.
    pub fn parse(text: &str) -> Option<Scale> {
        match text {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_and_parseable() {
        assert!(Scale::Smoke.items_per_case() <= Scale::Default.items_per_case());
        assert!(Scale::Default.items_per_case() <= Scale::Paper.items_per_case());
        assert!(Scale::Smoke.num_warehouses() <= Scale::Paper.num_warehouses());
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("huge"), None);
    }
}
