//! Single-site experiments: Figures 4, 5(a)–5(d), 6(a)–6(b) and Tables 3–4.

use crate::Scale;
use rfid_core::{
    InferenceConfig, InferenceEngine, LikelihoodModel, Observations, RfInfer, TruncationPolicy,
};
use rfid_eval::{changes_f_measure, metrics::ReportedChange, ChangeMatchConfig, Series, Table};
use rfid_sim::{EvidenceScenario, LabConfig, LabTraceId, WarehouseConfig, WarehouseSimulator};
use rfid_smurf::{SmurfStar, SmurfStarConfig};
use rfid_types::{Epoch, TagId, Trace};
use std::time::{Duration, Instant};

/// The accuracy / cost summary of one inference method on one trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleSiteEval {
    /// Containment error rate (%) at the end of the trace.
    pub containment_error: f64,
    /// Location error rate (%) over sampled epochs.
    pub location_error: f64,
    /// F-measure (%) of containment-change detection (100 when the trace has
    /// no changes and none were reported).
    pub f_measure: f64,
    /// Total wall-clock time spent in inference.
    pub inference_time: Duration,
}

fn base_config(scale: Scale, read_rate: f64, length: u32) -> WarehouseConfig {
    WarehouseConfig::default()
        .with_length(length)
        .with_read_rate(read_rate)
        .with_items_per_case(scale.items_per_case())
        .with_cases_per_pallet(scale.cases_per_pallet())
        .with_seed(71)
}

/// Replay a trace through the streaming engine and score it against ground
/// truth.
pub fn evaluate_rfinfer(trace: &Trace, config: InferenceConfig) -> SingleSiteEval {
    let mut engine = InferenceEngine::new(config, trace.read_rates.clone());
    let mut readings = trace.readings.clone();
    readings.ensure_sorted();
    let horizon = trace.meta.length;

    let mut cursor = 0usize;
    let all = readings.readings_unordered().to_vec();
    let mut inference_time = Duration::ZERO;
    let mut location_samples: Vec<(TagId, Epoch, Option<rfid_types::LocationId>)> = Vec::new();
    let mut last_report_at = Epoch::ZERO;

    // Sample location estimates at the epochs for which the inference module
    // actually emits events — the epochs at which a tag (or its container)
    // was observed — mirroring how the paper's event stream is evaluated.
    let mut sample_locations = |report: &rfid_core::InferenceReport, from: Epoch, to: Epoch| {
        const STRIDE: usize = 5;
        for (tag, entries) in &report.outcome.tag_locations {
            for (t, _) in entries
                .iter()
                .filter(|(t, _)| *t > from && *t <= to)
                .step_by(STRIDE)
            {
                location_samples.push((*tag, *t, report.outcome.location_of(*tag, *t)));
            }
        }
        for (object, evidence) in &report.outcome.objects {
            let Some(series) = evidence.point_evidence.values().next() else {
                continue;
            };
            for (t, _) in series
                .iter()
                .filter(|(t, _)| *t > from && *t <= to)
                .step_by(STRIDE)
            {
                location_samples.push((*object, *t, report.outcome.location_of(*object, *t)));
            }
        }
    };

    for t in 0..=horizon {
        let now = Epoch(t);
        while cursor < all.len() && all[cursor].time == now {
            engine.observe(all[cursor]);
            cursor += 1;
        }
        if engine.due(now) {
            let report = engine.run_inference(now);
            inference_time += report.duration;
            sample_locations(&report, last_report_at, now);
            last_report_at = now;
        }
    }
    let final_report = engine.run_inference(Epoch(horizon));
    sample_locations(&final_report, last_report_at, Epoch(horizon));
    inference_time += final_report.duration;

    // Containment error at the end of the trace.
    let objects = trace.objects();
    let end = Epoch(horizon);
    let containment_error =
        rfid_eval::containment_error(&trace.truth, |o| engine.container_of(o), &objects, end);

    // Location error over the sampled (tag, epoch) pairs.
    let evaluated = location_samples.len().max(1);
    let wrong = location_samples
        .iter()
        .filter(|(tag, at, est)| trace.truth.location_at(*tag, *at) != *est)
        .count();
    let location_error = 100.0 * wrong as f64 / evaluated as f64;

    // Change-detection F-measure.
    let reported: Vec<ReportedChange> = engine
        .detected_changes()
        .iter()
        .map(|c| ReportedChange {
            object: c.object,
            change_at: c.change_at,
            new_container: c.new_container,
        })
        .collect();
    let f_measure = changes_f_measure(
        trace.truth.containment.changes(),
        &reported,
        ChangeMatchConfig::default(),
    )
    .f_measure();

    SingleSiteEval {
        containment_error,
        location_error,
        f_measure,
        inference_time,
    }
}

/// Run the SMURF* baseline over a trace and score it the same way.
pub fn evaluate_smurf_star(trace: &Trace) -> SingleSiteEval {
    let started = Instant::now();
    let outcome = SmurfStar::new(SmurfStarConfig::default()).run(&trace.readings);
    let inference_time = started.elapsed();

    let objects = trace.objects();
    let end = Epoch(trace.meta.length);
    let containment_error =
        rfid_eval::containment_error(&trace.truth, |o| outcome.container_of(o), &objects, end);

    // Evaluate SMURF*'s location estimates at the same kind of epochs as
    // RFINFER's: the epochs at which each tag was actually observed.
    let mut evaluated = 0usize;
    let mut wrong = 0usize;
    for (tag, observations) in trace.readings.clone().by_tag() {
        for (at, _) in observations.iter().step_by(5) {
            if let Some(true_loc) = trace.truth.location_at(tag, *at) {
                evaluated += 1;
                if outcome.location_of(tag, *at) != Some(true_loc) {
                    wrong += 1;
                }
            }
        }
    }
    let location_error = 100.0 * wrong as f64 / evaluated.max(1) as f64;

    let reported: Vec<ReportedChange> = outcome
        .changes
        .iter()
        .map(|c| ReportedChange {
            object: c.object,
            change_at: c.change_at,
            new_container: c.new_container,
        })
        .collect();
    let f_measure = changes_f_measure(
        trace.truth.containment.changes(),
        &reported,
        ChangeMatchConfig::default(),
    )
    .f_measure();

    SingleSiteEval {
        containment_error,
        location_error,
        f_measure,
        inference_time,
    }
}

fn cr_config() -> InferenceConfig {
    InferenceConfig::default().without_change_detection()
}

fn full_config() -> InferenceConfig {
    InferenceConfig::default()
        .with_truncation(TruncationPolicy::Full)
        .without_change_detection()
}

fn window_config(secs: u32) -> InferenceConfig {
    InferenceConfig::default()
        .with_truncation(TruncationPolicy::Window { window_secs: secs })
        .without_change_detection()
}

/// Figure 4: point and cumulative evidence of co-location for the three
/// candidate containers (R, NRC, NRNC) of the evidence scenario.
pub fn fig4(_scale: Scale) -> Vec<Series> {
    let (trace, tags) = EvidenceScenario::default().generate();
    let model = LikelihoodModel::new(trace.read_rates.clone());
    let obs = Observations::from_batch(&trace.readings);
    let outcome = RfInfer::new(&model, &obs).run();
    let evidence = &outcome.objects[&tags.object];

    let mut series = Vec::new();
    for (label, container) in [("R", tags.real), ("NRC", tags.nrc), ("NRNC", tags.nrnc)] {
        let mut point = Series::new(format!("point-evidence {label}"));
        for &(t, e) in evidence
            .point_evidence
            .get(&container)
            .into_iter()
            .flatten()
        {
            point.push(t.0 as f64, e);
        }
        let mut cumulative = Series::new(format!("cumulative-evidence {label}"));
        for (t, e) in evidence.cumulative_evidence(container) {
            cumulative.push(t.0 as f64, e);
        }
        series.push(point);
        series.push(cumulative);
    }
    series
}

/// Figure 5(a): containment/location error of the All / W1200 / CR methods
/// as the read rate varies (stable containment).
pub fn fig5a(scale: Scale) -> Vec<Series> {
    let mut all = Series::new("Containment(All)");
    let mut window = Series::new("Containment(W1200)");
    let mut cr = Series::new("Containment(CR)");
    let mut loc = Series::new("Location(CR)");
    for &rr in &[0.6, 0.7, 0.8, 0.9, 1.0] {
        let trace = WarehouseSimulator::new(base_config(scale, rr, scale.trace_secs())).generate();
        let e_all = evaluate_rfinfer(&trace, full_config());
        let e_window = evaluate_rfinfer(&trace, window_config(1200));
        let e_cr = evaluate_rfinfer(&trace, cr_config());
        all.push(rr, e_all.containment_error);
        window.push(rr, e_window.containment_error);
        cr.push(rr, e_cr.containment_error);
        loc.push(rr, e_cr.location_error);
    }
    vec![all, window, cr, loc]
}

/// Figure 5(b): total inference time of the All / W1200 / CR methods as the
/// trace length varies.
pub fn fig5b(scale: Scale) -> Vec<Series> {
    let mut all = Series::new("Inference(All)");
    let mut window = Series::new("Inference(W1200)");
    let mut cr = Series::new("Inference(CR)");
    let lengths: &[u32] = match scale {
        Scale::Smoke => &[600, 1200],
        _ => &[600, 1200, 1800, 2400, 3000, 3600],
    };
    for &len in lengths {
        let trace = WarehouseSimulator::new(base_config(scale, 0.8, len)).generate();
        all.push(
            len as f64,
            evaluate_rfinfer(&trace, full_config())
                .inference_time
                .as_secs_f64(),
        );
        window.push(
            len as f64,
            evaluate_rfinfer(&trace, window_config(1200))
                .inference_time
                .as_secs_f64(),
        );
        cr.push(
            len as f64,
            evaluate_rfinfer(&trace, cr_config())
                .inference_time
                .as_secs_f64(),
        );
    }
    vec![all, window, cr]
}

/// Figure 5(c): F-measure of containment-change detection versus the
/// containment-change interval, for RFINFER (H̄ = 500) and SMURF*.
pub fn fig5c(scale: Scale) -> Vec<Series> {
    let mut series = Vec::new();
    for &rr in &[0.8, 0.7] {
        let mut ours = Series::new(format!("RR={rr} H=500"));
        let mut smurf = Series::new(format!("RR={rr} SMURF*"));
        let intervals: &[u32] = match scale {
            Scale::Smoke => &[60, 120],
            _ => &[20, 40, 60, 80, 100, 120],
        };
        for &interval in intervals {
            let mut config = base_config(scale, rr, scale.change_trace_secs());
            config.anomaly_interval = Some(interval);
            let trace = WarehouseSimulator::new(config).generate();
            let ours_eval =
                evaluate_rfinfer(&trace, InferenceConfig::default().with_recent_history(500));
            ours.push(interval as f64, ours_eval.f_measure);
            smurf.push(interval as f64, evaluate_smurf_star(&trace).f_measure);
        }
        series.push(ours);
        series.push(smurf);
    }
    series
}

/// Figure 5(d): containment and location error of RFINFER and SMURF* on the
/// lab traces T1–T8.
pub fn fig5d(_scale: Scale) -> Table {
    let mut table = Table::new(
        "Figure 5(d): lab traces — error rates (%)",
        &[
            "trace",
            "RFINFER cont.",
            "RFINFER loc.",
            "SMURF* cont.",
            "SMURF* loc.",
        ],
    );
    for trace_id in LabTraceId::ALL {
        let trace = LabConfig::published(trace_id).generate();
        let ours = evaluate_rfinfer(
            &trace,
            InferenceConfig::default()
                .with_period(300)
                .with_recent_history(600),
        );
        let smurf = evaluate_smurf_star(&trace);
        table.push_row(&[
            trace_id.label().to_string(),
            format!("{:.1}", ours.containment_error),
            format!("{:.1}", ours.location_error),
            format!("{:.1}", smurf.containment_error),
            format!("{:.1}", smurf.location_error),
        ]);
    }
    table
}

/// Figure 6(a): error of the basic algorithm (full history) as the read rate
/// varies.
pub fn fig6a(scale: Scale) -> Vec<Series> {
    let mut containment = Series::new("Containment");
    let mut location = Series::new("Location");
    for &rr in &[0.6, 0.7, 0.8, 0.9, 1.0] {
        let trace = WarehouseSimulator::new(base_config(scale, rr, scale.trace_secs())).generate();
        let eval = evaluate_rfinfer(&trace, full_config());
        containment.push(rr, eval.containment_error);
        location.push(rr, eval.location_error);
    }
    vec![containment, location]
}

/// Figure 6(b): containment error of the All / W1200 / CR methods as the
/// trace length varies.
pub fn fig6b(scale: Scale) -> Vec<Series> {
    let mut all = Series::new("Containment(All)");
    let mut window = Series::new("Containment(W1200)");
    let mut cr = Series::new("Containment(CR)");
    let lengths: &[u32] = match scale {
        Scale::Smoke => &[600, 1200],
        _ => &[600, 1200, 1800, 2400, 3000, 3600],
    };
    for &len in lengths {
        let trace = WarehouseSimulator::new(base_config(scale, 0.8, len)).generate();
        all.push(
            len as f64,
            evaluate_rfinfer(&trace, full_config()).containment_error,
        );
        window.push(
            len as f64,
            evaluate_rfinfer(&trace, window_config(1200)).containment_error,
        );
        cr.push(
            len as f64,
            evaluate_rfinfer(&trace, cr_config()).containment_error,
        );
    }
    vec![all, window, cr]
}

/// Table 3: F-measure of change detection for fixed thresholds δ and for the
/// offline-calibrated threshold, across read rates.
pub fn table3(scale: Scale) -> Table {
    let deltas = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0];
    let mut headers: Vec<String> = vec!["read rate".to_string()];
    headers.extend(deltas.iter().map(|d| format!("δ={d}")));
    headers.push("calibrated".to_string());
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Table 3: change-detection F-measure (%) vs threshold δ",
        &headers_ref,
    );

    let rates: &[f64] = match scale {
        Scale::Smoke => &[0.7],
        _ => &[0.6, 0.7, 0.8, 0.9],
    };
    for &rr in rates {
        let mut config = base_config(scale, rr, scale.change_trace_secs());
        config.anomaly_interval = Some(60);
        let trace = WarehouseSimulator::new(config).generate();
        let mut row = vec![format!("{rr:.1}")];
        for &delta in &deltas {
            let eval = evaluate_rfinfer(
                &trace,
                InferenceConfig::default().with_fixed_threshold(delta),
            );
            row.push(format!("{:.0}", eval.f_measure));
        }
        let calibrated = evaluate_rfinfer(&trace, InferenceConfig::default());
        row.push(format!("{:.0}", calibrated.f_measure));
        table.push_row(&row);
    }
    table
}

/// Table 4: F-measure and inference time of change detection for different
/// recent-history sizes H̄ and read rates.
pub fn table4(scale: Scale) -> Table {
    let mut table = Table::new(
        "Table 4: change detection vs recent-history size H̄",
        &["read rate", "H̄ (s)", "F-measure (%)", "time (s)"],
    );
    let rates: &[f64] = match scale {
        Scale::Smoke => &[0.8],
        _ => &[0.6, 0.7, 0.8, 0.9],
    };
    let histories: &[u32] = match scale {
        Scale::Smoke => &[300, 600],
        _ => &[300, 400, 500, 600, 700, 800, 900],
    };
    for &rr in rates {
        let mut config = base_config(scale, rr, scale.change_trace_secs());
        config.anomaly_interval = Some(60);
        let trace = WarehouseSimulator::new(config).generate();
        for &h in histories {
            let eval = evaluate_rfinfer(&trace, InferenceConfig::default().with_recent_history(h));
            table.push_row(&[
                format!("{rr:.1}"),
                h.to_string(),
                format!("{:.0}", eval.f_measure),
                format!("{:.2}", eval.inference_time.as_secs_f64()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfinfer_beats_smurf_star_on_a_noisy_trace() {
        let trace = WarehouseSimulator::new(base_config(Scale::Smoke, 0.7, 900)).generate();
        let ours = evaluate_rfinfer(&trace, cr_config());
        let smurf = evaluate_smurf_star(&trace);
        assert!(ours.containment_error <= smurf.containment_error + 1e-9);
        assert!(
            ours.containment_error < 15.0,
            "got {}",
            ours.containment_error
        );
        assert!(ours.location_error < 10.0, "got {}", ours.location_error);
    }

    #[test]
    fn fig4_evidence_separates_the_real_container_in_the_belt_region() {
        let series = fig4(Scale::Smoke);
        assert_eq!(series.len(), 6);
        let cum_r = series
            .iter()
            .find(|s| s.name == "cumulative-evidence R")
            .unwrap();
        let cum_nrnc = series
            .iter()
            .find(|s| s.name == "cumulative-evidence NRNC")
            .unwrap();
        let final_r = cum_r.points.last().unwrap().1;
        let final_nrnc = cum_nrnc.points.last().unwrap().1;
        assert!(
            final_r > final_nrnc,
            "the real container must accumulate more evidence ({final_r} vs {final_nrnc})"
        );
    }

    #[test]
    fn fig6a_error_decreases_with_read_rate() {
        let series = fig6a(Scale::Smoke);
        let containment = &series[0];
        let at_low = containment.y_at(0.6).unwrap();
        let at_high = containment.y_at(1.0).unwrap();
        assert!(
            at_high <= at_low + 1e-9,
            "error should not grow with read rate"
        );
        // at perfect read rate containment inference is essentially perfect
        assert!(at_high < 5.0);
        let location = &series[1];
        assert!(location.y_at(0.8).unwrap() < 10.0);
    }

    #[test]
    fn fig5b_cr_inference_is_not_slower_than_full_history() {
        let series = fig5b(Scale::Smoke);
        let all = series.iter().find(|s| s.name == "Inference(All)").unwrap();
        let cr = series.iter().find(|s| s.name == "Inference(CR)").unwrap();
        let longest = all.points.last().unwrap().0;
        assert!(cr.y_at(longest).unwrap() <= all.y_at(longest).unwrap() * 1.5 + 0.05);
    }
}
