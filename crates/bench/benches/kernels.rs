//! Criterion micro-benchmarks of the chunk-of-8 dense EM kernels
//! (`rfid_core::dense::kernels`) against their strict scalar references.
//! Every default-path kernel is bit-identical to its scalar twin (pinned by
//! the unit tests in `crates/core/src/dense/kernels.rs`); these benches
//! isolate the per-call wall-clock so kernel regressions show up without
//! running the full `inference_dense` experiment. The reassociating
//! `*_fast` variants (opt-in via `RfInferConfig::fast_math`) are measured
//! too, labelled separately — they are *not* bit-identical and never run
//! in the default configuration.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rfid_core::dense::kernels;

/// Deterministic pseudo-random log-weights in a plausible range.
fn log_weights(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            -((state % 1000) as f64) / 37.0
        })
        .collect()
}

fn bench_row_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_kernels");
    group.sample_size(20);
    for width in [16usize, 64, 256] {
        let src = log_weights(width, 7);
        let base = log_weights(width, 11);

        group.bench_with_input(
            BenchmarkId::new("add_assign/vector", width),
            &width,
            |b, _| {
                let mut dst = base.clone();
                b.iter(|| {
                    kernels::add_assign_rows(black_box(&mut dst), black_box(&src));
                    dst[0]
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("add_assign/scalar", width),
            &width,
            |b, _| {
                let mut dst = base.clone();
                b.iter(|| {
                    for (d, s) in dst.iter_mut().zip(&src) {
                        *d += s;
                    }
                    dst[0]
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("exp_normalize/vector", width),
            &width,
            |b, _| {
                let mut row = base.clone();
                b.iter(|| {
                    row.copy_from_slice(&base);
                    kernels::exp_normalize(black_box(&mut row));
                    row[0]
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exp_normalize/scalar", width),
            &width,
            |b, _| {
                let mut row = base.clone();
                b.iter(|| {
                    row.copy_from_slice(&base);
                    let max = row.iter().fold(f64::NEG_INFINITY, |m, &w| m.max(w));
                    for w in row.iter_mut() {
                        *w = (*w - max).exp();
                    }
                    let total: f64 = row.iter().sum();
                    if total > 0.0 {
                        for w in row.iter_mut() {
                            *w /= total;
                        }
                    }
                    row[0]
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("argmax/vector", width), &width, |b, _| {
            b.iter(|| kernels::argmax_ties_last(black_box(&base)))
        });
    }
    group.finish();
}

fn bench_dot_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot_kernels");
    group.sample_size(20);
    for width in [16usize, 64, 256] {
        let row = log_weights(width, 3);
        let qs: Vec<Vec<f64>> = (0..kernels::LANES as u64)
            .map(|s| log_weights(width, s + 20))
            .collect();
        let q_refs: Vec<&[f64]> = qs.iter().map(|q| q.as_slice()).collect();
        let mut out = [0.0f64; kernels::LANES];

        group.bench_with_input(BenchmarkId::new("dot/strict", width), &width, |b, _| {
            b.iter(|| kernels::dot(black_box(&qs[0]), black_box(&row)))
        });
        group.bench_with_input(BenchmarkId::new("dot/fast_math", width), &width, |b, _| {
            b.iter(|| kernels::dot_fast(black_box(&qs[0]), black_box(&row)))
        });
        group.bench_with_input(
            BenchmarkId::new("dot_many_shared/8-lane", width),
            &width,
            |b, _| {
                b.iter(|| {
                    kernels::dot_many_shared(black_box(&q_refs), black_box(&row), &mut out);
                    out[0]
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dot_many_shared/scalar-ref", width),
            &width,
            |b, _| {
                b.iter(|| {
                    for (o, q) in out.iter_mut().zip(&q_refs) {
                        *o = kernels::dot(q, &row);
                    }
                    out[0]
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("sum/strict", width), &width, |b, _| {
            b.iter(|| black_box(&row).iter().sum::<f64>())
        });
        group.bench_with_input(BenchmarkId::new("sum/fast_math", width), &width, |b, _| {
            b.iter(|| kernels::sum_fast(black_box(&row)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_row_kernels, bench_dot_kernels);
criterion_main!(benches);
