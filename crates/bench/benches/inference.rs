//! Criterion micro-benchmarks of the inference core: the E-step / M-step
//! building blocks, a full RFINFER run, the change-point statistic, the
//! critical-region search, and ablations of the paper's optimizations
//! (candidate pruning and memoization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfid_core::{
    change_statistic, container_posterior, critical_region, LikelihoodModel, Observations, RfInfer,
    RfInferConfig,
};
use rfid_sim::{WarehouseConfig, WarehouseSimulator};
use rfid_types::{LocationId, Trace};

fn small_trace(read_rate: f64, length: u32) -> Trace {
    WarehouseSimulator::new(
        WarehouseConfig::default()
            .with_length(length)
            .with_read_rate(read_rate)
            .with_items_per_case(5)
            .with_cases_per_pallet(2)
            .with_seed(5),
    )
    .generate()
}

fn bench_posterior(c: &mut Criterion) {
    let model = LikelihoodModel::new(rfid_types::ReadRateTable::diagonal(11, 0.8, 1e-4));
    let container_readers = [LocationId(3)];
    let member_a = [LocationId(3)];
    let member_b = [LocationId(4)];
    let members: Vec<Option<&[LocationId]>> =
        vec![Some(&member_a), None, Some(&member_b), None, None];
    c.bench_function("e_step_container_posterior", |b| {
        b.iter(|| container_posterior(&model, Some(&container_readers), &members))
    });
}

fn bench_rfinfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("rfinfer_full_run");
    group.sample_size(10);
    for length in [600u32, 1200] {
        let trace = small_trace(0.8, length);
        let model = LikelihoodModel::new(trace.read_rates.clone());
        let obs = Observations::from_batch(&trace.readings);
        group.bench_with_input(BenchmarkId::from_parameter(length), &length, |b, _| {
            b.iter(|| RfInfer::new(&model, &obs).run())
        });
    }
    group.finish();
}

fn bench_optimization_ablation(c: &mut Criterion) {
    let trace = small_trace(0.8, 900);
    let model = LikelihoodModel::new(trace.read_rates.clone());
    let obs = Observations::from_batch(&trace.readings);
    let mut group = c.benchmark_group("rfinfer_ablation");
    group.sample_size(10);
    group.bench_function("optimized (pruning + memoization)", |b| {
        b.iter(|| RfInfer::new(&model, &obs).run())
    });
    group.bench_function("no candidate pruning", |b| {
        b.iter(|| {
            RfInfer::new(&model, &obs)
                .with_config(RfInferConfig {
                    candidate_pruning: false,
                    ..Default::default()
                })
                .run()
        })
    });
    group.bench_function("no memoization", |b| {
        b.iter(|| {
            RfInfer::new(&model, &obs)
                .with_config(RfInferConfig {
                    memoization: false,
                    ..Default::default()
                })
                .run()
        })
    });
    group.finish();
}

fn bench_changepoint_and_truncation(c: &mut Criterion) {
    let trace = small_trace(0.7, 900);
    let model = LikelihoodModel::new(trace.read_rates.clone());
    let obs = Observations::from_batch(&trace.readings);
    let outcome = RfInfer::new(&model, &obs).run();
    let evidence: Vec<_> = outcome.objects.values().cloned().collect();
    c.bench_function("change_point_statistic_per_object", |b| {
        b.iter(|| {
            evidence
                .iter()
                .filter_map(change_statistic)
                .map(|s| s.delta)
                .sum::<f64>()
        })
    });
    c.bench_function("critical_region_search_per_object", |b| {
        b.iter(|| {
            evidence
                .iter()
                .filter_map(|e| critical_region(e, 60, 3.0))
                .count()
        })
    });
}

criterion_group!(
    benches,
    bench_posterior,
    bench_rfinfer,
    bench_optimization_ablation,
    bench_changepoint_and_truncation
);
criterion_main!(benches);
