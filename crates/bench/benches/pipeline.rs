//! Criterion micro-benchmarks of the surrounding pipeline: trace generation,
//! the SMURF* baseline, the streaming engine, the pattern matcher, and
//! centroid-based query-state sharing.

use criterion::{criterion_group, criterion_main, Criterion};
use rfid_core::{InferenceConfig, InferenceEngine};
use rfid_query::{share_states, ExposureAutomaton, ObjectQueryState};
use rfid_sim::{WarehouseConfig, WarehouseSimulator};
use rfid_smurf::{SmurfStar, SmurfStarConfig};
use rfid_types::{Epoch, TagId, Trace};

fn small_trace() -> Trace {
    WarehouseSimulator::new(
        WarehouseConfig::default()
            .with_length(900)
            .with_read_rate(0.8)
            .with_items_per_case(5)
            .with_cases_per_pallet(2)
            .with_seed(17),
    )
    .generate()
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("warehouse_trace_900s", |b| b.iter(small_trace));
    group.finish();
}

fn bench_smurf_star(c: &mut Criterion) {
    let trace = small_trace();
    let mut group = c.benchmark_group("baseline");
    group.sample_size(10);
    group.bench_function("smurf_star_full_trace", |b| {
        b.iter(|| SmurfStar::new(SmurfStarConfig::default()).run(&trace.readings))
    });
    group.finish();
}

fn bench_streaming_engine(c: &mut Criterion) {
    let trace = small_trace();
    let mut group = c.benchmark_group("streaming_engine");
    group.sample_size(10);
    group.bench_function("replay_900s_with_periodic_inference", |b| {
        b.iter(|| {
            let mut engine = InferenceEngine::new(
                InferenceConfig::default()
                    .with_period(300)
                    .without_change_detection(),
                trace.read_rates.clone(),
            );
            let mut readings = trace.readings.clone();
            for r in readings.readings() {
                engine.observe(*r);
            }
            for t in (0..=trace.meta.length).step_by(300) {
                engine.step(Epoch(t));
            }
            engine.run_inference(Epoch(trace.meta.length))
        })
    });
    group.finish();
}

fn bench_pattern_matcher(c: &mut Criterion) {
    c.bench_function("pattern_automaton_10k_events", |b| {
        b.iter(|| {
            let mut automaton = ExposureAutomaton::new(3600);
            let mut matches = 0usize;
            for t in 0..10_000u32 {
                let qualifies = t % 100 != 0; // periodic reset
                if automaton.feed(Epoch(t), qualifies, 21.0).is_some() {
                    matches += 1;
                }
            }
            matches
        })
    });
}

fn bench_state_sharing(c: &mut Criterion) {
    // 50 objects of one case with nearly identical query state.
    let states: Vec<ObjectQueryState> = (0..50)
        .map(|i| ObjectQueryState {
            query: "Q1".to_string(),
            tag: TagId::item(i),
            automaton: rfid_query::AutomatonState::Accumulating {
                since: Epoch(100),
                readings: (0..30).map(|k| (Epoch(100 + k * 10), 21.0)).collect(),
                fired: false,
            },
        })
        .collect();
    c.bench_function("centroid_state_sharing_50_objects", |b| {
        b.iter(|| share_states(&states).map(|bundle| bundle.wire_bytes()))
    });
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_smurf_star,
    bench_streaming_engine,
    bench_pattern_matcher,
    bench_state_sharing
);
criterion_main!(benches);
