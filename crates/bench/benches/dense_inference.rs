//! Criterion micro-benchmark of the dense-interned columnar solver: replay
//! one warehouse trace through periodic inference runs with the dense solver
//! on (the default) and off (the `BTreeMap`-keyed tree reference). Outcomes
//! are bit-identical (pinned by the `dense_solver_matches_tree_reference`
//! proptest in `crates/core`); the benchmark isolates the wall-clock effect
//! of tag interning, columnar EM state and reader-set loglik memoization.
//! Both configurations run incrementally, so the measured gap is the dense
//! gain *on top of* dirty-set scheduling — the `inference_dense` experiment
//! reports the same comparison at the distributed reference scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfid_core::{InferenceConfig, InferenceEngine};
use rfid_sim::{WarehouseConfig, WarehouseSimulator};
use rfid_types::{Epoch, RawReading, Trace};

fn trace(length: u32) -> Trace {
    WarehouseSimulator::new(
        WarehouseConfig::default()
            .with_length(length)
            .with_read_rate(0.8)
            .with_items_per_case(5)
            .with_cases_per_pallet(2)
            .with_seed(5),
    )
    .generate()
}

/// Replay the trace through one engine, running inference every period.
fn replay(trace: &Trace, readings: &[RawReading], dense: bool) -> usize {
    let mut engine = InferenceEngine::new(
        InferenceConfig::default()
            .without_change_detection()
            .with_dense(dense),
        trace.read_rates.clone(),
    );
    let mut cursor = 0usize;
    let mut runs = 0usize;
    for t in 0..=trace.meta.length {
        let now = Epoch(t);
        while cursor < readings.len() && readings[cursor].time <= now {
            engine.observe(readings[cursor]);
            cursor += 1;
        }
        if engine.step(now).is_some() {
            runs += 1;
        }
    }
    runs
}

fn bench_dense_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_solver");
    group.sample_size(10);
    for length in [900u32, 1800] {
        let trace = trace(length);
        let mut readings = trace.readings.readings_unordered().to_vec();
        readings.sort_unstable();
        readings.dedup();
        group.bench_with_input(BenchmarkId::new("tree", length), &length, |b, _| {
            b.iter(|| replay(&trace, &readings, false))
        });
        group.bench_with_input(BenchmarkId::new("dense", length), &length, |b, _| {
            b.iter(|| replay(&trace, &readings, true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dense_solver);
criterion_main!(benches);
