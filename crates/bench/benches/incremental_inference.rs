//! Criterion micro-benchmark of the streaming engine's incremental mode:
//! replay one warehouse trace through periodic inference runs with the
//! cross-run evidence cache on and off. Outcomes are bit-identical (pinned
//! by `crates/core` proptests and `crates/dist/tests/parallel_determinism`);
//! the benchmark isolates the wall-clock effect of dirty-set scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfid_core::{InferenceConfig, InferenceEngine};
use rfid_sim::{WarehouseConfig, WarehouseSimulator};
use rfid_types::{Epoch, RawReading, Trace};

fn trace(length: u32) -> Trace {
    WarehouseSimulator::new(
        WarehouseConfig::default()
            .with_length(length)
            .with_read_rate(0.8)
            .with_items_per_case(5)
            .with_cases_per_pallet(2)
            .with_seed(5),
    )
    .generate()
}

/// Replay the trace through one engine, running inference every period.
fn replay(trace: &Trace, readings: &[RawReading], incremental: bool) -> usize {
    let mut engine = InferenceEngine::new(
        InferenceConfig::default()
            .without_change_detection()
            .with_incremental(incremental),
        trace.read_rates.clone(),
    );
    let mut cursor = 0usize;
    let mut runs = 0usize;
    for t in 0..=trace.meta.length {
        let now = Epoch(t);
        while cursor < readings.len() && readings[cursor].time <= now {
            engine.observe(readings[cursor]);
            cursor += 1;
        }
        if engine.step(now).is_some() {
            runs += 1;
        }
    }
    runs
}

fn bench_streaming_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_engine");
    group.sample_size(10);
    for length in [900u32, 1800] {
        let trace = trace(length);
        let mut readings = trace.readings.readings_unordered().to_vec();
        readings.sort_unstable();
        readings.dedup();
        group.bench_with_input(
            BenchmarkId::new("full_recompute", length),
            &length,
            |b, _| b.iter(|| replay(&trace, &readings, false)),
        );
        group.bench_with_input(BenchmarkId::new("incremental", length), &length, |b, _| {
            b.iter(|| replay(&trace, &readings, true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_engine);
criterion_main!(benches);
