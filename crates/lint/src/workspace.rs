//! Workspace discovery: which files the linter scans, and the fixture
//! self-test that keeps the gate honest.
//!
//! The scan covers every `.rs` file under a `src/` directory of the
//! workspace (the root facade's `src/` and each `crates/*/src/`, compat
//! shims included). Integration tests, examples and benches are out of
//! scope — the invariants protect shipped code paths — and the linter's own
//! seeded-violation fixtures (`crates/lint/fixtures/`) are excluded from
//! the workspace scan because violating the rules is their job.

use crate::diagnostics::{apply_waivers, Diagnostic};
use crate::lexer::lex;
use crate::rules::{run_all, ALL_RULES};
use crate::scope::FileContext;
use std::fs;
use std::path::{Path, PathBuf};

/// Find the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All `.rs` files in scope, as `(absolute path, workspace-relative path)`,
/// sorted by relative path so diagnostics are deterministic.
pub fn workspace_files(root: &Path) -> Vec<(PathBuf, String)> {
    let mut files = Vec::new();
    walk(root, root, &mut files);
    files.sort_by(|a, b| a.1.cmp(&b.1));
    files
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, String)>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if matches!(name.as_str(), "target" | ".git" | "fixtures") {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            // Shipped code lives under a src/ directory; tests/examples/
            // benches directories are out of scope.
            let in_src = rel.starts_with("src/") || rel.contains("/src/");
            if in_src {
                out.push((path, rel));
            }
        }
    }
}

/// Lint one file's source text under its workspace-relative path.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let ctx = FileContext::new(rel_path.to_string(), lex(source));
    apply_waivers(&ctx, run_all(&ctx))
}

/// Lint the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let files = workspace_files(root);
    if files.is_empty() {
        return Err(format!("no .rs files found under {}", root.display()));
    }
    let mut out = Vec::new();
    for (abs, rel) in files {
        let source = fs::read_to_string(&abs)
            .map_err(|e| format!("failed to read {}: {e}", abs.display()))?;
        out.extend(lint_source(&rel, &source));
    }
    Ok(out)
}

/// Outcome of the fixture self-test.
#[derive(Debug, Default)]
pub struct SelfTestReport {
    /// Expected findings that fired (as `rule@file:line`).
    pub matched: Vec<String>,
    /// Mismatches: expected-but-missing or fired-but-unexpected findings.
    pub failures: Vec<String>,
    /// Rules that never fired across all fixtures.
    pub silent_rules: Vec<String>,
}

impl SelfTestReport {
    /// Whether every expectation matched and every rule fired.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.silent_rules.is_empty()
    }
}

/// Run the linter against the seeded-violation fixtures in `fixtures_dir`.
///
/// Each fixture declares its virtual workspace path on the first line
/// (`//# path: crates/wire/src/fixture.rs`) — that is what gives the rules
/// their scope — and marks every line a rule must fire on with a trailing
/// `// EXPECT(rule-name)` comment. The self-test demands an *exact* match:
/// every expected finding fires, nothing else fires, and across the whole
/// fixture set every rule in [`ALL_RULES`] fires at least once. CI runs this
/// so the workspace gate cannot silently rot.
pub fn self_test(fixtures_dir: &Path) -> Result<SelfTestReport, String> {
    let mut report = SelfTestReport::default();
    let mut fired_rules: Vec<String> = Vec::new();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(fixtures_dir)
        .map_err(|e| format!("failed to read {}: {e}", fixtures_dir.display()))?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    fixtures.sort();
    if fixtures.is_empty() {
        return Err(format!("no fixtures found in {}", fixtures_dir.display()));
    }
    for fixture in fixtures {
        let source = fs::read_to_string(&fixture)
            .map_err(|e| format!("failed to read {}: {e}", fixture.display()))?;
        let display = fixture
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let Some(virtual_path) = source
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("//# path:"))
            .map(str::trim)
        else {
            report.failures.push(format!(
                "{display}: missing `//# path:` directive on line 1"
            ));
            continue;
        };
        // Expected findings: every `EXPECT(rule)` names its own line.
        let mut expected: Vec<(String, u32)> = Vec::new();
        for (lineno, line) in source.lines().enumerate() {
            let mut rest = line;
            while let Some(at) = rest.find("EXPECT(") {
                rest = &rest[at + "EXPECT(".len()..];
                if let Some(close) = rest.find(')') {
                    expected.push((rest[..close].to_string(), lineno as u32 + 1));
                    rest = &rest[close + 1..];
                } else {
                    break;
                }
            }
        }
        let got: Vec<(String, u32)> = lint_source(virtual_path, &source)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect();
        for (rule, line) in &expected {
            if got.iter().filter(|(r, l)| r == rule && l == line).count() == 1 {
                report.matched.push(format!("{rule}@{display}:{line}"));
                fired_rules.push(rule.clone());
            } else {
                report.failures.push(format!(
                    "{display}:{line}: expected `{rule}` to fire exactly once, diagnostics were {got:?}"
                ));
            }
        }
        for (rule, line) in &got {
            if !expected.iter().any(|(r, l)| r == rule && l == line) {
                report.failures.push(format!(
                    "{display}:{line}: unexpected `{rule}` finding (no EXPECT marker)"
                ));
            }
        }
    }
    for rule in ALL_RULES {
        if !fired_rules.iter().any(|r| r == rule) {
            report.silent_rules.push(rule.to_string());
        }
    }
    Ok(report)
}
