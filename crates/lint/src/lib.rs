//! `rfid-lint` — workspace invariant linter for the RFID inference repo.
//!
//! The solver's correctness story rests on three properties that ordinary
//! compiler lints cannot check: **determinism** (bit-identical replay across
//! runs and sites), **exactness** (the default dense kernels must not
//! reassociate floating-point accumulation), and **panic-freedom** on the
//! cross-site decode surface (a malformed frame from a peer must surface as
//! `Err`, never abort the ingest loop). This crate machine-checks those
//! properties as five repo-specific rules over the workspace's own sources:
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `undocumented-unsafe` | everywhere | every `unsafe` carries a `SAFETY:` justification |
//! | `panic-free-decode` | `crates/wire/src` | decode paths are `Result`-only: no unwrap/expect/panic!/indexing |
//! | `nondeterministic-collections` | core/dist/wire/query | no `HashMap`/`HashSet` with the default `RandomState` |
//! | `float-exactness` | dense solver files | no reassociating accumulation outside `// EXACTNESS:` fns |
//! | `no-wall-clock` | core/dist/wire/query | no `Instant::now`/`SystemTime::now` in solver/replay paths |
//!
//! The linter lexes Rust properly (nested block comments, raw strings, char
//! vs. lifetime) rather than grepping, so string literals and comments never
//! false-positive. Intentional exceptions are waived per site with
//! `// LINT-ALLOW(rule): reason`; reasonless or stale waivers are themselves
//! findings. `--self-test` runs the rules against seeded-violation fixtures
//! in `fixtures/` so CI can prove every rule still fires.
//!
//! The crate is deliberately dependency-free (std only): it must be able to
//! lint the workspace even when the workspace itself does not compile.

pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod workspace;

pub use diagnostics::{apply_waivers, to_json, Diagnostic};
pub use rules::ALL_RULES;
pub use workspace::{find_root, lint_source, lint_workspace, self_test, SelfTestReport};
