//! CLI driver for `rfid-lint`.
//!
//! ```text
//! rfid-lint --check            # lint the workspace; exit 1 on any finding
//! rfid-lint --check --json     # same, diagnostics as a JSON array
//! rfid-lint --self-test        # run the seeded-violation fixture suite
//! rfid-lint --root <dir>       # override workspace-root discovery
//! ```
//!
//! Without `--check` or `--self-test` the linter prints findings but always
//! exits 0 (advisory mode, useful while iterating on a fix).

use rfid_lint::{find_root, lint_workspace, self_test, to_json};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut json = false;
    let mut run_self_test = false;
    let mut root_override: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--self-test" => run_self_test = true,
            "--root" => match args.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => return usage("--root requires a directory argument"),
            },
            "--help" | "-h" => {
                eprintln!("usage: rfid-lint [--check] [--json] [--self-test] [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root_override
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd)))
    {
        Some(root) => root,
        None => {
            eprintln!("rfid-lint: could not find a workspace root (no Cargo.toml with [workspace]); pass --root");
            return ExitCode::FAILURE;
        }
    };

    if run_self_test {
        let fixtures = root.join("crates").join("lint").join("fixtures");
        return match self_test(&fixtures) {
            Ok(report) => {
                for m in &report.matched {
                    println!("self-test ok: {m}");
                }
                for f in &report.failures {
                    eprintln!("self-test FAIL: {f}");
                }
                for r in &report.silent_rules {
                    eprintln!("self-test FAIL: rule `{r}` never fired across the fixture set");
                }
                if report.passed() {
                    println!(
                        "self-test passed: {} expected findings fired, all rules exercised",
                        report.matched.len()
                    );
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("rfid-lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match lint_workspace(&root) {
        Ok(diags) => {
            if json {
                print!("{}", to_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
                if diags.is_empty() {
                    eprintln!("rfid-lint: workspace clean");
                } else {
                    eprintln!("rfid-lint: {} finding(s)", diags.len());
                }
            }
            if check && !diags.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("rfid-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("rfid-lint: {msg}");
    eprintln!("usage: rfid-lint [--check] [--json] [--self-test] [--root <dir>]");
    ExitCode::FAILURE
}
