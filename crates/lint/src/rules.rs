//! The six workspace invariant rules, R1–R6.
//!
//! Each rule is a pure function from a [`FileContext`] to diagnostics; the
//! driver applies waivers afterwards so every rule stays waiver-agnostic.
//! Scoping is part of the rule definition (see `docs/INVARIANTS.md`):
//!
//! | rule | name | scope |
//! |---|---|---|
//! | R1 | `undocumented-unsafe` | every scanned file |
//! | R2 | `panic-free-decode` | `crates/wire/src`, non-test, non-`encode_*`/`put_*` fns |
//! | R3 | `nondeterministic-collections` | `crates/{core,dist,wire,query}/src`, non-test |
//! | R4 | `float-exactness` | `dense.rs`, `dense/kernels.rs`, `posterior.rs`, non-test |
//! | R5 | `no-wall-clock` | `crates/{core,dist,wire,query}/src`, non-test, non-stats/bench |
//! | R6 | `wire-fuzz-coverage` | `crates/wire/src` `const KIND_*` declarations |

use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::scope::FileContext;

/// Rule name of R1.
pub const R1_UNDOCUMENTED_UNSAFE: &str = "undocumented-unsafe";
/// Rule name of R2.
pub const R2_PANIC_FREE_DECODE: &str = "panic-free-decode";
/// Rule name of R3.
pub const R3_NONDETERMINISTIC_COLLECTIONS: &str = "nondeterministic-collections";
/// Rule name of R4.
pub const R4_FLOAT_EXACTNESS: &str = "float-exactness";
/// Rule name of R5.
pub const R5_NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule name of R6.
pub const R6_WIRE_FUZZ_COVERAGE: &str = "wire-fuzz-coverage";

/// All rule names, in order. The self-test asserts every one of these fires
/// on the seeded fixtures.
pub const ALL_RULES: [&str; 6] = [
    R1_UNDOCUMENTED_UNSAFE,
    R2_PANIC_FREE_DECODE,
    R3_NONDETERMINISTIC_COLLECTIONS,
    R4_FLOAT_EXACTNESS,
    R5_NO_WALL_CLOCK,
    R6_WIRE_FUZZ_COVERAGE,
];

/// How many lines above an `unsafe` the `SAFETY:` comment may sit (tolerates
/// an attribute or signature line between the comment and the keyword).
const SAFETY_WINDOW: u32 = 3;

/// How many lines above a `fn` the `EXACTNESS:` annotation may sit (doc
/// comments in between are the norm).
const EXACTNESS_WINDOW: u32 = 12;

/// Run every rule whose scope covers `file`.
pub fn run_all(file: &FileContext) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    r1_undocumented_unsafe(file, &mut out);
    r2_panic_free_decode(file, &mut out);
    r3_nondeterministic_collections(file, &mut out);
    r4_float_exactness(file, &mut out);
    r5_no_wall_clock(file, &mut out);
    r6_wire_fuzz_coverage(file, &mut out);
    out
}

fn tok_is(file: &FileContext, idx: usize, text: &str) -> bool {
    file.tokens.get(idx).is_some_and(|t| t.text == text)
}

/// R1: every `unsafe` block, function, impl or trait needs an adjacent
/// `// SAFETY:` comment (a `# Safety` doc section also counts for `fn`s).
fn r1_undocumented_unsafe(file: &FileContext, out: &mut Vec<Diagnostic>) {
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || tok.text != "unsafe" {
            continue;
        }
        let documented = file.comment_near(tok.line, SAFETY_WINDOW, "SAFETY:")
            || file.comment_near(tok.line, EXACTNESS_WINDOW, "# Safety");
        if documented {
            continue;
        }
        let what = match file.tokens.get(i + 1).map(|t| t.text.as_str()) {
            Some("fn") => "unsafe fn",
            Some("impl") => "unsafe impl",
            Some("trait") => "unsafe trait",
            _ => "unsafe block",
        };
        out.push(Diagnostic::new(
            R1_UNDOCUMENTED_UNSAFE,
            &file.path,
            tok.line,
            format!("{what} without an adjacent `// SAFETY:` comment"),
        ));
    }
}

/// R2: nothing on the wire decode path may panic — decoding runs on bytes
/// received from other sites. `unwrap`/`expect`, panicking macros and slice
/// indexing are denied in `crates/wire/src` outside encode-side builders.
fn r2_panic_free_decode(file: &FileContext, out: &mut Vec<Diagnostic>) {
    if !file.path.starts_with("crates/wire/src/") {
        return;
    }
    const PANIC_MACROS: [&str; 8] = [
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
        "debug_assert",
    ];
    let encode_side = |idx: usize| {
        file.enclosing_fn(idx).is_some_and(|f| {
            f.name.starts_with("encode") || f.name.starts_with("put_") || f.name == "state_payload"
        })
    };
    let mut attr_depth_until: usize = 0;
    for (i, tok) in file.tokens.iter().enumerate() {
        // Track `#[…]` attribute spans so their bracket lists are not
        // mistaken for slice indexing.
        if tok.text == "#" && tok_is(file, i + 1, "[") && i + 1 >= attr_depth_until {
            attr_depth_until = crate::scope::attr_end(file, i + 1) + 1;
        }
        if file.in_test_code(i) || encode_side(i) {
            continue;
        }
        match tok.kind {
            TokenKind::Ident => {
                // `.unwrap()` / `.expect(…)` method calls.
                if (tok.text == "unwrap" || tok.text == "expect")
                    && i > 0
                    && tok_is(file, i - 1, ".")
                    && tok_is(file, i + 1, "(")
                {
                    out.push(Diagnostic::new(
                        R2_PANIC_FREE_DECODE,
                        &file.path,
                        tok.line,
                        format!(
                            "`.{}()` on the wire decode path; return a typed `WireError` instead",
                            tok.text
                        ),
                    ));
                }
                // `panic!(…)` and friends.
                if PANIC_MACROS.contains(&tok.text.as_str()) && tok_is(file, i + 1, "!") {
                    out.push(Diagnostic::new(
                        R2_PANIC_FREE_DECODE,
                        &file.path,
                        tok.line,
                        format!("`{}!` on the wire decode path; malformed bytes must never panic a site", tok.text),
                    ));
                }
            }
            TokenKind::Punct if tok.text == "[" && i >= attr_depth_until => {
                // Indexing expression: `expr[…]` — the previous token closes
                // an expression. Array literals (`[0u8; 8]`) follow `=`,
                // `(`, `,`, … and are not flagged.
                let indexes = i > 0
                    && file.tokens.get(i - 1).is_some_and(|p| {
                        p.kind == TokenKind::Ident && !is_keyword(&p.text)
                            || p.text == "]"
                            || p.text == ")"
                    });
                if indexes {
                    out.push(Diagnostic::new(
                        R2_PANIC_FREE_DECODE,
                        &file.path,
                        tok.line,
                        "slice/array indexing on the wire decode path; use `.get()` and return a typed `WireError`".to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "else"
            | "match"
            | "return"
            | "in"
            | "for"
            | "while"
            | "loop"
            | "break"
            | "continue"
            | "as"
            | "mut"
            | "ref"
            | "move"
            | "let"
            | "const"
            | "static"
    )
}

/// R3: outcome-affecting crates must not iterate hash-randomized
/// collections. `HashMap`/`HashSet` with the default `RandomState` hasher
/// (no explicit hasher parameter, or `::new()`, which always means
/// `RandomState`) and `RandomState`/`DefaultHasher` themselves are denied.
fn r3_nondeterministic_collections(file: &FileContext, out: &mut Vec<Diagnostic>) {
    let in_scope = [
        "crates/core/src/",
        "crates/dist/src/",
        "crates/wire/src/",
        "crates/query/src/",
    ]
    .iter()
    .any(|p| file.path.starts_with(p));
    if !in_scope {
        return;
    }
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || file.in_test_code(i) {
            continue;
        }
        match tok.text.as_str() {
            "RandomState" | "DefaultHasher" => {
                // The import or any direct use is already the violation —
                // there is no deterministic way to use a random hasher.
                out.push(Diagnostic::new(
                    R3_NONDETERMINISTIC_COLLECTIONS,
                    &file.path,
                    tok.line,
                    format!(
                        "`{}` is seeded per-process; iteration order leaks into outcomes",
                        tok.text
                    ),
                ));
            }
            "HashMap" | "HashSet" => {
                let required_args = if tok.text == "HashMap" { 3 } else { 2 };
                if tok_is(file, i + 1, "<") {
                    let args = generic_arg_count(file, i + 1);
                    if args < required_args {
                        out.push(Diagnostic::new(
                            R3_NONDETERMINISTIC_COLLECTIONS,
                            &file.path,
                            tok.line,
                            format!(
                                "`{}` with the default `RandomState` hasher; use BTree/interned \
                                 indices, or name an FxHash-style hasher and document insertion order",
                                tok.text
                            ),
                        ));
                    }
                } else if tok_is(file, i + 1, ":")
                    && tok_is(file, i + 2, ":")
                    && tok_is(file, i + 3, "new")
                {
                    out.push(Diagnostic::new(
                        R3_NONDETERMINISTIC_COLLECTIONS,
                        &file.path,
                        tok.line,
                        format!(
                            "`{}::new()` always selects `RandomState`; construct via `::default()` \
                             with an explicit hasher type annotation instead",
                            tok.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Count top-level generic arguments of the `<…>` starting at token `open`.
/// Understands nested `<>`/`()`/`[]` and the `->` arrow (whose `>` does not
/// close a generic list).
fn generic_arg_count(file: &FileContext, open: usize) -> usize {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut args = 0usize;
    let mut saw_any = false;
    let mut prev = "";
    for tok in &file.tokens[open..] {
        let t = tok.text.as_str();
        if tok.kind == TokenKind::Punct {
            match t {
                "<" => angle += 1,
                ">" if prev == "-" => {} // `->` return arrow
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        return args + usize::from(saw_any);
                    }
                }
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "," if angle == 1 && paren == 0 => args += 1,
                _ => {}
            }
        }
        if angle >= 1 && !(angle == 1 && t == "<") {
            saw_any = true;
        }
        prev = t;
    }
    args + usize::from(saw_any)
}

/// R4: the exactness-critical files (the dense EM and its scalar reference)
/// must not reassociate floating-point accumulation. Flagged patterns:
/// `.fold(` calls and `+=` into a local float-array accumulator
/// (`let mut acc = [0.0f64; LANES]; … acc[l] += …`) — the multi-accumulator
/// sum shape. Functions annotated `// EXACTNESS: reassociating` (the
/// `fast_math`-only kernels) are exempt wholesale.
fn r4_float_exactness(file: &FileContext, out: &mut Vec<Diagnostic>) {
    const SCOPE: [&str; 3] = [
        "crates/core/src/dense.rs",
        "crates/core/src/dense/kernels.rs",
        "crates/core/src/posterior.rs",
    ];
    if !SCOPE.contains(&file.path.as_str()) {
        return;
    }
    let exempt = |idx: usize| {
        file.enclosing_fn(idx)
            .is_some_and(|f| file.comment_near(f.line, EXACTNESS_WINDOW, "EXACTNESS:"))
    };
    // Pass 1: names of local float-array accumulators
    // (`let mut NAME = [<float literal>; …]`).
    let mut float_arrays: Vec<(String, usize)> = Vec::new();
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.text == "let"
            && tok_is(file, i + 1, "mut")
            && file.tokens.get(i + 2).map(|t| t.kind) == Some(TokenKind::Ident)
            && tok_is(file, i + 3, "=")
            && tok_is(file, i + 4, "[")
        {
            let lit_at = if tok_is(file, i + 5, "-") {
                i + 6
            } else {
                i + 5
            };
            let is_float_lit = file.tokens.get(lit_at).is_some_and(|t| {
                t.kind == TokenKind::Number
                    && (t.text.contains('.') || t.text.contains("f64") || t.text.contains("f32"))
            });
            if is_float_lit {
                float_arrays.push((file.tokens[i + 2].text.clone(), i));
            }
        }
    }
    // Pass 2: the two trigger patterns.
    for (i, tok) in file.tokens.iter().enumerate() {
        if file.in_test_code(i) || exempt(i) {
            continue;
        }
        // `.fold(`
        if tok.kind == TokenKind::Ident
            && tok.text == "fold"
            && i > 0
            && tok_is(file, i - 1, ".")
            && tok_is(file, i + 1, "(")
        {
            out.push(Diagnostic::new(
                R4_FLOAT_EXACTNESS,
                &file.path,
                tok.line,
                "`.fold(…)` in an exactness-critical file; reassociating folds change results \
                 — annotate the fn `// EXACTNESS:` if this is fast_math-only, or waive with the \
                 order-independence argument"
                    .to_string(),
            ));
        }
        // `NAME[…] += …` where NAME is a local float-array accumulator.
        if tok.kind == TokenKind::Ident
            && float_arrays.iter().any(|(n, _)| *n == tok.text)
            && tok_is(file, i + 1, "[")
        {
            let close = crate::scope::attr_end(file, i + 1);
            if tok_is(file, close + 1, "+") && tok_is(file, close + 2, "=") {
                out.push(Diagnostic::new(
                    R4_FLOAT_EXACTNESS,
                    &file.path,
                    tok.line,
                    format!(
                        "multi-accumulator sum into float array `{}`; splitting one running sum \
                         across lanes reassociates it",
                        tok.text
                    ),
                ));
            }
        }
    }
}

/// R5: solver and replay code must not read wall clocks — a
/// timing-dependent branch would make parallel replay nondeterministic.
/// Stats and bench modules are exempt by path.
fn r5_no_wall_clock(file: &FileContext, out: &mut Vec<Diagnostic>) {
    let in_scope = [
        "crates/core/src/",
        "crates/dist/src/",
        "crates/wire/src/",
        "crates/query/src/",
    ]
    .iter()
    .any(|p| file.path.starts_with(p));
    let exempt_file = file.path.contains("stats") || file.path.contains("bench");
    if !in_scope || exempt_file {
        return;
    }
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || file.in_test_code(i) {
            continue;
        }
        if (tok.text == "Instant" || tok.text == "SystemTime")
            && tok_is(file, i + 1, ":")
            && tok_is(file, i + 2, ":")
            && tok_is(file, i + 3, "now")
        {
            out.push(Diagnostic::new(
                R5_NO_WALL_CLOCK,
                &file.path,
                tok.line,
                format!(
                    "`{}::now()` in solver/replay code; wall-clock must never influence outcomes \
                     — move to a stats/bench module or waive with the proof it only feeds stats",
                    tok.text
                ),
            ));
        }
    }
}

/// R6: every wire payload kind must be covered by a corrupted-bytes fuzz
/// case. The chaos injector flips bits in live payloads, so an unfuzzed
/// decoder is a quarantine-path liability — each `const KIND_*` declaration
/// in `crates/wire/src` must carry an adjacent `// FUZZ:` comment naming the
/// fuzz test that feeds that kind corrupted bytes.
fn r6_wire_fuzz_coverage(file: &FileContext, out: &mut Vec<Diagnostic>) {
    if !file.path.starts_with("crates/wire/src/") {
        return;
    }
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.text != "const" || file.in_test_code(i) {
            continue;
        }
        let Some(name) = file.tokens.get(i + 1) else {
            continue;
        };
        if name.kind != TokenKind::Ident || !name.text.starts_with("KIND_") {
            continue;
        }
        if file.comment_near(tok.line, SAFETY_WINDOW, "FUZZ:") {
            continue;
        }
        out.push(Diagnostic::new(
            R6_WIRE_FUZZ_COVERAGE,
            &file.path,
            tok.line,
            format!(
                "wire kind `{}` without an adjacent `// FUZZ:` comment naming its \
                 corrupted-bytes fuzz case; the quarantine path makes unfuzzed decoders a liability",
                name.text
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        run_all(&FileContext::new(path.to_string(), lex(src)))
    }

    #[test]
    fn r1_fires_without_safety_and_stays_quiet_with_it() {
        let bad = diags("crates/core/src/x.rs", "fn f() { unsafe { g() } }");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, R1_UNDOCUMENTED_UNSAFE);
        let good = diags(
            "crates/core/src/x.rs",
            "fn f() {\n  // SAFETY: g is safe here because reasons\n  unsafe { g() }\n}",
        );
        assert!(good.is_empty());
        // `# Safety` doc sections document unsafe fns.
        let doc = diags(
            "crates/core/src/x.rs",
            "/// Does things.\n///\n/// # Safety\n/// Caller must check the feature.\nunsafe fn f() {}",
        );
        assert!(doc.is_empty());
    }

    #[test]
    fn r2_catches_unwrap_panics_and_indexing_in_wire_only() {
        let src = "fn decode_x(b: &[u8]) -> u8 { let v = b.first().unwrap(); b[0] + *v }";
        let in_wire = diags("crates/wire/src/codec.rs", src);
        assert_eq!(in_wire.len(), 2, "{in_wire:?}");
        assert!(in_wire.iter().all(|d| d.rule == R2_PANIC_FREE_DECODE));
        assert!(diags("crates/core/src/engine.rs", src).is_empty());
        // Encode-side builders are exempt; tests are exempt.
        let encode = "fn encode_x(v: u8) { table.index_of(v).expect(\"interned\"); }";
        assert!(diags("crates/wire/src/codec.rs", encode).is_empty());
        let test = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}";
        assert!(diags("crates/wire/src/codec.rs", test).is_empty());
        let mac = "fn decode_y() { unreachable!(\"bad\") }";
        assert_eq!(diags("crates/wire/src/codec.rs", mac).len(), 1);
    }

    #[test]
    fn r2_does_not_mistake_attributes_or_array_literals_for_indexing() {
        let src = "#[derive(Debug, Clone)]\nfn decode_x() { let raw = [0u8; 8]; take(&raw); }";
        assert!(diags("crates/wire/src/primitives.rs", src).is_empty());
    }

    #[test]
    fn r3_catches_default_hashers_and_allows_explicit_ones() {
        let bad_ty = "fn f() { let m: HashMap<u64, u32> = HashMap::default(); }";
        let d = diags("crates/core/src/x.rs", bad_ty);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, R3_NONDETERMINISTIC_COLLECTIONS);
        let bad_new = "fn f() { let m = HashMap::new(); }";
        assert_eq!(diags("crates/dist/src/x.rs", bad_new).len(), 1);
        let good = "fn f() { let m: HashMap<Key, u32, BuildHasherDefault<FxHasher>> = HashMap::default(); }";
        assert!(diags("crates/core/src/x.rs", good).is_empty());
        let import_only = "use std::collections::HashMap;";
        assert!(diags("crates/core/src/x.rs", import_only).is_empty());
        // Out-of-scope crates may use whatever they like.
        assert!(diags("crates/sim/src/x.rs", bad_new).is_empty());
        // HashSet needs 2 params to name a hasher.
        assert_eq!(
            diags("crates/query/src/x.rs", "fn f(s: HashSet<u32>) {}").len(),
            1
        );
        assert!(diags(
            "crates/query/src/x.rs",
            "fn f(s: HashSet<u32, FxBuildHasher>) {}"
        )
        .is_empty());
        assert_eq!(
            diags(
                "crates/core/src/x.rs",
                "use std::collections::hash_map::RandomState;"
            )
            .len(),
            1
        );
    }

    #[test]
    fn r3_generic_counting_handles_nesting_and_arrows() {
        let nested =
            "fn f() { let m: HashMap<Vec<(u8, u16)>, fn(u8) -> u8, FxBuildHasher> = HashMap::default(); }";
        assert!(diags("crates/core/src/x.rs", nested).is_empty());
        let nested_bad =
            "fn f() { let m: HashMap<Vec<(u8, u16)>, fn(u8) -> u8> = HashMap::default(); }";
        assert_eq!(diags("crates/core/src/x.rs", nested_bad).len(), 1);
    }

    #[test]
    fn r4_catches_folds_and_lane_accumulators_in_scope_only() {
        let fold =
            "fn m(xs: &[f64]) -> f64 { xs.iter().copied().fold(f64::NEG_INFINITY, f64::max) }";
        assert_eq!(diags("crates/core/src/posterior.rs", fold).len(), 1);
        assert!(diags("crates/core/src/engine.rs", fold).is_empty());
        let lanes = "fn s(xs: &[f64]) -> f64 {\n let mut lanes = [0.0f64; 8];\n for x in xs { lanes[0] += x; }\n lanes.iter().sum()\n}";
        assert_eq!(diags("crates/core/src/dense/kernels.rs", lanes).len(), 1);
        // EXACTNESS-annotated fns are exempt.
        let annotated = format!("// EXACTNESS: reassociating (fast_math only)\n{lanes}");
        assert!(diags("crates/core/src/dense/kernels.rs", &annotated).is_empty());
        // Integer counting sorts do not trip the accumulator pattern.
        let counts = "fn c(xs: &[u32]) {\n let mut fill = [0u32; 8];\n for &x in xs { fill[x as usize] += 1; }\n}";
        assert!(diags("crates/core/src/dense.rs", counts).is_empty());
    }

    #[test]
    fn r6_requires_fuzz_annotations_on_wire_kinds() {
        let bare = "const KIND_MIGRATION: u8 = 0x01;";
        let d = diags("crates/wire/src/codec.rs", bare);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, R6_WIRE_FUZZ_COVERAGE);
        let annotated =
            "// FUZZ: corrupted_byte_zero_is_a_typed_error_for_every_kind\nconst KIND_MIGRATION: u8 = 0x01;";
        assert!(diags("crates/wire/src/codec.rs", annotated).is_empty());
        // Non-kind constants and out-of-scope crates are not covered.
        assert!(diags("crates/wire/src/codec.rs", "const HEADER_LEN: usize = 4;").is_empty());
        assert!(diags("crates/core/src/x.rs", bare).is_empty());
    }

    #[test]
    fn r5_catches_clocks_outside_stats_and_bench() {
        let src = "fn run() { let t = Instant::now(); }";
        assert_eq!(diags("crates/core/src/engine.rs", src).len(), 1);
        assert!(diags("crates/bench/src/distributed.rs", src).is_empty());
        assert!(diags("crates/core/src/stats.rs", src).is_empty());
        assert_eq!(
            diags("crates/dist/src/driver.rs", "fn f() { SystemTime::now(); }").len(),
            1
        );
    }
}
