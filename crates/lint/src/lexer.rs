//! A small but real Rust lexer: the foundation every rule scans over.
//!
//! Rules must never fire on the *contents* of a string literal or a comment
//! (a doc sentence mentioning `unwrap` is not a panic site), so naive line
//! grepping is off the table. This lexer tokenizes the subset of Rust the
//! workspace uses — identifiers, numbers, punctuation, plain/byte/raw
//! strings with arbitrary `#` fences, char literals vs lifetimes, and
//! *nested* block comments — and keeps comments in a separate side channel
//! so rules can resolve `// SAFETY:` / `// EXACTNESS:` / `// LINT-ALLOW`
//! annotations by line.

/// Classification of one code token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident` identifiers).
    Ident,
    /// Integer or float literal (suffixes included, e.g. `0.0f64`).
    Number,
    /// One punctuation character (`.` `[` `+` …). Multi-character operators
    /// arrive as consecutive tokens; rules match the sequences they need.
    Punct,
    /// String literal of any flavour (plain, byte, raw, C).
    Str,
    /// Character or byte-character literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The token text. For [`TokenKind::Punct`] this is a single character;
    /// for string/char literals it is the raw literal including quotes.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block, doc or plain), kept out of the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for line comments).
    pub end_line: u32,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
}

/// The result of lexing one file: code tokens plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Advance one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }
}

/// Lex one source file. Unterminated literals and comments are tolerated
/// (everything to end of file becomes the token): the linter must keep
/// producing diagnostics for the rest of the workspace even when one file is
/// mid-edit.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur, &mut out);
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur, &mut out);
            continue;
        }
        if c == '"' {
            lex_plain_string(&mut cur, &mut out);
            continue;
        }
        if c == '\'' {
            lex_char_or_lifetime(&mut cur, &mut out);
            continue;
        }
        if is_ident_start(c) {
            lex_ident_or_prefixed(&mut cur, &mut out);
            continue;
        }
        if c.is_ascii_digit() {
            lex_number(&mut cur, &mut out);
            continue;
        }
        let line = cur.line;
        cur.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment {
        line,
        end_line: line,
        text,
    });
}

fn lex_block_comment(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('/'));
    text.push(cur.bump().unwrap_or('*'));
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                text.push('/');
                text.push('*');
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                text.push('*');
                text.push('/');
                cur.bump();
                cur.bump();
            }
            (Some(c), _) => {
                text.push(c);
                cur.bump();
            }
            (None, _) => break,
        }
    }
    out.comments.push(Comment {
        line,
        end_line: cur.line,
        text,
    });
}

/// Lex a `"…"` string body starting at the opening quote, with `\` escapes.
fn lex_plain_string(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('"'));
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == '"' {
            break;
        }
    }
    out.tokens.push(Token {
        kind: TokenKind::Str,
        text,
        line,
    });
}

/// Lex a raw string starting at `r`'s `#`-or-quote position: `n` hashes, a
/// quote, then everything until a quote followed by `n` hashes.
fn lex_raw_string_body(cur: &mut Cursor, prefix: &str, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::from(prefix);
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    if cur.peek(0) == Some('"') {
        text.push('"');
        cur.bump();
    }
    loop {
        match cur.peek(0) {
            None => break,
            Some('"') => {
                let closes = (1..=hashes).all(|k| cur.peek(k) == Some('#'));
                text.push('"');
                cur.bump();
                if closes {
                    for _ in 0..hashes {
                        text.push('#');
                        cur.bump();
                    }
                    break;
                }
            }
            Some(c) => {
                text.push(c);
                cur.bump();
            }
        }
    }
    out.tokens.push(Token {
        kind: TokenKind::Str,
        text,
        line,
    });
}

/// At a `'`: decide char literal vs lifetime, then lex it.
fn lex_char_or_lifetime(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    // A lifetime is `'` + ident not closed by another `'` (`'a'` is a char).
    let is_lifetime = match (cur.peek(1), cur.peek(2)) {
        (Some('\\'), _) => false,
        (Some(c), Some('\'')) if is_ident_continue(c) => false,
        (Some(c), _) if is_ident_start(c) => true,
        _ => false,
    };
    if is_lifetime {
        let mut text = String::from("'");
        cur.bump();
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            cur.bump();
        }
        out.tokens.push(Token {
            kind: TokenKind::Lifetime,
            text,
            line,
        });
        return;
    }
    let mut text = String::from("'");
    cur.bump();
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            match cur.peek(0) {
                // `\u{…}` — consume through the closing brace below.
                Some('u') => {
                    text.push('u');
                    cur.bump();
                    if cur.peek(0) == Some('{') {
                        while let Some(b) = cur.bump() {
                            text.push(b);
                            if b == '}' {
                                break;
                            }
                        }
                    }
                }
                Some(esc) => {
                    text.push(esc);
                    cur.bump();
                }
                None => break,
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == '\'' {
            break;
        }
    }
    out.tokens.push(Token {
        kind: TokenKind::Char,
        text,
        line,
    });
}

/// Lex an identifier, routing string prefixes (`r"…"`, `b"…"`, `br#"…"#`,
/// `c"…"`), byte chars (`b'x'`) and raw identifiers (`r#ident`).
fn lex_ident_or_prefixed(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    let next = cur.peek(0);
    let raw_capable = matches!(text.as_str(), "r" | "br" | "cr");
    let quote_capable = matches!(text.as_str(), "r" | "b" | "br" | "c" | "cr");
    match next {
        Some('"') if quote_capable => {
            // `b"…"`/`c"…"` have plain escape rules; `r…` flavours are raw.
            if raw_capable {
                lex_raw_string_body(cur, &text, out);
            } else {
                let mut s = Lexed::default();
                lex_plain_string(cur, &mut s);
                if let Some(tok) = s.tokens.pop() {
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: format!("{text}{}", tok.text),
                        line,
                    });
                }
            }
        }
        Some('#') if raw_capable && cur.peek(1).is_some_and(|c| c == '"' || c == '#') => {
            lex_raw_string_body(cur, &text, out);
        }
        Some('#') if text == "r" && cur.peek(1).is_some_and(is_ident_start) => {
            // Raw identifier `r#ident`: the token is the bare identifier.
            cur.bump();
            let mut ident = String::new();
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                ident.push(c);
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: ident,
                line,
            });
        }
        Some('\'') if text == "b" => {
            // Byte char `b'x'` — reuse the char lexer and merge the prefix.
            let mut s = Lexed::default();
            lex_char_or_lifetime(cur, &mut s);
            if let Some(tok) = s.tokens.pop() {
                out.tokens.push(Token {
                    kind: tok.kind,
                    text: format!("b{}", tok.text),
                    line,
                });
            }
        }
        _ => out.tokens.push(Token {
            kind: TokenKind::Ident,
            text,
            line,
        }),
    }
}

fn lex_number(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    let mut prev = '\0';
    while let Some(c) = cur.peek(0) {
        let take = if c.is_alphanumeric() || c == '_' {
            true
        } else if c == '.' {
            // A float point, unless this is a range (`0..n`) or a method
            // call on a literal (`1.max(2)`).
            cur.peek(1).is_none_or(|n| n.is_ascii_digit() || n == 'f') && cur.peek(1) != Some('.')
        } else {
            // Exponent signs: `1e-3`, `2.5E+10`.
            (c == '+' || c == '-') && (prev == 'e' || prev == 'E')
        };
        if !take {
            break;
        }
        text.push(c);
        prev = c;
        cur.bump();
    }
    out.tokens.push(Token {
        kind: TokenKind::Number,
        text,
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents_from_the_token_stream() {
        let lexed = lex(r#"let x = "unsafe unwrap()"; // unsafe in comment"#);
        assert!(lexed.tokens.iter().all(|t| t.text != "unsafe"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("unsafe"));
    }

    #[test]
    fn raw_strings_with_fences_and_escapes() {
        let toks = kinds(r###"let s = r#"quote " inside"# ; let t = "esc \" done";"###);
        let strings: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strings.len(), 2);
        assert!(strings[0].contains("quote"));
        assert!(strings[1].contains("esc"));
        // The `inside`/`done` identifiers never leak out as code tokens.
        assert!(toks.iter().all(|(_, t)| t != "inside" && t != "done"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lexed = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.tokens[0].text, "fn");
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let q = '\\''; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"bytes"; let b = b'x'; let c = br#"raw"#;"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            1
        );
    }

    #[test]
    fn numbers_ranges_and_floats() {
        let toks = kinds("for i in 0..10 { let x = 1.5e-3f64 + 0.0; let y = i.max(2); }");
        let numbers: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(numbers.contains(&"0"));
        assert!(numbers.contains(&"10"));
        assert!(numbers.contains(&"1.5e-3f64"));
        assert!(numbers.contains(&"0.0"));
        assert!(numbers.contains(&"2"));
    }

    #[test]
    fn line_numbers_are_tracked_across_literals_and_comments() {
        let src = "line1\n\"multi\nline\nstring\"\n/* block\ncomment */\nfn f() {}\n";
        let lexed = lex(src);
        let f = lexed.tokens.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 7);
        assert_eq!(lexed.comments[0].line, 5);
        assert_eq!(lexed.comments[0].end_line, 6);
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        let toks = kinds("let r#fn = 3;");
        assert!(toks.contains(&(TokenKind::Ident, "fn".to_string())));
    }
}
