//! Diagnostics, waiver application, and output formatting.
//!
//! Rules emit raw diagnostics; the driver then applies the file's
//! `// LINT-ALLOW(rule): reason` waivers. Waivers are themselves linted:
//! one without a reason is a `malformed-waiver` finding, and one that no
//! longer suppresses anything is an `unused-waiver` finding — so stale
//! annotations cannot accumulate as the code underneath them changes.

use crate::scope::FileContext;
use std::fmt;

/// One finding: a rule fired at a `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (e.g. `panic-free-decode`).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation of what fired and how to fix or waive it.
    pub message: String,
}

impl Diagnostic {
    /// Build one diagnostic.
    pub fn new(rule: &str, path: &str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Rule name for a waiver with an empty reason.
pub const MALFORMED_WAIVER: &str = "malformed-waiver";
/// Rule name for a waiver that suppressed nothing.
pub const UNUSED_WAIVER: &str = "unused-waiver";

/// Apply the file's waivers to `raw` diagnostics: suppressed findings are
/// dropped; malformed and unused waivers become findings of their own.
pub fn apply_waivers(file: &FileContext, raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut used = vec![false; file.waivers.len()];
    let mut out = Vec::new();
    for d in raw {
        let waived = file
            .waivers
            .iter()
            .enumerate()
            .find(|(_, w)| w.rule == d.rule && !w.reason.is_empty() && w.target_line == d.line);
        match waived {
            Some((idx, _)) => used[idx] = true,
            None => out.push(d),
        }
    }
    for (w, used) in file.waivers.iter().zip(&used) {
        if w.reason.is_empty() {
            out.push(Diagnostic::new(
                MALFORMED_WAIVER,
                &file.path,
                w.line,
                format!(
                    "`LINT-ALLOW({})` without a reason; write `LINT-ALLOW({}): <why this is sound>`",
                    w.rule, w.rule
                ),
            ));
        } else if !used {
            out.push(Diagnostic::new(
                UNUSED_WAIVER,
                &file.path,
                w.line,
                format!(
                    "`LINT-ALLOW({})` no longer suppresses anything on line {}; remove it",
                    w.rule, w.target_line
                ),
            ));
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    out
}

/// Render diagnostics as a JSON array (`--json` mode). Hand-rolled because
/// the linter is dependency-free by design: it must lint the workspace even
/// when the workspace itself does not build.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_str(&d.rule),
            json_str(&d.path),
            d.line,
            json_str(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::run_all;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileContext::new(path.to_string(), lex(src));
        apply_waivers(&ctx, run_all(&ctx))
    }

    #[test]
    fn waivers_suppress_exactly_their_rule_and_line() {
        let src = "\
fn f() {
    // LINT-ALLOW(undocumented-unsafe): checked by the caller's feature gate
    unsafe { g() }
    unsafe { h() }
}
";
        let d = lint("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn wrong_rule_name_does_not_suppress_and_reports_unused() {
        let src = "\
fn f() {
    // LINT-ALLOW(no-wall-clock): wrong rule for this site
    unsafe { g() }
}
";
        let d = lint("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.rule == "undocumented-unsafe"));
        assert!(d.iter().any(|d| d.rule == UNUSED_WAIVER));
    }

    #[test]
    fn reasonless_waivers_are_flagged_and_do_not_suppress() {
        let src = "\
fn f() {
    // LINT-ALLOW(undocumented-unsafe)
    unsafe { g() }
}
";
        let d = lint("crates/core/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == MALFORMED_WAIVER));
        assert!(d.iter().any(|d| d.rule == "undocumented-unsafe"));
    }

    #[test]
    fn json_output_escapes_and_lists() {
        let diags = vec![Diagnostic::new(
            "r",
            "a/b.rs",
            3,
            "uses `\"quotes\"` and\nnewlines".to_string(),
        )];
        let json = to_json(&diags);
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\\n"));
        assert!(json.starts_with('['));
        assert_eq!(to_json(&[]), "[]\n");
    }
}
