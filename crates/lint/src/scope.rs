//! Structural views over a lexed file: function spans, `#[cfg(test)]` module
//! regions, and the `// LINT-ALLOW(rule): reason` waiver map.
//!
//! The rules need three structural questions answered that raw tokens cannot:
//! *which function am I in* (R2 exempts `encode_*` builders, R4 honours
//! per-function `// EXACTNESS:` annotations), *am I in test-only code*
//! (test modules assert panics and replicate scalar references on purpose),
//! and *is this finding waived* (a `LINT-ALLOW` comment on the line or
//! directly above it). All three are recovered with a single linear pass over
//! the token stream — no parser, but brace-matched spans rather than line
//! heuristics.

use crate::lexer::{Comment, Lexed, Token, TokenKind};

/// The span of one `fn` item: its name, header line, and the token-index
/// range of its body (exclusive of the braces themselves).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token index of the opening body brace (`usize::MAX` for bodyless
    /// declarations, e.g. trait method signatures).
    pub body_open: usize,
    /// Token index of the matching closing brace.
    pub body_close: usize,
}

/// One parsed `LINT-ALLOW(rule): reason` waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The justification after the colon (trimmed; may be empty, which the
    /// driver reports as a malformed waiver).
    pub reason: String,
    /// Line of the waiver comment itself.
    pub line: u32,
    /// The line the waiver covers: the comment's own line if it trails code,
    /// otherwise the first code line below the comment block.
    pub target_line: u32,
}

/// Everything the rules need to scan one file.
#[derive(Debug)]
pub struct FileContext {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// Comment side channel.
    pub comments: Vec<Comment>,
    /// All function spans, in source order (nested functions included).
    pub fns: Vec<FnSpan>,
    /// Token-index ranges (inclusive braces) of `#[cfg(test)] mod` bodies.
    pub test_ranges: Vec<(usize, usize)>,
    /// All waivers found in comments.
    pub waivers: Vec<Waiver>,
}

impl FileContext {
    /// Build the structural view of one lexed file.
    pub fn new(path: String, lexed: Lexed) -> FileContext {
        let fns = find_fns(&lexed.tokens);
        let test_ranges = find_test_ranges(&lexed.tokens);
        let waivers = find_waivers(&lexed.comments, &lexed.tokens);
        FileContext {
            path,
            tokens: lexed.tokens,
            comments: lexed.comments,
            fns,
            test_ranges,
            waivers,
        }
    }

    /// Whether the token at `idx` lies inside a `#[cfg(test)]` module.
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| a <= idx && idx <= b)
    }

    /// The innermost function whose body contains the token at `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body_open != usize::MAX && f.body_open <= idx && idx <= f.body_close)
            .min_by_key(|f| f.body_close - f.body_open)
    }

    /// Whether a comment containing `needle` appears on `line` or within the
    /// `window` lines directly above it (used for `SAFETY:` / `EXACTNESS:`
    /// annotations; blank lines inside the window are tolerated).
    pub fn comment_near(&self, line: u32, window: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.end_line <= line && c.end_line + window >= line && c.text.contains(needle))
    }
}

/// Scan for `fn` items and brace-match their bodies.
fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || tok.text != "fn" {
            continue;
        }
        // `fn` in function-pointer types (`fn(u8) -> u8`) has no name.
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // The body is the first `{` at paren depth 0 before a `;` (trait
        // signatures end with `;` and have no body).
        let mut depth = 0i32;
        let mut body_open = usize::MAX;
        let mut j = i + 2;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body_open = j;
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let body_close = if body_open == usize::MAX {
            usize::MAX
        } else {
            match_brace(tokens, body_open)
        };
        fns.push(FnSpan {
            name: name_tok.text.clone(),
            line: tok.line,
            fn_tok: i,
            body_open,
            body_close,
        });
    }
    fns
}

/// Index of the `}` matching the `{` at `open` (or the last token if the
/// file is truncated mid-edit).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Find `#[cfg(test)] mod name { … }` regions. Attributes between the cfg
/// and the `mod` keyword are tolerated.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].text == "#"
            && tokens[i + 1].text == "["
            && tokens[i + 2].text == "cfg"
            && tokens[i + 3].text == "("
            && tokens[i + 4].text == "test"
            && tokens[i + 5].text == ")"
            && tokens[i + 6].text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then require `mod name {`.
        let mut j = i + 7;
        while j < tokens.len() && tokens[j].text == "#" {
            if tokens.get(j + 1).map(|t| t.text.as_str()) == Some("[") {
                j = match_bracket(tokens, j + 1) + 1;
            } else {
                break;
            }
        }
        if tokens.get(j).map(|t| t.text.as_str()) == Some("mod")
            && tokens.get(j + 1).map(|t| t.kind) == Some(TokenKind::Ident)
            && tokens.get(j + 2).map(|t| t.text.as_str()) == Some("{")
        {
            let close = match_brace(tokens, j + 2);
            ranges.push((i, close));
            i = close + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Index of the `]` matching the `[` at token index `open` — used by rules
/// to skip attribute lists and to find the end of an index expression.
pub fn attr_end(file: &FileContext, open: usize) -> usize {
    match_bracket(&file.tokens, open)
}

/// Index of the `]` matching the `[` at `open`.
fn match_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Parse `LINT-ALLOW(rule): reason` waivers out of comments and resolve the
/// line each one covers. A waiver must *begin* its comment (right after the
/// `//`/`/*` markers) — prose that merely mentions the syntax, like this
/// doc comment, is not a waiver.
fn find_waivers(comments: &[Comment], tokens: &[Token]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in comments {
        let stripped = c
            .text
            .trim_start_matches(|ch: char| matches!(ch, '/' | '!' | '*') || ch.is_whitespace());
        let Some(rest) = stripped.strip_prefix("LINT-ALLOW(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').unwrap_or("").trim().to_string();
        // The waiver covers its own line when the comment trails code on
        // that line; otherwise the first code line strictly below it.
        let trails_code = tokens.iter().any(|t| t.line == c.line);
        let target_line = if trails_code {
            c.line
        } else {
            tokens
                .iter()
                .map(|t| t.line)
                .filter(|&l| l > c.end_line)
                .min()
                .unwrap_or(c.end_line + 1)
        };
        waivers.push(Waiver {
            rule,
            reason,
            line: c.line,
            target_line,
        });
    }
    waivers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(src: &str) -> FileContext {
        FileContext::new("test.rs".to_string(), lex(src))
    }

    #[test]
    fn fn_spans_cover_bodies_and_skip_signatures() {
        let c = ctx("trait T { fn sig(&self); }\nfn outer() {\n  fn inner() { let x = 1; }\n}\n");
        let names: Vec<&str> = c.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["sig", "outer", "inner"]);
        assert_eq!(c.fns[0].body_open, usize::MAX);
        // A token inside `inner` resolves to `inner`, not `outer`.
        let x = c
            .tokens
            .iter()
            .position(|t| t.text == "x")
            .expect("token x");
        assert_eq!(c.enclosing_fn(x).map(|f| f.name.as_str()), Some("inner"));
    }

    #[test]
    fn cfg_test_mods_are_recognized() {
        let c = ctx("fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() { body(); }\n}\n");
        let body = c
            .tokens
            .iter()
            .position(|t| t.text == "body")
            .expect("token body");
        assert!(c.in_test_code(body));
        let live = c.tokens.iter().position(|t| t.text == "live").unwrap();
        assert!(!c.in_test_code(live));
    }

    #[test]
    fn waivers_resolve_their_target_line() {
        let src = "\
fn f() {
    // LINT-ALLOW(some-rule): trailing block above
    let a = 1;
    let b = 2; // LINT-ALLOW(other-rule): same line
}
";
        let c = ctx(src);
        assert_eq!(c.waivers.len(), 2);
        assert_eq!(c.waivers[0].rule, "some-rule");
        assert_eq!(c.waivers[0].target_line, 3);
        assert_eq!(c.waivers[1].rule, "other-rule");
        assert_eq!(c.waivers[1].target_line, 4);
        assert!(!c.waivers[0].reason.is_empty());
    }

    #[test]
    fn comment_near_finds_annotations_above() {
        let src = "// SAFETY: gated on runtime detection\nunsafe { work() }\n";
        let c = ctx(src);
        assert!(c.comment_near(2, 3, "SAFETY:"));
        assert!(!c.comment_near(2, 3, "EXACTNESS:"));
    }
}
