//# path: crates/core/src/fixture_unsafe.rs
//! Seeded violations for R1: every `unsafe` needs a safety justification.

fn undocumented_block() {
    unsafe { core::hint::unreachable_unchecked() } // EXPECT(undocumented-unsafe)
}

unsafe fn undocumented_fn(p: *const u8) -> u8 { // EXPECT(undocumented-unsafe)
    *p
}

fn waived_block(p: *const u8) -> u8 {
    // LINT-ALLOW(undocumented-unsafe): seeded fixture exercising the waiver path
    unsafe { *p }
}

// SAFETY: the caller guarantees `p` is valid for reads.
fn documented_block(p: *const u8) -> u8 {
    unsafe { *p }
}

/// Reads one byte.
///
/// # Safety
/// `p` must be valid for reads.
unsafe fn documented_fn(p: *const u8) -> u8 {
    *p
}
