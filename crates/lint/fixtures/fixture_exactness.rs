//# path: crates/core/src/dense/kernels.rs
//! Seeded violations for R4: no reassociating accumulation in dense kernels.

fn seeded_max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max) // EXPECT(float-exactness)
}

fn seeded_lane_sum(xs: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    for (i, x) in xs.iter().enumerate() {
        lanes[i % 4] += x; // EXPECT(float-exactness)
    }
    lanes[0] + lanes[1] + lanes[2] + lanes[3]
}

// EXACTNESS: reassociating (fast_math only); exempt from the gate.
fn fast_lane_sum(xs: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    for (i, x) in xs.iter().enumerate() {
        lanes[i % 4] += x;
    }
    lanes.iter().sum()
}

fn integer_counts(slots: &[usize]) -> [u32; 4] {
    let mut fill = [0u32; 4];
    for &s in slots {
        fill[s % 4] += 1;
    }
    fill
}

fn waived_max(xs: &[f64]) -> f64 {
    // LINT-ALLOW(float-exactness): max is order-independent; seeded waiver-path fixture
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}
