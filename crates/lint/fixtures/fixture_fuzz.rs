//# path: crates/wire/src/fixture_fuzz.rs
//! Seeded violations for R6: every wire kind needs a corrupted-bytes fuzz
//! case, named by an adjacent annotation comment.

const KIND_UNFUZZED: u8 = 0x7f; // EXPECT(wire-fuzz-coverage)

// FUZZ: corrupted_byte_zero_is_a_typed_error_for_every_kind
const KIND_COVERED: u8 = 0x7e;

const HEADER_LEN: usize = 4;

fn decode_kind(bytes: &[u8]) -> Option<u8> {
    bytes.first().copied().filter(|k| *k == KIND_COVERED)
}

fn widths() -> (u8, usize, Option<u8>) {
    (KIND_UNFUZZED, HEADER_LEN, decode_kind(&[0x7e]))
}
