//# path: crates/core/src/fixture_waivers.rs
//! Waiver hygiene: reasonless and stale waivers are findings themselves.

fn reasonless_waiver(p: *const u8) -> u8 {
    // LINT-ALLOW(undocumented-unsafe) EXPECT(malformed-waiver)
    unsafe { *p } // EXPECT(undocumented-unsafe)
}

fn stale_waiver() -> u32 {
    // LINT-ALLOW(no-wall-clock): nothing below reads a clock now EXPECT(unused-waiver)
    42
}

fn healthy_waiver(p: *const u8) -> u8 {
    // LINT-ALLOW(undocumented-unsafe): seeded fixture demonstrating a used waiver
    unsafe { *p }
}
