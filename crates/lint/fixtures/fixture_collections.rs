//# path: crates/dist/src/fixture_collections.rs
//! Seeded violations for R3: no hash-randomized iteration order.

use std::collections::{BTreeMap, HashMap, HashSet};

fn randomized_map() -> HashMap<u64, u32> { // EXPECT(nondeterministic-collections)
    HashMap::new() // EXPECT(nondeterministic-collections)
}

fn randomized_set(tags: &[u64]) -> HashSet<u64> { // EXPECT(nondeterministic-collections)
    tags.iter().copied().collect()
}

fn seeded_state() {
    let state = std::collections::hash_map::RandomState::new(); // EXPECT(nondeterministic-collections)
    let _ = state;
}

fn deterministic_map(pairs: &[(u64, u32)]) -> BTreeMap<u64, u32> {
    pairs.iter().copied().collect()
}

fn explicit_hasher() -> HashMap<u64, u32, std::hash::BuildHasherDefault<FxHasher>> {
    HashMap::default()
}
