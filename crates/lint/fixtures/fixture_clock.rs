//# path: crates/query/src/fixture_clock.rs
//! Seeded violations for R5: no wall-clock reads in solver/replay paths.

use std::time::{Instant, SystemTime};

fn replay_step() {
    let started = Instant::now(); // EXPECT(no-wall-clock)
    let _ = started;
}

fn stamp() -> SystemTime {
    SystemTime::now() // EXPECT(no-wall-clock)
}

fn waived_timer() {
    let t = Instant::now(); // LINT-ALLOW(no-wall-clock): feeds the stats report only
    let _ = t;
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
