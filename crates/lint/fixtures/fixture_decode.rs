//# path: crates/wire/src/fixture_decode.rs
//! Seeded violations for R2: wire decode paths must be panic-free.

fn decode_header(bytes: &[u8]) -> u8 {
    let first = bytes.first().unwrap(); // EXPECT(panic-free-decode)
    *first
}

fn decode_len(bytes: &[u8]) -> u8 {
    bytes[0] // EXPECT(panic-free-decode)
}

fn decode_tag(ok: bool) {
    if !ok {
        panic!("bad tag"); // EXPECT(panic-free-decode)
    }
}

fn encode_frame(out: &mut Vec<u8>, idx: Option<u8>) {
    out.push(idx.expect("interned during encode"));
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_are_fine_in_tests() {
        assert_eq!(super::decode_len(&[7]), 7);
    }
}
