//! CI-facing guarantees of the linter itself: the seeded fixtures trip every
//! rule exactly where marked, and the real workspace is clean.

use std::path::Path;

#[test]
fn fixtures_fire_every_rule_exactly_as_marked() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let report = rfid_lint::self_test(&fixtures).expect("fixture dir readable");
    assert!(
        report.passed(),
        "failures: {:#?}\nsilent rules: {:?}",
        report.failures,
        report.silent_rules
    );
    assert!(
        report.matched.len() >= 10,
        "fixture set looks thin: only {} expected findings fired",
        report.matched.len()
    );
}

#[test]
fn workspace_has_no_unwaived_findings() {
    let root = rfid_lint::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let diags = rfid_lint::lint_workspace(&root).expect("lint runs");
    assert!(
        diags.is_empty(),
        "workspace findings:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
