//! Property-based tests of the query layer: the pattern automaton, the
//! query-state serialization and the centroid-based sharing scheme.

use proptest::prelude::*;
use rfid_query::{share_states, AutomatonState, ExposureAutomaton, ObjectQueryState};
use rfid_types::{Epoch, TagId};

fn arb_state() -> impl Strategy<Value = ObjectQueryState> {
    let automaton = prop_oneof![
        Just(AutomatonState::Idle),
        (
            0u32..10_000,
            prop::collection::vec((0u32..10_000, -30.0f64..40.0), 0..30),
            any::<bool>()
        )
            .prop_map(|(since, readings, fired)| AutomatonState::Accumulating {
                since: Epoch(since),
                readings: readings.into_iter().map(|(t, v)| (Epoch(t), v)).collect(),
                fired,
            }),
    ];
    (0u64..50, automaton, prop_oneof![Just("Q1"), Just("Q2")]).prop_map(
        |(tag, automaton, query)| ObjectQueryState {
            query: query.to_string(),
            tag: TagId::item(tag),
            automaton,
        },
    )
}

proptest! {
    /// Query state round-trips through its byte representation.
    #[test]
    fn query_state_roundtrip(state in arb_state()) {
        let bytes = state.to_bytes();
        prop_assert_eq!(bytes.len(), state.wire_bytes());
        let back = ObjectQueryState::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, state);
    }

    /// Centroid-based sharing is lossless for any group of states with
    /// distinct tags, and its size never exceeds the unshared total by more
    /// than a constant per-object overhead.
    #[test]
    fn sharing_is_lossless_and_bounded(
        states in prop::collection::btree_map(0u64..40, arb_state(), 1..15)
    ) {
        // make the tags distinct (keys of the map) so reconstruction is keyed
        let states: Vec<ObjectQueryState> = states
            .into_iter()
            .map(|(serial, mut s)| { s.tag = TagId::item(serial); s })
            .collect();
        let bundle = share_states(&states).unwrap();
        let expanded = bundle.expand_states().unwrap();
        prop_assert_eq!(expanded.len(), states.len());
        for original in &states {
            let recovered = expanded.iter().find(|s| s.tag == original.tag).unwrap();
            prop_assert_eq!(recovered, original);
        }
        let unshared: usize = states.iter().map(ObjectQueryState::wire_bytes).sum();
        prop_assert!(bundle.wire_bytes() <= unshared + 32 * states.len());
    }

    /// The exposure automaton fires at most once per uninterrupted run, never
    /// fires before the duration threshold, and a non-qualifying event always
    /// resets it to Idle.
    #[test]
    fn automaton_duration_and_reset_invariants(
        duration in 1u32..500,
        events in prop::collection::vec((1u32..50, any::<bool>(), -30.0f64..40.0), 1..200),
    ) {
        let mut automaton = ExposureAutomaton::new(duration);
        let mut now = 0u32;
        let mut run_start: Option<u32> = None;
        let mut fired_this_run = false;
        for (gap, qualifies, value) in events {
            now += gap;
            let matched = automaton.feed(Epoch(now), qualifies, value);
            if !qualifies {
                prop_assert!(matched.is_none());
                prop_assert_eq!(automaton.state(), &AutomatonState::Idle);
                run_start = None;
                fired_this_run = false;
                continue;
            }
            if run_start.is_none() {
                run_start = Some(now);
            }
            if let Some(m) = matched {
                prop_assert!(!fired_this_run, "a run fires at most once");
                prop_assert_eq!(m.since, Epoch(run_start.unwrap()));
                prop_assert!(m.at.since(m.since) > duration, "fires only after the threshold");
                prop_assert!(!m.readings.is_empty());
                fired_this_run = true;
            } else if !fired_this_run {
                prop_assert!(now - run_start.unwrap() <= duration || fired_this_run,
                    "must fire as soon as the duration is exceeded");
            }
        }
    }
}
