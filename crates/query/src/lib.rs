//! # rfid-query
//!
//! CQL-style continuous query processing over the enriched RFID event stream
//! produced by the inference module, reproducing the query-processing side of
//! *"Distributed Inference and Query Processing for RFID Tracking and
//! Monitoring"* (PVLDB 2011).
//!
//! The paper's monitoring queries (Section 2) combine three ingredients, all
//! implemented here:
//!
//! * **window operators** over sensor streams (`[Partition By sensor Rows 1]`
//!   and time-range windows) — see [`windows`];
//! * **pattern matching** (`Pattern SEQ(A+) Where ... A[len].time >
//!   A[1].time + 6 hrs`), evaluated by a per-object automaton — see
//!   [`pattern`];
//! * **hybrid queries** joining object location / containment with sensor
//!   values, such as Q1 ("temperature-sensitive product outside a freezer at
//!   room temperature for 6 hours") and Q2 — see [`exposure`] and
//!   [`processor`].
//!
//! Because monitoring queries move with the objects they track, the query
//! state is partitioned per object ([`state`]) and can be exported, shipped
//! to another site, and imported there; the centroid-based sharing scheme of
//! Section 4.2 ([`sharing`]) compresses the states of co-contained objects.

#![warn(missing_docs)]

pub mod exposure;
pub mod pattern;
pub mod processor;
pub mod sharing;
pub mod state;
pub mod windows;

pub use exposure::{Alert, ExposureQuery};
pub use pattern::{AutomatonState, ExposureAutomaton};
pub use processor::{ProcessorSnapshot, QueryProcessor};
pub use sharing::{share_states, share_states_with, SharedStateBundle, StateDelta};
pub use state::ObjectQueryState;
pub use windows::{LatestByLocation, SlidingTimeWindow};
