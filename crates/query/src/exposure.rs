//! The paper's example monitoring queries, expressed as parameterised
//! *exposure queries*.
//!
//! * **Q1** (Section 2): "for any temperature-sensitive drug product, raise an
//!   alert if it has been placed outside a freezer and exposed to room
//!   temperature for 6 hours" — uses both inferred location (to join with the
//!   temperature stream) and inferred containment (to test the `IsA
//!   'freezer'` predicate).
//! * **Q2** (Section 5.4): "report the frozen food that has been exposed to
//!   temperature over 10 degrees for 10 hours" — uses inferred location only.

use rfid_types::{Epoch, ObjectEvent, TagId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An alert produced by an exposure query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Name of the query that fired.
    pub query: String,
    /// The object the alert is about.
    pub tag: TagId,
    /// Start of the exposure run.
    pub since: Epoch,
    /// Time at which the duration threshold was crossed.
    pub at: Epoch,
    /// The temperature readings collected over the run (`A[].temp`).
    pub readings: Vec<(Epoch, f64)>,
}

/// A parameterised hybrid monitoring query over object events and a
/// temperature stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExposureQuery {
    /// Query name used in alerts (e.g. `"Q1"`).
    pub name: String,
    /// Restrict the query to objects with this product property
    /// (`None` = all objects).
    pub product_class: Option<String>,
    /// Containers that count as freezers for the `IsA 'freezer'` predicate.
    /// Only consulted when `use_containment` is true.
    pub freezer_containers: BTreeSet<TagId>,
    /// Temperature threshold: an event qualifies when the temperature at the
    /// object's location exceeds this value.
    pub temp_threshold: f64,
    /// Required uninterrupted exposure duration in seconds.
    pub duration_secs: u32,
    /// Whether the query uses the inferred containment (Q1) or only the
    /// inferred location (Q2).
    pub use_containment: bool,
}

impl ExposureQuery {
    /// Query 1 of the paper: product outside a freezer, above 0 °C, for six
    /// hours.
    pub fn q1(freezer_containers: impl IntoIterator<Item = TagId>) -> ExposureQuery {
        ExposureQuery {
            name: "Q1".to_string(),
            product_class: Some("temperature-sensitive".to_string()),
            freezer_containers: freezer_containers.into_iter().collect(),
            temp_threshold: 0.0,
            duration_secs: 6 * 3600,
            use_containment: true,
        }
    }

    /// Query 2 of the paper: frozen food above 10 °C for ten hours.
    pub fn q2() -> ExposureQuery {
        ExposureQuery {
            name: "Q2".to_string(),
            product_class: Some("frozen-food".to_string()),
            freezer_containers: BTreeSet::new(),
            temp_threshold: 10.0,
            duration_secs: 10 * 3600,
            use_containment: false,
        }
    }

    /// Whether the query applies to this object at all (the product-class
    /// filter of the inner query block).
    pub fn applies_to(&self, event: &ObjectEvent) -> bool {
        match &self.product_class {
            None => true,
            Some(class) => event.is_a(class),
        }
    }

    /// Whether an event *qualifies* as exposure: the containment predicate
    /// (`!(container IsA 'freezer') or container = NULL`) and the temperature
    /// predicate both hold. `temperature` is the latest reading at the
    /// event's location (`None` = no reading yet, which never qualifies).
    pub fn qualifies(&self, event: &ObjectEvent, temperature: Option<f64>) -> bool {
        let container_ok = if self.use_containment {
            match event.container {
                None => true,
                Some(c) => !self.freezer_containers.contains(&c),
            }
        } else {
            true
        };
        let temp_ok = temperature
            .map(|t| t > self.temp_threshold)
            .unwrap_or(false);
        container_ok && temp_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_types::LocationId;

    fn event(container: Option<TagId>, class: &str) -> ObjectEvent {
        ObjectEvent::new(Epoch(0), TagId::item(1), LocationId(0), container).with_property(class)
    }

    #[test]
    fn q1_parameters_match_the_paper() {
        let q1 = ExposureQuery::q1([TagId::case(9)]);
        assert_eq!(q1.duration_secs, 6 * 3600);
        assert_eq!(q1.temp_threshold, 0.0);
        assert!(q1.use_containment);
        let q2 = ExposureQuery::q2();
        assert_eq!(q2.duration_secs, 10 * 3600);
        assert_eq!(q2.temp_threshold, 10.0);
        assert!(!q2.use_containment);
    }

    #[test]
    fn product_class_filter() {
        let q1 = ExposureQuery::q1([]);
        assert!(q1.applies_to(&event(None, "temperature-sensitive")));
        assert!(!q1.applies_to(&event(None, "frozen-food")));
        let any = ExposureQuery {
            product_class: None,
            ..ExposureQuery::q2()
        };
        assert!(any.applies_to(&event(None, "whatever")));
    }

    #[test]
    fn q1_qualification_uses_container_and_temperature() {
        let freezer = TagId::case(9);
        let q1 = ExposureQuery::q1([freezer]);
        let outside = event(Some(TagId::case(1)), "temperature-sensitive");
        let inside = event(Some(freezer), "temperature-sensitive");
        let loose = event(None, "temperature-sensitive");
        assert!(q1.qualifies(&outside, Some(21.0)));
        assert!(
            q1.qualifies(&loose, Some(21.0)),
            "container = NULL qualifies"
        );
        assert!(
            !q1.qualifies(&inside, Some(21.0)),
            "inside a freezer never qualifies"
        );
        assert!(!q1.qualifies(&outside, Some(-5.0)), "cold enough is fine");
        assert!(!q1.qualifies(&outside, None), "no temperature reading yet");
    }

    #[test]
    fn q2_ignores_containment() {
        let q2 = ExposureQuery::q2();
        let inside = event(Some(TagId::case(9)), "frozen-food");
        assert!(q2.qualifies(&inside, Some(12.0)));
        assert!(!q2.qualifies(&inside, Some(9.0)));
    }
}
