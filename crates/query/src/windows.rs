//! Window operators used by the monitoring queries.
//!
//! Two windows suffice for Q1/Q2:
//!
//! * `[Partition By sensor Rows 1]` — the latest reading of every sensor,
//!   implemented by [`LatestByLocation`];
//! * a sliding time-range window, implemented by [`SlidingTimeWindow`], used
//!   for bounded retention of per-object histories.

use rfid_types::{Epoch, LocationId, SensorReading};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The latest sensor reading per location — the `[Partition By sensor
/// Rows 1]` window of Query 1.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatestByLocation {
    latest: BTreeMap<LocationId, SensorReading>,
}

impl LatestByLocation {
    /// Create an empty window.
    pub fn new() -> LatestByLocation {
        LatestByLocation::default()
    }

    /// Insert a reading, replacing any older reading of the same location.
    /// Out-of-order readings older than the current one are ignored.
    pub fn insert(&mut self, reading: SensorReading) {
        match self.latest.get(&reading.location) {
            Some(existing) if existing.time > reading.time => {}
            _ => {
                self.latest.insert(reading.location, reading);
            }
        }
    }

    /// The latest reading at a location, if any.
    pub fn at(&self, location: LocationId) -> Option<&SensorReading> {
        self.latest.get(&location)
    }

    /// The latest value at a location, if any.
    pub fn value_at(&self, location: LocationId) -> Option<f64> {
        self.at(location).map(|r| r.value)
    }

    /// The retained readings in ascending location order — the checkpoint
    /// codec's view of the window. Re-inserting them into an empty window
    /// rebuilds it bit-identically.
    pub fn readings(&self) -> impl Iterator<Item = &SensorReading> {
        self.latest.values()
    }

    /// Number of locations with at least one reading.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// Whether no readings have been seen.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }
}

/// A sliding time-range window over timestamped items.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlidingTimeWindow<T> {
    range_secs: u32,
    items: Vec<(Epoch, T)>,
}

impl<T> SlidingTimeWindow<T> {
    /// Create a window retaining items no older than `range_secs` behind the
    /// most recent insertion.
    pub fn new(range_secs: u32) -> SlidingTimeWindow<T> {
        SlidingTimeWindow {
            range_secs,
            items: Vec::new(),
        }
    }

    /// Insert an item with its timestamp and evict anything that has fallen
    /// out of the range.
    pub fn insert(&mut self, time: Epoch, item: T) {
        self.items.push((time, item));
        let newest = self.items.iter().map(|(t, _)| *t).max().unwrap_or(time);
        let cutoff = newest.minus(self.range_secs);
        self.items.retain(|(t, _)| *t >= cutoff);
    }

    /// Items currently inside the window, oldest first.
    pub fn items(&self) -> impl Iterator<Item = (&Epoch, &T)> {
        self.items.iter().map(|(t, item)| (t, item))
    }

    /// Number of items inside the window.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The span (seconds) between the oldest and newest retained items.
    pub fn span_secs(&self) -> u32 {
        match (self.items.first(), self.items.last()) {
            (Some((first, _)), Some((last, _))) => last.since(*first),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_by_location_keeps_only_the_newest_reading() {
        let mut w = LatestByLocation::new();
        assert!(w.is_empty());
        w.insert(SensorReading::new(Epoch(10), LocationId(0), 20.0));
        w.insert(SensorReading::new(Epoch(20), LocationId(0), 22.0));
        w.insert(SensorReading::new(Epoch(5), LocationId(0), -5.0)); // stale, ignored
        w.insert(SensorReading::new(Epoch(8), LocationId(1), -18.0));
        assert_eq!(w.len(), 2);
        assert_eq!(w.value_at(LocationId(0)), Some(22.0));
        assert_eq!(w.value_at(LocationId(1)), Some(-18.0));
        assert_eq!(w.value_at(LocationId(9)), None);
        assert_eq!(w.at(LocationId(0)).unwrap().time, Epoch(20));
    }

    #[test]
    fn sliding_window_evicts_old_items() {
        let mut w: SlidingTimeWindow<u32> = SlidingTimeWindow::new(10);
        for t in 0..20u32 {
            w.insert(Epoch(t), t);
        }
        assert_eq!(w.len(), 11, "items within the last 10 seconds inclusive");
        assert!(w.items().all(|(t, _)| t.0 >= 9));
        assert_eq!(w.span_secs(), 10);
    }

    #[test]
    fn sliding_window_handles_out_of_order_inserts() {
        let mut w: SlidingTimeWindow<&str> = SlidingTimeWindow::new(5);
        w.insert(Epoch(100), "newest");
        w.insert(Epoch(97), "still inside");
        w.insert(Epoch(10), "ancient");
        assert_eq!(w.len(), 2);
        assert!(w.items().all(|(_, v)| *v != "ancient"));
    }

    #[test]
    fn empty_window_reports_zero_span() {
        let w: SlidingTimeWindow<u8> = SlidingTimeWindow::new(5);
        assert!(w.is_empty());
        assert_eq!(w.span_secs(), 0);
    }
}
