//! The `SEQ(A+)` pattern automaton of Query 1.
//!
//! Query 1's outer block matches, per object, an uninterrupted sequence of
//! qualifying events (`A+`, all with the same tag id) whose total duration
//! exceeds a threshold (`A[A.len].time > A[1].time + 6 hrs`). An
//! automaton-based evaluator keeps, per object, (i) the current automaton
//! state, (ii) the minimum values needed for future evaluation (the time of
//! the first qualifying event), and (iii) the values the query returns (the
//! temperature readings collected so far) — exactly the three components of
//! query state enumerated in Appendix B.

use rfid_types::Epoch;
use serde::{Deserialize, Serialize};

/// The state of one object's `SEQ(A+)` automaton.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum AutomatonState {
    /// No qualifying event seen since the last reset.
    #[default]
    Idle,
    /// An uninterrupted run of qualifying events is in progress.
    Accumulating {
        /// Time of the first qualifying event of the run (`A[1].time`).
        since: Epoch,
        /// Values collected so far (`A[].temp` for Query 1).
        readings: Vec<(Epoch, f64)>,
        /// Whether this run has already produced a match (so it is not
        /// reported again every subsequent event).
        fired: bool,
    },
}

/// A completed match of the pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternMatch {
    /// Time of the first qualifying event.
    pub since: Epoch,
    /// Time of the event that completed the match.
    pub at: Epoch,
    /// Collected readings, in time order.
    pub readings: Vec<(Epoch, f64)>,
}

/// Per-object evaluator of `SEQ(A+)` with a duration condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExposureAutomaton {
    /// Required duration between the first and last qualifying event.
    duration_secs: u32,
    /// Current state.
    state: AutomatonState,
}

impl ExposureAutomaton {
    /// Create an automaton requiring an uninterrupted qualifying run of at
    /// least `duration_secs` seconds.
    pub fn new(duration_secs: u32) -> ExposureAutomaton {
        ExposureAutomaton {
            duration_secs,
            state: AutomatonState::Idle,
        }
    }

    /// The current automaton state (exposed for state migration).
    pub fn state(&self) -> &AutomatonState {
        &self.state
    }

    /// Replace the automaton state (used when importing migrated state).
    pub fn restore(&mut self, state: AutomatonState) {
        self.state = state;
    }

    /// The configured duration threshold.
    pub fn duration_secs(&self) -> u32 {
        self.duration_secs
    }

    /// Feed one event. `qualifies` says whether the event satisfies the
    /// query's predicate (e.g. "outside a freezer and temperature > 0 °C");
    /// `value` is the value the query returns (the temperature).
    ///
    /// Returns a match the first time the run's duration crosses the
    /// threshold; further qualifying events extend the run without
    /// re-reporting it. A non-qualifying event resets the automaton.
    pub fn feed(&mut self, time: Epoch, qualifies: bool, value: f64) -> Option<PatternMatch> {
        if !qualifies {
            self.state = AutomatonState::Idle;
            return None;
        }
        match &mut self.state {
            AutomatonState::Idle => {
                self.state = AutomatonState::Accumulating {
                    since: time,
                    readings: vec![(time, value)],
                    fired: false,
                };
                None
            }
            AutomatonState::Accumulating {
                since,
                readings,
                fired,
            } => {
                readings.push((time, value));
                if !*fired && time.since(*since) > self.duration_secs {
                    *fired = true;
                    Some(PatternMatch {
                        since: *since,
                        at: time,
                        readings: readings.clone(),
                    })
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_fires_only_after_the_duration_threshold() {
        let mut a = ExposureAutomaton::new(100);
        assert_eq!(a.feed(Epoch(0), true, 21.0), None);
        assert_eq!(a.feed(Epoch(50), true, 22.0), None);
        assert_eq!(
            a.feed(Epoch(100), true, 23.0),
            None,
            "not strictly greater yet"
        );
        let m = a.feed(Epoch(101), true, 24.0).expect("match");
        assert_eq!(m.since, Epoch(0));
        assert_eq!(m.at, Epoch(101));
        assert_eq!(m.readings.len(), 4);
        // the run keeps extending but does not re-fire
        assert_eq!(a.feed(Epoch(200), true, 25.0), None);
    }

    #[test]
    fn non_qualifying_event_resets_the_run() {
        let mut a = ExposureAutomaton::new(100);
        a.feed(Epoch(0), true, 21.0);
        a.feed(Epoch(90), true, 21.0);
        // back into the freezer: the run resets
        assert_eq!(a.feed(Epoch(95), false, -18.0), None);
        assert_eq!(*a.state(), AutomatonState::Idle);
        // a new run must accumulate the full duration again
        assert_eq!(a.feed(Epoch(100), true, 21.0), None);
        assert_eq!(a.feed(Epoch(150), true, 21.0), None);
        let m = a.feed(Epoch(201), true, 21.0).expect("new run matched");
        assert_eq!(m.since, Epoch(100));
    }

    #[test]
    fn state_can_be_exported_and_restored() {
        let mut a = ExposureAutomaton::new(1000);
        a.feed(Epoch(10), true, 20.0);
        a.feed(Epoch(500), true, 20.5);
        let exported = a.state().clone();
        // a fresh automaton restored from the exported state continues the
        // same run (this is what state migration does between sites)
        let mut b = ExposureAutomaton::new(1000);
        b.restore(exported);
        let m = b
            .feed(Epoch(1011), true, 21.0)
            .expect("run continues across migration");
        assert_eq!(m.since, Epoch(10));
        assert_eq!(m.readings.len(), 3);
    }

    #[test]
    fn idle_automaton_ignores_non_qualifying_events() {
        let mut a = ExposureAutomaton::new(10);
        assert_eq!(a.feed(Epoch(5), false, -20.0), None);
        assert_eq!(*a.state(), AutomatonState::Idle);
        assert_eq!(a.duration_secs(), 10);
    }
}
