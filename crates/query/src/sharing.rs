//! Centroid-based sharing of query state across co-contained objects
//! (Section 4.2, Appendix B).
//!
//! At the exit point of a storage area, the objects of one container have the
//! same container and location and usually very similar query state. The
//! sharing scheme picks the most representative state (the *centroid*, the
//! one minimising the total byte-difference to the others) and stores every
//! other state as a delta against it, which the paper reports to shrink the
//! migrated query state by up to an order of magnitude.
//!
//! The object's tag id is carried outside the diffed payload (it is the
//! partition key, not shared content), and a delta that would be larger than
//! the state itself falls back to storing the full payload, so sharing never
//! makes migration more expensive.

use crate::state::ObjectQueryState;
use rfid_types::TagId;
use serde::{Deserialize, Serialize};

/// A byte-level delta against the centroid payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDelta {
    /// The object this delta reconstructs.
    pub tag: TagId,
    /// `(position, byte)` pairs where this payload differs from the centroid
    /// within the common prefix length. Empty when `full` is used.
    pub edits: Vec<(u32, u8)>,
    /// Bytes beyond the centroid's length (empty if the payload is not
    /// longer). Unused when `full` is set.
    pub suffix: Vec<u8>,
    /// The total length of the reconstructed payload.
    pub len: u32,
    /// Fallback: the full payload, used when a delta would not be smaller.
    pub full: Option<Vec<u8>>,
}

impl StateDelta {
    /// Size of the delta in bytes: 8 for the tag, 4 for the length, 5 per
    /// edit (4-byte position + byte) plus the suffix — or the full payload
    /// when the fallback is used.
    pub fn wire_bytes(&self) -> usize {
        match &self.full {
            Some(full) => 8 + 4 + full.len(),
            None => 8 + 4 + 5 * self.edits.len() + self.suffix.len(),
        }
    }
}

/// A bundle of query states compressed against a centroid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedStateBundle {
    /// The centroid object's tag.
    pub centroid_tag: TagId,
    /// The centroid's full serialized payload.
    pub centroid_bytes: Vec<u8>,
    /// Deltas for every other object.
    pub deltas: Vec<StateDelta>,
}

impl SharedStateBundle {
    /// Total size of the bundle in bytes — what migration actually transfers.
    pub fn wire_bytes(&self) -> usize {
        8 + self.centroid_bytes.len()
            + self
                .deltas
                .iter()
                .map(StateDelta::wire_bytes)
                .sum::<usize>()
    }

    /// Reconstruct every `(tag, payload)` in the bundle (centroid first).
    pub fn expand(&self) -> Vec<(TagId, Vec<u8>)> {
        let mut out = vec![(self.centroid_tag, self.centroid_bytes.clone())];
        for delta in &self.deltas {
            if let Some(full) = &delta.full {
                out.push((delta.tag, full.clone()));
                continue;
            }
            let mut bytes = self.centroid_bytes.clone();
            bytes.resize(delta.len as usize, 0);
            for &(pos, byte) in &delta.edits {
                bytes[pos as usize] = byte;
            }
            let suffix_start = (delta.len as usize).saturating_sub(delta.suffix.len());
            bytes[suffix_start..].copy_from_slice(&delta.suffix);
            out.push((delta.tag, bytes));
        }
        out
    }

    /// Reconstruct the full [`ObjectQueryState`]s in the bundle, assuming
    /// JSON payloads (see [`Self::expand_states_with`] for other codecs).
    pub fn expand_states(&self) -> Result<Vec<ObjectQueryState>, serde_json::Error> {
        self.expand_states_with(state_from_json_payload)
    }

    /// Reconstruct the full [`ObjectQueryState`]s in the bundle using a
    /// caller-provided payload decoder — the inverse of the encoder the
    /// bundle was built with via [`share_states_with`].
    pub fn expand_states_with<E, F>(&self, decode: F) -> Result<Vec<ObjectQueryState>, E>
    where
        F: Fn(TagId, &[u8]) -> Result<ObjectQueryState, E>,
    {
        self.expand()
            .into_iter()
            .map(|(tag, payload)| decode(tag, &payload))
            .collect()
    }
}

/// The default diffable payload of a query state — everything except the tag
/// id, serialized as JSON. Kept public so alternative wire codecs can fall
/// back to (or test against) the debuggable representation.
pub fn json_payload(state: &ObjectQueryState) -> Vec<u8> {
    serde_json::to_vec(&(&state.query, &state.automaton)).expect("payload serializes")
}

/// Rebuild an [`ObjectQueryState`] from its tag and a [`json_payload`].
pub fn state_from_json_payload(
    tag: TagId,
    payload: &[u8],
) -> Result<ObjectQueryState, serde_json::Error> {
    let (query, automaton) = serde_json::from_slice(payload)?;
    Ok(ObjectQueryState {
        query,
        tag,
        automaton,
    })
}

/// Byte distance between two serialized payloads: differing positions within
/// the common prefix plus the length difference.
fn distance(a: &[u8], b: &[u8]) -> usize {
    let common = a.len().min(b.len());
    let diff = a[..common]
        .iter()
        .zip(&b[..common])
        .filter(|(x, y)| x != y)
        .count();
    diff + (a.len().max(b.len()) - common)
}

/// Build a delta that reconstructs `payload` from `centroid`, falling back to
/// the full payload when the delta would not be smaller.
fn delta_against(centroid: &[u8], tag: TagId, payload: &[u8]) -> StateDelta {
    let common = centroid.len().min(payload.len());
    let edits: Vec<(u32, u8)> = (0..common)
        .filter(|&i| centroid[i] != payload[i])
        .map(|i| (i as u32, payload[i]))
        .collect();
    let suffix = if payload.len() > centroid.len() {
        payload[centroid.len()..].to_vec()
    } else {
        Vec::new()
    };
    let delta = StateDelta {
        tag,
        edits,
        suffix,
        len: payload.len() as u32,
        full: None,
    };
    if delta.wire_bytes() >= 8 + 4 + payload.len() {
        StateDelta {
            tag,
            edits: Vec::new(),
            suffix: Vec::new(),
            len: payload.len() as u32,
            full: Some(payload.to_vec()),
        }
    } else {
        delta
    }
}

/// Compress a group of per-object query states (typically the objects of one
/// container) with centroid-based sharing over the default JSON payloads.
///
/// Returns `None` when the group is empty.
pub fn share_states(states: &[ObjectQueryState]) -> Option<SharedStateBundle> {
    share_states_with(states, json_payload)
}

/// Compress a group of per-object query states with centroid-based sharing,
/// serializing each state's diffable payload with a caller-provided encoder
/// (the compact binary wire codec, for instance). The byte-level diffing is
/// representation-agnostic: it only needs payloads that are deterministic per
/// state.
///
/// Returns `None` when the group is empty.
pub fn share_states_with<F>(states: &[ObjectQueryState], payload: F) -> Option<SharedStateBundle>
where
    F: Fn(&ObjectQueryState) -> Vec<u8>,
{
    if states.is_empty() {
        return None;
    }
    let serialized: Vec<(TagId, Vec<u8>)> = states.iter().map(|s| (s.tag, payload(s))).collect();
    // Pick the centroid: the payload minimising the total distance to all
    // others (O(n^2), acceptable for the 20-50 objects of one case).
    let (centroid_idx, _) = serialized
        .iter()
        .enumerate()
        .map(|(i, (_, bytes))| {
            let total: usize = serialized
                .iter()
                .map(|(_, other)| distance(bytes, other))
                .sum();
            (i, total)
        })
        .min_by_key(|&(_, total)| total)?;
    let (centroid_tag, centroid_bytes) = serialized[centroid_idx].clone();
    let deltas = serialized
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != centroid_idx)
        .map(|(_, (tag, bytes))| delta_against(&centroid_bytes, *tag, bytes))
        .collect();
    Some(SharedStateBundle {
        centroid_tag,
        centroid_bytes,
        deltas,
    })
}

/// The total size of a group of states *without* sharing — the baseline the
/// paper's Section 5.4 table compares against — under the default JSON
/// representation.
pub fn unshared_bytes(states: &[ObjectQueryState]) -> usize {
    states.iter().map(ObjectQueryState::wire_bytes).sum()
}

/// The unshared baseline under a caller-provided per-state size measure, so
/// the with/without-sharing comparison stays apples-to-apples when migration
/// uses a different wire codec.
pub fn unshared_bytes_with<F>(states: &[ObjectQueryState], size: F) -> usize
where
    F: Fn(&ObjectQueryState) -> usize,
{
    states.iter().map(size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AutomatonState;
    use rfid_types::Epoch;

    fn state(tag: TagId, since: u32, n: usize) -> ObjectQueryState {
        ObjectQueryState {
            query: "Q1".to_string(),
            tag,
            automaton: AutomatonState::Accumulating {
                since: Epoch(since),
                readings: (0..n)
                    .map(|i| (Epoch(since + i as u32 * 10), 21.0))
                    .collect(),
                fired: false,
            },
        }
    }

    #[test]
    fn sharing_is_lossless() {
        let states: Vec<ObjectQueryState> = (0..10)
            .map(|i| state(TagId::item(i), 100 + (i as u32 % 3), 8))
            .collect();
        let bundle = share_states(&states).unwrap();
        let expanded = bundle.expand_states().unwrap();
        assert_eq!(expanded.len(), states.len());
        for original in &states {
            let recovered = expanded.iter().find(|s| s.tag == original.tag).unwrap();
            assert_eq!(recovered, original);
        }
    }

    #[test]
    fn similar_states_compress_by_a_large_factor() {
        // 20 objects of the same case with identical exposure runs.
        let states: Vec<ObjectQueryState> =
            (0..20).map(|i| state(TagId::item(i), 100, 20)).collect();
        let bundle = share_states(&states).unwrap();
        let shared = bundle.wire_bytes();
        let unshared = unshared_bytes(&states);
        assert!(
            shared * 5 < unshared,
            "sharing should give at least 5x reduction ({shared} vs {unshared})"
        );
    }

    #[test]
    fn dissimilar_states_still_round_trip_and_never_blow_up() {
        let states = vec![
            state(TagId::item(1), 0, 2),
            state(TagId::item(2), 5000, 40),
            ObjectQueryState {
                query: "Q2".to_string(),
                tag: TagId::item(3),
                automaton: AutomatonState::Idle,
            },
        ];
        let bundle = share_states(&states).unwrap();
        let expanded = bundle.expand_states().unwrap();
        for original in &states {
            assert_eq!(
                expanded.iter().find(|s| s.tag == original.tag).unwrap(),
                original
            );
        }
        // the delta fallback caps the cost near the unshared size
        assert!(bundle.wire_bytes() <= unshared_bytes(&states) + 64);
    }

    #[test]
    fn empty_group_yields_none_and_single_state_has_no_deltas() {
        assert!(share_states(&[]).is_none());
        let one = [state(TagId::item(1), 0, 3)];
        let bundle = share_states(&one).unwrap();
        assert!(bundle.deltas.is_empty());
        assert_eq!(bundle.centroid_tag, TagId::item(1));
        assert_eq!(bundle.expand().len(), 1);
    }

    #[test]
    fn distance_counts_differences_and_length_gap() {
        assert_eq!(distance(b"abcd", b"abcd"), 0);
        assert_eq!(distance(b"abcd", b"abxd"), 1);
        assert_eq!(distance(b"abcd", b"ab"), 2);
        assert_eq!(distance(b"ab", b"abcd"), 2);
    }
}
