//! Per-object query state (Section 4.2, Appendix B).
//!
//! Global query processing maintains computation state for each object; when
//! the object moves to another site, this state is shipped along (or written
//! to the tag's memory). The state of one object for one query consists of
//! (i) the automaton state, (ii) the minimum values needed for future
//! evaluation and (iii) the values the query returns — all captured by the
//! [`AutomatonState`] inside [`ObjectQueryState`].

use crate::pattern::AutomatonState;
use rfid_types::TagId;
use serde::{Deserialize, Serialize};

/// The migratable query state of one object for one registered query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectQueryState {
    /// The query this state belongs to.
    pub query: String,
    /// The object this state belongs to.
    pub tag: TagId,
    /// The automaton state (including collected return values).
    pub automaton: AutomatonState,
}

impl ObjectQueryState {
    /// Serialize to the byte representation used both for migration and for
    /// the state-size accounting of Section 5.4.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("query state serializes")
    }

    /// Reconstruct from the byte representation.
    pub fn from_bytes(bytes: &[u8]) -> Result<ObjectQueryState, serde_json::Error> {
        serde_json::from_slice(bytes)
    }

    /// Size of the serialized state in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_types::Epoch;

    fn accumulating(tag: TagId, n: usize) -> ObjectQueryState {
        ObjectQueryState {
            query: "Q1".to_string(),
            tag,
            automaton: AutomatonState::Accumulating {
                since: Epoch(100),
                readings: (0..n)
                    .map(|i| (Epoch(100 + i as u32 * 10), 21.0 + i as f64 * 0.1))
                    .collect(),
                fired: false,
            },
        }
    }

    #[test]
    fn state_round_trips_through_bytes() {
        let state = accumulating(TagId::item(7), 5);
        let bytes = state.to_bytes();
        assert_eq!(bytes.len(), state.wire_bytes());
        let back = ObjectQueryState::from_bytes(&bytes).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn idle_state_is_smaller_than_a_long_run() {
        let idle = ObjectQueryState {
            query: "Q1".to_string(),
            tag: TagId::item(1),
            automaton: AutomatonState::Idle,
        };
        let long = accumulating(TagId::item(1), 50);
        assert!(idle.wire_bytes() < long.wire_bytes());
        assert!(
            long.wire_bytes() > 500,
            "collected readings dominate the state size"
        );
    }

    #[test]
    fn corrupted_bytes_fail_to_parse() {
        assert!(ObjectQueryState::from_bytes(b"not json").is_err());
    }
}
