//! The per-site query processor.
//!
//! A monitoring query is registered with every site ("querying where an
//! object is located"). The processor consumes the enriched object-event
//! stream produced by the inference engine together with the site's sensor
//! streams, maintains per-object query state for every registered query, and
//! emits alerts. Per-object state can be exported when the object leaves the
//! site and imported at the next one; groups of states can be compressed with
//! centroid-based sharing before transfer.

use crate::exposure::{Alert, ExposureQuery};
use crate::pattern::ExposureAutomaton;
use crate::state::ObjectQueryState;
use crate::windows::LatestByLocation;
use rfid_types::{ObjectEvent, SensorReading, TagId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The complete durable state of a [`QueryProcessor`], produced by
/// [`QueryProcessor::snapshot`] and consumed by
/// [`QueryProcessor::restore`].
///
/// A snapshot captures everything the processor accumulated at runtime — the
/// latest sensor reading per location, every per-object automaton, and the
/// alert log. It deliberately excludes the registered queries: a restore
/// target is constructed with the same registrations (the distributed driver
/// registers a site's queries before restoring its state), and automaton
/// durations are re-derived from them on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorSnapshot {
    /// The latest sensor reading of every location, in location order.
    pub temperatures: Vec<SensorReading>,
    /// Every per-object automaton, in `(query, tag)` order.
    pub automata: Vec<ObjectQueryState>,
    /// All alerts emitted so far.
    pub alerts: Vec<Alert>,
}

/// Per-site continuous query processor.
///
/// # Example
///
/// A minute of continuous warm exposure trips a (shortened) Q1:
///
/// ```
/// use rfid_query::{ExposureQuery, QueryProcessor};
/// use rfid_types::{Epoch, LocationId, ObjectEvent, SensorReading, TagId};
///
/// let mut processor = QueryProcessor::new();
/// processor.register(ExposureQuery { duration_secs: 60, ..ExposureQuery::q1([]) });
///
/// // The shelf at location 1 sits at 4 °C; the object stays there past the
/// // required minute of exposure.
/// processor.on_sensor(SensorReading::new(Epoch(0), LocationId(1), 4.0));
/// for t in (0..=70u32).step_by(10) {
///     let mut event = ObjectEvent::new(Epoch(t), TagId::item(1), LocationId(1), None);
///     event.property = Some("temperature-sensitive".to_string());
///     processor.on_event(&event);
/// }
/// assert_eq!(processor.alerts().len(), 1);
/// assert_eq!(processor.alerts()[0].query, "Q1");
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryProcessor {
    queries: Vec<ExposureQuery>,
    temperatures: LatestByLocation,
    automata: BTreeMap<(String, TagId), ExposureAutomaton>,
    alerts: Vec<Alert>,
}

impl QueryProcessor {
    /// Create a processor with no registered queries.
    pub fn new() -> QueryProcessor {
        QueryProcessor::default()
    }

    /// Register a monitoring query.
    pub fn register(&mut self, query: ExposureQuery) {
        self.queries.push(query);
    }

    /// The registered queries.
    pub fn queries(&self) -> &[ExposureQuery] {
        &self.queries
    }

    /// Feed a sensor reading (local processing of the inner query block).
    pub fn on_sensor(&mut self, reading: SensorReading) {
        self.temperatures.insert(reading);
    }

    /// Feed one enriched object event; returns any alerts it triggered.
    pub fn on_event(&mut self, event: &ObjectEvent) -> Vec<Alert> {
        let mut fired = Vec::new();
        let temperature = self.temperatures.value_at(event.location);
        for query in &self.queries {
            if !query.applies_to(event) {
                continue;
            }
            let qualifies = query.qualifies(event, temperature);
            let key = (query.name.clone(), event.tag);
            let automaton = self
                .automata
                .entry(key)
                .or_insert_with(|| ExposureAutomaton::new(query.duration_secs));
            if let Some(m) = automaton.feed(event.time, qualifies, temperature.unwrap_or(f64::NAN))
            {
                let alert = Alert {
                    query: query.name.clone(),
                    tag: event.tag,
                    since: m.since,
                    at: m.at,
                    readings: m.readings,
                };
                fired.push(alert.clone());
                self.alerts.push(alert);
            }
        }
        fired
    }

    /// All alerts emitted so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alerts emitted by a specific query.
    pub fn alerts_for(&self, query: &str) -> Vec<&Alert> {
        self.alerts.iter().filter(|a| a.query == query).collect()
    }

    /// Export the query state of one object for every registered query
    /// (only queries for which the object has state are returned).
    pub fn export_state(&self, tag: TagId) -> Vec<ObjectQueryState> {
        self.automata
            .iter()
            .filter(|((_, t), _)| *t == tag)
            .map(|((query, _), automaton)| ObjectQueryState {
                query: query.clone(),
                tag,
                automaton: automaton.state().clone(),
            })
            .collect()
    }

    /// Total serialized size of one object's query state, in bytes.
    pub fn state_bytes(&self, tag: TagId) -> usize {
        self.export_state(tag)
            .iter()
            .map(ObjectQueryState::wire_bytes)
            .sum()
    }

    /// Import query state for an object arriving from another site.
    pub fn import_state(&mut self, states: Vec<ObjectQueryState>) {
        for state in states {
            let duration = self
                .queries
                .iter()
                .find(|q| q.name == state.query)
                .map(|q| q.duration_secs)
                .unwrap_or(0);
            let automaton = self
                .automata
                .entry((state.query.clone(), state.tag))
                .or_insert_with(|| ExposureAutomaton::new(duration));
            automaton.restore(state.automaton);
        }
    }

    /// Drop the query state of an object that has left the site.
    pub fn forget(&mut self, tag: TagId) {
        self.automata.retain(|(_, t), _| *t != tag);
    }

    /// Capture the processor's complete durable state — see
    /// [`ProcessorSnapshot`] for what is (and is not) included.
    pub fn snapshot(&self) -> ProcessorSnapshot {
        ProcessorSnapshot {
            temperatures: self.temperatures.readings().copied().collect(),
            automata: self
                .automata
                .iter()
                .map(|((query, tag), automaton)| ObjectQueryState {
                    query: query.clone(),
                    tag: *tag,
                    automaton: automaton.state().clone(),
                })
                .collect(),
            alerts: self.alerts.clone(),
        }
    }

    /// Replace the processor's runtime state with a snapshot previously
    /// taken by [`Self::snapshot`], on this processor or on any processor
    /// with the same queries registered (automaton durations are re-derived
    /// from the registrations, exactly as [`Self::import_state`] does).
    pub fn restore(&mut self, snapshot: ProcessorSnapshot) {
        self.temperatures = LatestByLocation::new();
        for reading in snapshot.temperatures {
            self.temperatures.insert(reading);
        }
        self.automata.clear();
        self.import_state(snapshot.automata);
        self.alerts = snapshot.alerts;
    }

    /// Number of per-object automata currently maintained.
    pub fn tracked_states(&self) -> usize {
        self.automata.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_types::{Epoch, LocationId};

    fn warm(loc: u16, t: u32) -> SensorReading {
        SensorReading::new(Epoch(t), LocationId(loc), 21.0)
    }

    fn cold(loc: u16, t: u32) -> SensorReading {
        SensorReading::new(Epoch(t), LocationId(loc), -18.0)
    }

    fn event(t: u32, loc: u16, container: Option<TagId>) -> ObjectEvent {
        ObjectEvent::new(Epoch(t), TagId::item(1), LocationId(loc), container)
            .with_property("temperature-sensitive")
    }

    fn q1_short(freezers: impl IntoIterator<Item = TagId>) -> ExposureQuery {
        ExposureQuery {
            duration_secs: 100,
            ..ExposureQuery::q1(freezers)
        }
    }

    #[test]
    fn q1_alert_fires_after_sustained_warm_exposure() {
        let mut qp = QueryProcessor::new();
        qp.register(q1_short([TagId::case(9)]));
        qp.on_sensor(warm(0, 0));
        let mut alerts = Vec::new();
        for t in (0..=120).step_by(10) {
            alerts.extend(qp.on_event(&event(t, 0, Some(TagId::case(1)))));
        }
        assert_eq!(alerts.len(), 1);
        let alert = &alerts[0];
        assert_eq!(alert.query, "Q1");
        assert_eq!(alert.tag, TagId::item(1));
        assert_eq!(alert.since, Epoch(0));
        assert!(alert.at.0 > 100);
        assert!(alert.readings.iter().all(|(_, v)| *v > 0.0));
        assert_eq!(qp.alerts_for("Q1").len(), 1);
    }

    #[test]
    fn being_in_a_freezer_container_or_cold_location_prevents_the_alert() {
        let freezer = TagId::case(9);
        let mut qp = QueryProcessor::new();
        qp.register(q1_short([freezer]));
        qp.on_sensor(warm(0, 0));
        qp.on_sensor(cold(1, 0));
        for t in (0..=200).step_by(10) {
            // inside the freezer container at a warm location: no alert
            qp.on_event(&event(t, 0, Some(freezer)));
        }
        for t in (0..=200).step_by(10) {
            // outside any container but at a cold location: no alert
            qp.on_event(&event(t, 1, None));
        }
        assert!(qp.alerts().is_empty());
    }

    #[test]
    fn product_class_filter_excludes_other_objects() {
        let mut qp = QueryProcessor::new();
        qp.register(q1_short([]));
        qp.on_sensor(warm(0, 0));
        let other = ObjectEvent::new(Epoch(0), TagId::item(2), LocationId(0), None)
            .with_property("stationery");
        for t in (0..=200).step_by(10) {
            let mut e = other.clone();
            e.time = Epoch(t);
            qp.on_event(&e);
        }
        assert!(qp.alerts().is_empty());
        assert_eq!(qp.tracked_states(), 0, "non-matching objects get no state");
    }

    #[test]
    fn state_export_import_continues_the_run_at_another_site() {
        let mut site_a = QueryProcessor::new();
        site_a.register(q1_short([]));
        site_a.on_sensor(warm(0, 0));
        for t in (0..=60).step_by(10) {
            site_a.on_event(&event(t, 0, None));
        }
        assert!(site_a.alerts().is_empty(), "not exposed long enough yet");
        let state = site_a.export_state(TagId::item(1));
        assert_eq!(state.len(), 1);
        assert!(site_a.state_bytes(TagId::item(1)) > 0);
        site_a.forget(TagId::item(1));
        assert_eq!(site_a.tracked_states(), 0);

        // The object arrives at site B, which imports the state; the exposure
        // run continues and crosses the threshold counting time from site A.
        let mut site_b = QueryProcessor::new();
        site_b.register(q1_short([]));
        site_b.on_sensor(warm(3, 70));
        let mut alerts = Vec::new();
        site_b.import_state(state);
        for t in (70..=120).step_by(10) {
            alerts.extend(
                site_b.on_event(
                    &ObjectEvent::new(Epoch(t), TagId::item(1), LocationId(3), None)
                        .with_property("temperature-sensitive"),
                ),
            );
        }
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].since, Epoch(0), "exposure started at site A");
    }

    /// Restoring a snapshot into a fresh processor (same registrations) and
    /// continuing must match the processor that never stopped.
    #[test]
    fn snapshot_restore_round_trips_bitwise() {
        let mut live = QueryProcessor::new();
        live.register(q1_short([]));
        live.on_sensor(warm(0, 0));
        for t in (0..=60).step_by(10) {
            live.on_event(&event(t, 0, None));
        }
        let snapshot = live.snapshot();
        assert_eq!(snapshot, live.snapshot(), "snapshot is a pure read");

        let mut restored = QueryProcessor::new();
        restored.register(q1_short([]));
        restored.restore(snapshot);
        assert_eq!(restored.tracked_states(), live.tracked_states());

        for qp in [&mut live, &mut restored] {
            for t in (70..=120).step_by(10) {
                qp.on_event(&event(t, 0, None));
            }
        }
        assert_eq!(live.alerts(), restored.alerts());
        assert_eq!(live.alerts().len(), 1, "exposure crossed the threshold");
        assert_eq!(live.snapshot(), restored.snapshot());
    }

    #[test]
    fn q1_and_q2_run_side_by_side() {
        let mut qp = QueryProcessor::new();
        qp.register(q1_short([]));
        qp.register(ExposureQuery {
            duration_secs: 50,
            temp_threshold: 10.0,
            product_class: Some("temperature-sensitive".to_string()),
            ..ExposureQuery::q2()
        });
        qp.on_sensor(warm(0, 0));
        for t in (0..=120).step_by(10) {
            qp.on_event(&event(t, 0, None));
        }
        assert_eq!(qp.alerts_for("Q1").len(), 1);
        assert_eq!(qp.alerts_for("Q2").len(), 1);
        assert_eq!(qp.tracked_states(), 2);
        assert_eq!(qp.queries().len(), 2);
    }
}
