//! Property-based tests of the shared data model.

use proptest::prelude::*;
use rfid_types::{
    ContainmentChange, ContainmentMap, ContainmentTimeline, Epoch, RawReading, ReaderId,
    ReadingBatch, TagId, TagKind,
};

fn arb_kind() -> impl Strategy<Value = TagKind> {
    prop_oneof![
        Just(TagKind::Item),
        Just(TagKind::Case),
        Just(TagKind::Pallet)
    ]
}

proptest! {
    /// Tag ids round-trip their kind and serial for any 62-bit serial.
    #[test]
    fn tag_id_roundtrip(kind in arb_kind(), serial in 0u64..(1 << 62)) {
        let tag = TagId::new(kind, serial);
        prop_assert_eq!(tag.kind(), kind);
        prop_assert_eq!(tag.serial(), serial);
        prop_assert_eq!(TagId::from_raw(tag.raw()), tag);
        prop_assert_eq!(tag.is_object(), kind == TagKind::Item);
        prop_assert_eq!(tag.is_container(), kind != TagKind::Item);
    }

    /// Epoch arithmetic never panics and respects ordering.
    #[test]
    fn epoch_arithmetic_is_total(a in 0u32..1_000_000, b in 0u32..1_000_000) {
        let e = Epoch(a);
        prop_assert_eq!(e.plus(b).since(e), b);
        prop_assert!(e.minus(b) <= e);
        prop_assert_eq!(Epoch(a).since(Epoch(b)), a.saturating_sub(b));
    }

    /// A reading batch is always sorted and de-duplicated after `readings()`,
    /// and retain_since never keeps anything older than the cutoff.
    #[test]
    fn reading_batch_invariants(
        readings in prop::collection::vec((0u32..500, 0u64..20, 0u16..6), 0..200),
        cutoff in 0u32..500,
    ) {
        let raw: Vec<RawReading> = readings
            .iter()
            .map(|&(t, serial, reader)| RawReading::new(Epoch(t), TagId::item(serial), ReaderId(reader)))
            .collect();
        let mut batch = ReadingBatch::from_readings(raw.clone());
        let sorted = batch.readings().to_vec();
        prop_assert!(sorted.windows(2).all(|w| w[0] < w[1]), "sorted and strictly deduped");
        prop_assert!(sorted.len() <= raw.len());
        let mut truncated = batch.clone();
        truncated.retain_since(Epoch(cutoff));
        prop_assert!(truncated.readings_unordered().iter().all(|r| r.time >= Epoch(cutoff)));
        prop_assert!(truncated.len() <= batch.len());
    }

    /// The timeline's `at` snapshot always agrees with per-object
    /// `container_at`, for any (time-ordered) sequence of changes.
    #[test]
    fn timeline_snapshot_agrees_with_point_queries(
        initial in prop::collection::vec((0u64..10, 0u64..5), 0..10),
        changes in prop::collection::vec((0u32..300, 0u64..10, prop::option::of(0u64..5)), 0..20),
        query_at in 0u32..400,
    ) {
        let map: ContainmentMap = initial
            .iter()
            .map(|&(o, c)| (TagId::item(o), TagId::case(c)))
            .collect();
        let mut timeline = ContainmentTimeline::new(map);
        let mut ordered = changes.clone();
        ordered.sort_by_key(|&(t, _, _)| t);
        for (t, o, c) in ordered {
            let object = TagId::item(o);
            let old = timeline.container_at(object, Epoch(t));
            timeline.record(ContainmentChange {
                time: Epoch(t),
                object,
                old_container: old,
                new_container: c.map(TagId::case),
            });
        }
        let snapshot = timeline.at(Epoch(query_at));
        for o in 0u64..10 {
            let object = TagId::item(o);
            prop_assert_eq!(snapshot.container_of(object), timeline.container_at(object, Epoch(query_at)));
        }
    }

    /// Containment-map agreement is symmetric, bounded by [0, 1] and equals 1
    /// on identical maps.
    #[test]
    fn agreement_properties(
        a in prop::collection::vec((0u64..10, 0u64..5), 0..10),
        b in prop::collection::vec((0u64..10, 0u64..5), 0..10),
    ) {
        let ma: ContainmentMap = a.iter().map(|&(o, c)| (TagId::item(o), TagId::case(c))).collect();
        let mb: ContainmentMap = b.iter().map(|&(o, c)| (TagId::item(o), TagId::case(c))).collect();
        let ab = ma.agreement(&mb);
        let ba = mb.agreement(&ma);
        prop_assert!((ab - ba).abs() < 1e-12, "agreement is symmetric");
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ma.agreement(&ma) - 1.0).abs() < 1e-12);
    }
}
