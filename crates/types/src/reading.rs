//! Raw RFID readings — the `(time, tag id, reader id)` schema emitted by
//! readers (Section 2 of the paper) — plus a batch container with the
//! index structures the inference engine needs.

use crate::ids::{Epoch, ReaderId, TagId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A single raw RFID observation: at epoch `time`, the reader `reader`
/// successfully interrogated tag `tag`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RawReading {
    /// Epoch in which the interrogation happened.
    pub time: Epoch,
    /// The tag that responded.
    pub tag: TagId,
    /// The reader (and therefore location) that heard the response.
    pub reader: ReaderId,
}

impl RawReading {
    /// Construct a reading.
    pub fn new(time: Epoch, tag: TagId, reader: ReaderId) -> RawReading {
        RawReading { time, tag, reader }
    }

    /// Approximate wire size of one reading in bytes, used for the
    /// communication-cost accounting of Table 5 (time: 4, tag: 8, reader: 2).
    pub const WIRE_BYTES: usize = 14;
}

/// An ordered batch of raw readings covering a span of epochs, with
/// per-tag and per-epoch indexes.
///
/// This is the unit the inference engine consumes: readers at a site append
/// readings as they observe tags, and every inference period (default 300 s)
/// the engine runs [RFINFER](https://doi.org/10.14778/1952376.1952380) over a
/// batch that combines the critical region, the recent history and the new
/// readings.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReadingBatch {
    readings: Vec<RawReading>,
    sorted: bool,
}

impl ReadingBatch {
    /// Create an empty batch.
    pub fn new() -> ReadingBatch {
        ReadingBatch::default()
    }

    /// Create a batch from a vector of readings (need not be sorted).
    pub fn from_readings(readings: Vec<RawReading>) -> ReadingBatch {
        let mut batch = ReadingBatch {
            readings,
            sorted: false,
        };
        batch.ensure_sorted();
        batch
    }

    /// Append one reading.
    pub fn push(&mut self, reading: RawReading) {
        if let Some(last) = self.readings.last() {
            if *last > reading {
                self.sorted = false;
            }
        }
        self.readings.push(reading);
    }

    /// Append all readings from another batch.
    pub fn extend_from(&mut self, other: &ReadingBatch) {
        for r in &other.readings {
            self.push(*r);
        }
    }

    /// Sort readings by (time, tag, reader) and deduplicate exact duplicates.
    pub fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.readings.sort_unstable();
            self.readings.dedup();
            self.sorted = true;
        }
    }

    /// All readings in (time, tag, reader) order.
    pub fn readings(&mut self) -> &[RawReading] {
        self.ensure_sorted();
        &self.readings
    }

    /// All readings without forcing a sort (order unspecified).
    pub fn readings_unordered(&self) -> &[RawReading] {
        &self.readings
    }

    /// The readings in `(time, tag, reader)` order *without copying*, if the
    /// batch is already sorted and de-duplicated (which every batch built via
    /// [`Self::from_readings`] is). Returns `None` when a sort would be
    /// required first — callers that cannot mutate the batch should fall back
    /// to sorting their own copy of [`Self::readings_unordered`].
    pub fn sorted_readings(&self) -> Option<&[RawReading]> {
        if self.sorted || self.readings.is_empty() {
            Some(&self.readings)
        } else {
            None
        }
    }

    /// Number of readings in the batch.
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// Whether the batch holds no readings.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// The first (smallest) epoch present, if any.
    pub fn first_epoch(&self) -> Option<Epoch> {
        self.readings.iter().map(|r| r.time).min()
    }

    /// The last (largest) epoch present, if any.
    pub fn last_epoch(&self) -> Option<Epoch> {
        self.readings.iter().map(|r| r.time).max()
    }

    /// The set of distinct tags observed in this batch.
    pub fn tags(&self) -> BTreeSet<TagId> {
        self.readings.iter().map(|r| r.tag).collect()
    }

    /// The set of distinct epochs with at least one reading.
    pub fn epochs(&self) -> BTreeSet<Epoch> {
        self.readings.iter().map(|r| r.time).collect()
    }

    /// Group the batch by tag: for every tag, the list of (epoch, reader)
    /// observations, sorted by epoch.
    pub fn by_tag(&self) -> BTreeMap<TagId, Vec<(Epoch, ReaderId)>> {
        let mut map: BTreeMap<TagId, Vec<(Epoch, ReaderId)>> = BTreeMap::new();
        for r in &self.readings {
            map.entry(r.tag).or_default().push((r.time, r.reader));
        }
        for obs in map.values_mut() {
            obs.sort_unstable();
            obs.dedup();
        }
        map
    }

    /// Retain only readings with `time >= cutoff`. Used by window-based
    /// history truncation.
    pub fn retain_since(&mut self, cutoff: Epoch) {
        self.readings.retain(|r| r.time >= cutoff);
    }

    /// Retain only readings whose epoch falls in one of the given inclusive
    /// ranges. Used by critical-region truncation (keep CR plus the recent
    /// history and drop everything else).
    pub fn retain_ranges(&mut self, ranges: &[(Epoch, Epoch)]) {
        self.readings
            .retain(|r| ranges.iter().any(|&(lo, hi)| r.time >= lo && r.time <= hi));
    }

    /// Extract the sub-batch of readings belonging to the given tags.
    pub fn filter_tags(&self, tags: &BTreeSet<TagId>) -> ReadingBatch {
        ReadingBatch::from_readings(
            self.readings
                .iter()
                .copied()
                .filter(|r| tags.contains(&r.tag))
                .collect(),
        )
    }

    /// Approximate wire size of the batch in bytes (for communication-cost
    /// accounting when raw readings are shipped between sites).
    pub fn wire_bytes(&self) -> usize {
        self.readings.len() * RawReading::WIRE_BYTES
    }
}

impl FromIterator<RawReading> for ReadingBatch {
    fn from_iter<I: IntoIterator<Item = RawReading>>(iter: I) -> Self {
        ReadingBatch::from_readings(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(t: u32, tag: TagId, reader: u16) -> RawReading {
        RawReading::new(Epoch(t), tag, ReaderId(reader))
    }

    #[test]
    fn batch_sorts_and_dedups() {
        let item = TagId::item(1);
        let case = TagId::case(1);
        let mut batch = ReadingBatch::new();
        batch.push(r(5, item, 0));
        batch.push(r(1, case, 1));
        batch.push(r(5, item, 0)); // duplicate
        batch.push(r(1, item, 1));
        let readings = batch.readings().to_vec();
        assert_eq!(readings.len(), 3);
        assert!(readings.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn batch_epoch_bounds_and_tags() {
        let batch: ReadingBatch = vec![r(3, TagId::item(1), 0), r(9, TagId::case(2), 1)]
            .into_iter()
            .collect();
        assert_eq!(batch.first_epoch(), Some(Epoch(3)));
        assert_eq!(batch.last_epoch(), Some(Epoch(9)));
        assert_eq!(batch.tags().len(), 2);
        assert_eq!(batch.epochs().len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(ReadingBatch::new().first_epoch(), None);
    }

    #[test]
    fn by_tag_groups_and_orders() {
        let item = TagId::item(7);
        let batch: ReadingBatch = vec![r(9, item, 2), r(3, item, 0), r(3, TagId::case(1), 1)]
            .into_iter()
            .collect();
        let grouped = batch.by_tag();
        assert_eq!(grouped.len(), 2);
        let obs = &grouped[&item];
        assert_eq!(obs[0], (Epoch(3), ReaderId(0)));
        assert_eq!(obs[1], (Epoch(9), ReaderId(2)));
    }

    #[test]
    fn retain_since_drops_old_readings() {
        let mut batch: ReadingBatch = (0..10).map(|t| r(t, TagId::item(1), 0)).collect();
        batch.retain_since(Epoch(6));
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.first_epoch(), Some(Epoch(6)));
    }

    #[test]
    fn retain_ranges_keeps_only_requested_windows() {
        let mut batch: ReadingBatch = (0..20).map(|t| r(t, TagId::item(1), 0)).collect();
        batch.retain_ranges(&[(Epoch(2), Epoch(4)), (Epoch(15), Epoch(16))]);
        let epochs: Vec<u32> = batch
            .readings_unordered()
            .iter()
            .map(|r| r.time.0)
            .collect();
        assert_eq!(epochs.len(), 5);
        assert!(epochs
            .iter()
            .all(|&t| (2..=4).contains(&t) || (15..=16).contains(&t)));
    }

    #[test]
    fn filter_tags_extracts_subset() {
        let item = TagId::item(1);
        let other = TagId::item(2);
        let batch: ReadingBatch = vec![r(0, item, 0), r(1, other, 0), r(2, item, 1)]
            .into_iter()
            .collect();
        let subset = batch.filter_tags(&BTreeSet::from([item]));
        assert_eq!(subset.len(), 2);
        assert!(subset.readings_unordered().iter().all(|x| x.tag == item));
    }

    #[test]
    fn sorted_readings_borrows_only_when_already_ordered() {
        let sorted: ReadingBatch = vec![r(1, TagId::item(1), 0), r(2, TagId::item(1), 0)]
            .into_iter()
            .collect();
        assert_eq!(sorted.sorted_readings().unwrap().len(), 2);

        let mut unsorted = ReadingBatch::new();
        assert!(unsorted.sorted_readings().is_some(), "empty is sorted");
        unsorted.push(r(5, TagId::item(1), 0));
        unsorted.push(r(1, TagId::item(1), 0));
        assert!(unsorted.sorted_readings().is_none());
        unsorted.ensure_sorted();
        assert_eq!(unsorted.sorted_readings().unwrap().len(), 2);
    }

    #[test]
    fn wire_bytes_scale_with_len() {
        let batch: ReadingBatch = (0..7).map(|t| r(t, TagId::item(1), 0)).collect();
        assert_eq!(batch.wire_bytes(), 7 * RawReading::WIRE_BYTES);
    }
}
