//! The read-rate table `pi(r, r̄)` of the paper's graphical model
//! (Section 3.1): the probability that the reader at location `r` detects a
//! tag that is physically at location `r̄`.
//!
//! In a deployment these probabilities are measured periodically with
//! reference tags fixed to known locations; both the simulator (to generate
//! readings) and the inference engine (to evaluate the likelihood) use this
//! same structure, which is exactly the assumption the paper makes.

use crate::ids::LocationId;
use serde::{Deserialize, Serialize};

/// Dense `R × R` table of detection probabilities.
///
/// Entry `(r, a)` is the probability that the reader stationed at location
/// `r` reads a tag whose true location is `a` during one interrogation epoch.
/// Probabilities are clamped away from exactly 0 and 1 so that the
/// log-likelihood terms `log pi` and `log (1 - pi)` stay finite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadRateTable {
    num_locations: usize,
    /// Row-major: `rates[r * num_locations + a]`.
    rates: Vec<f64>,
}

/// Smallest probability stored in the table; keeps `ln` finite.
pub const MIN_RATE: f64 = 1e-6;
/// Largest probability stored in the table; keeps `ln(1-p)` finite.
pub const MAX_RATE: f64 = 1.0 - 1e-6;

fn clamp(p: f64) -> f64 {
    p.clamp(MIN_RATE, MAX_RATE)
}

impl ReadRateTable {
    /// Create a table for `num_locations` reader locations where every
    /// reader detects tags at any location with probability `background`
    /// (normally a value close to zero).
    pub fn uniform(num_locations: usize, background: f64) -> ReadRateTable {
        ReadRateTable {
            num_locations,
            rates: vec![clamp(background); num_locations * num_locations],
        }
    }

    /// Create the common deployment shape: every reader detects co-located
    /// tags with probability `own`, tags elsewhere with probability
    /// `background`.
    pub fn diagonal(num_locations: usize, own: f64, background: f64) -> ReadRateTable {
        let mut t = ReadRateTable::uniform(num_locations, background);
        for r in 0..num_locations {
            t.set(LocationId(r as u16), LocationId(r as u16), own);
        }
        t
    }

    /// Number of reader locations `R`.
    pub fn num_locations(&self) -> usize {
        self.num_locations
    }

    /// All locations covered by the table.
    pub fn locations(&self) -> impl Iterator<Item = LocationId> {
        (0..self.num_locations as u16).map(LocationId)
    }

    /// Set `pi(reader, at)`.
    ///
    /// # Panics
    /// Panics if either location index is out of range.
    pub fn set(&mut self, reader: LocationId, at: LocationId, rate: f64) {
        let idx = self.index(reader, at);
        self.rates[idx] = clamp(rate);
    }

    /// `pi(reader, at)` — probability that the reader at `reader` detects a
    /// tag located at `at`.
    pub fn rate(&self, reader: LocationId, at: LocationId) -> f64 {
        self.rates[self.index(reader, at)]
    }

    /// `log pi(reader, at)`.
    pub fn log_hit(&self, reader: LocationId, at: LocationId) -> f64 {
        self.rate(reader, at).ln()
    }

    /// `log (1 - pi(reader, at))`.
    pub fn log_miss(&self, reader: LocationId, at: LocationId) -> f64 {
        (1.0 - self.rate(reader, at)).ln()
    }

    /// Sum over all readers of `log (1 - pi(r, at))`: the log-probability
    /// that a tag located at `at` is missed by every reader in one epoch.
    /// Precomputing this per location is the key E-step optimization in
    /// Appendix A.3.
    pub fn log_all_miss(&self, at: LocationId) -> f64 {
        (0..self.num_locations)
            .map(|r| self.log_miss(LocationId(r as u16), at))
            .sum()
    }

    /// Return a copy of the table with every entry multiplied by
    /// `(1 + error)` (clamped). Models imperfect read-rate calibration.
    pub fn perturbed(&self, error: f64) -> ReadRateTable {
        ReadRateTable {
            num_locations: self.num_locations,
            rates: self
                .rates
                .iter()
                .map(|p| clamp(p * (1.0 + error)))
                .collect(),
        }
    }

    fn index(&self, reader: LocationId, at: LocationId) -> usize {
        let (r, a) = (reader.index(), at.index());
        assert!(
            r < self.num_locations && a < self.num_locations,
            "location out of range: reader={r}, at={a}, R={}",
            self.num_locations
        );
        r * self.num_locations + a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_table_has_expected_rates() {
        let t = ReadRateTable::diagonal(3, 0.8, 0.05);
        assert_eq!(t.num_locations(), 3);
        assert!((t.rate(LocationId(1), LocationId(1)) - 0.8).abs() < 1e-12);
        assert!((t.rate(LocationId(1), LocationId(2)) - 0.05).abs() < 1e-12);
        assert_eq!(t.locations().count(), 3);
    }

    #[test]
    fn rates_are_clamped_to_open_unit_interval() {
        let mut t = ReadRateTable::uniform(2, 0.0);
        assert!(t.rate(LocationId(0), LocationId(1)) > 0.0);
        t.set(LocationId(0), LocationId(0), 1.0);
        assert!(t.rate(LocationId(0), LocationId(0)) < 1.0);
        assert!(t.log_hit(LocationId(0), LocationId(0)).is_finite());
        assert!(t.log_miss(LocationId(0), LocationId(0)).is_finite());
    }

    #[test]
    fn log_all_miss_sums_over_readers() {
        let t = ReadRateTable::diagonal(3, 0.5, 0.1);
        let a = LocationId(2);
        let manual: f64 = (0..3).map(|r| t.log_miss(LocationId(r), a)).sum();
        assert!((t.log_all_miss(a) - manual).abs() < 1e-12);
    }

    #[test]
    fn perturbed_scales_rates() {
        let t = ReadRateTable::diagonal(2, 0.8, 0.1);
        let p = t.perturbed(0.1);
        assert!((p.rate(LocationId(0), LocationId(0)) - 0.88).abs() < 1e-9);
        let q = t.perturbed(10.0);
        assert!(q.rate(LocationId(0), LocationId(0)) <= MAX_RATE);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_location_panics() {
        let t = ReadRateTable::diagonal(2, 0.8, 0.1);
        let _ = t.rate(LocationId(5), LocationId(0));
    }
}
