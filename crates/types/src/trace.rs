//! Traces: a batch of raw readings plus the ground truth needed to evaluate
//! inference (true per-epoch locations and the true containment timeline),
//! and metadata describing how the trace was generated.

use crate::containment::ContainmentTimeline;
use crate::ids::{Epoch, LocationId, TagId};
use crate::reading::ReadingBatch;
use crate::readrate::ReadRateTable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Ground truth recorded by the simulator alongside the raw readings.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// For every tag, the time-ordered list of `(epoch, location)` segments:
    /// the tag is at `location` from that epoch until the next segment (or
    /// the end of the trace).
    locations: BTreeMap<TagId, Vec<(Epoch, LocationId)>>,
    /// True containment as a function of time, including injected anomalies.
    pub containment: ContainmentTimeline,
}

impl GroundTruth {
    /// Create ground truth with the given containment timeline and no
    /// location segments yet.
    pub fn new(containment: ContainmentTimeline) -> GroundTruth {
        GroundTruth {
            locations: BTreeMap::new(),
            containment,
        }
    }

    /// Record that `tag` is at `location` starting at `from` (until the next
    /// recorded segment). Segments must be appended in time order per tag.
    pub fn record_location(&mut self, tag: TagId, from: Epoch, location: LocationId) {
        let segs = self.locations.entry(tag).or_default();
        if let Some(&(last, loc)) = segs.last() {
            debug_assert!(from >= last, "location segments must be time-ordered");
            if loc == location {
                return; // no-op: already there
            }
        }
        segs.push((from, location));
    }

    /// The true location of `tag` at epoch `t`, if the tag had entered the
    /// system by then.
    pub fn location_at(&self, tag: TagId, t: Epoch) -> Option<LocationId> {
        let segs = self.locations.get(&tag)?;
        let mut current = None;
        for &(from, loc) in segs {
            if from <= t {
                current = Some(loc);
            } else {
                break;
            }
        }
        current
    }

    /// The true container of `tag` at epoch `t`.
    pub fn container_at(&self, tag: TagId, t: Epoch) -> Option<TagId> {
        self.containment.container_at(tag, t)
    }

    /// Tags with at least one recorded location segment.
    pub fn tags(&self) -> impl Iterator<Item = TagId> + '_ {
        self.locations.keys().copied()
    }

    /// Number of tags tracked.
    pub fn num_tags(&self) -> usize {
        self.locations.len()
    }
}

/// How a trace was generated: the knobs of Table 2 (and of the lab traces)
/// that experiments sweep over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceMetadata {
    /// Human-readable trace name (e.g. `"warehouse-rr0.8"`, `"T3"`).
    pub name: String,
    /// Main read rate of readers (RR).
    pub read_rate: f64,
    /// Overlap rate for shelf readers (OR).
    pub overlap_rate: f64,
    /// Trace length in epochs (seconds).
    pub length: u32,
    /// Interval between injected containment anomalies in seconds
    /// (`None` = stable containment).
    pub anomaly_interval: Option<u32>,
    /// Number of reader locations in the deployment.
    pub num_locations: usize,
}

impl TraceMetadata {
    /// Construct metadata with no anomalies.
    pub fn stable(
        name: impl Into<String>,
        read_rate: f64,
        overlap_rate: f64,
        length: u32,
        num_locations: usize,
    ) -> TraceMetadata {
        TraceMetadata {
            name: name.into(),
            read_rate,
            overlap_rate,
            length,
            anomaly_interval: None,
            num_locations,
        }
    }
}

/// A complete trace: raw readings, ground truth, the deployment's read-rate
/// table, and generation metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Raw RFID readings in (time, tag, reader) order.
    pub readings: ReadingBatch,
    /// Ground truth used only for evaluation, never by the inference engine.
    pub truth: GroundTruth,
    /// The deployment's read-rate table (what reference-tag calibration
    /// would have measured).
    pub read_rates: ReadRateTable,
    /// Generation parameters.
    pub meta: TraceMetadata,
}

impl Trace {
    /// The objects (item tags) that appear in the ground truth.
    pub fn objects(&self) -> Vec<TagId> {
        self.truth.tags().filter(|t| t.is_object()).collect()
    }

    /// The containers (case tags) that appear in the ground truth.
    pub fn containers(&self) -> Vec<TagId> {
        self.truth.tags().filter(|t| t.is_container()).collect()
    }

    /// Readings restricted to epochs `<= t`, preserving ground truth and
    /// metadata. Used to replay a trace incrementally.
    pub fn prefix(&self, t: Epoch) -> Trace {
        let mut readings = self.readings.clone();
        readings.retain_ranges(&[(Epoch::ZERO, t)]);
        Trace {
            readings,
            truth: self.truth.clone(),
            read_rates: self.read_rates.clone(),
            meta: self.meta.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::ContainmentMap;
    use crate::reading::RawReading;
    use crate::ReaderId;

    fn truth_with_one_item() -> GroundTruth {
        let map: ContainmentMap = [(TagId::item(1), TagId::case(1))].into_iter().collect();
        let mut truth = GroundTruth::new(ContainmentTimeline::new(map));
        truth.record_location(TagId::item(1), Epoch(0), LocationId(0));
        truth.record_location(TagId::item(1), Epoch(10), LocationId(1));
        truth.record_location(TagId::case(1), Epoch(0), LocationId(0));
        truth
    }

    #[test]
    fn ground_truth_location_segments() {
        let truth = truth_with_one_item();
        assert_eq!(
            truth.location_at(TagId::item(1), Epoch(0)),
            Some(LocationId(0))
        );
        assert_eq!(
            truth.location_at(TagId::item(1), Epoch(9)),
            Some(LocationId(0))
        );
        assert_eq!(
            truth.location_at(TagId::item(1), Epoch(10)),
            Some(LocationId(1))
        );
        assert_eq!(
            truth.location_at(TagId::item(1), Epoch(500)),
            Some(LocationId(1))
        );
        assert_eq!(truth.location_at(TagId::item(9), Epoch(5)), None);
        assert_eq!(truth.num_tags(), 2);
    }

    #[test]
    fn ground_truth_duplicate_location_is_noop() {
        let mut truth = truth_with_one_item();
        truth.record_location(TagId::item(1), Epoch(20), LocationId(1));
        // still only two distinct segments for the item
        assert_eq!(
            truth.location_at(TagId::item(1), Epoch(25)),
            Some(LocationId(1))
        );
    }

    #[test]
    fn ground_truth_container_lookup() {
        let truth = truth_with_one_item();
        assert_eq!(
            truth.container_at(TagId::item(1), Epoch(5)),
            Some(TagId::case(1))
        );
        assert_eq!(truth.container_at(TagId::item(2), Epoch(5)), None);
    }

    #[test]
    fn trace_prefix_and_tag_classification() {
        let truth = truth_with_one_item();
        let readings: ReadingBatch = (0..20u32)
            .map(|t| RawReading::new(Epoch(t), TagId::item(1), ReaderId(0)))
            .collect();
        let trace = Trace {
            readings,
            truth,
            read_rates: ReadRateTable::diagonal(2, 0.8, 0.05),
            meta: TraceMetadata::stable("test", 0.8, 0.0, 20, 2),
        };
        assert_eq!(trace.objects(), vec![TagId::item(1)]);
        assert_eq!(trace.containers(), vec![TagId::case(1)]);
        let prefix = trace.prefix(Epoch(5));
        assert_eq!(prefix.readings.len(), 6);
        assert_eq!(prefix.meta.name, "test");
    }
}
