//! # rfid-types
//!
//! Shared data model for the reproduction of *"Distributed Inference and
//! Query Processing for RFID Tracking and Monitoring"* (Cao, Sutton, Diao,
//! Shenoy; PVLDB 4(5), 2011).
//!
//! The paper works with two schemas:
//!
//! * **raw RFID readings** `(time, tag id, reader id)` produced by readers —
//!   see [`RawReading`];
//! * **enriched object events** `(time, tag id, location, container)`
//!   produced by the inference module and consumed by the stream query
//!   processor — see [`ObjectEvent`].
//!
//! This crate defines those schemas plus everything both the simulator and
//! the inference engine need to agree on: tag/reader/location/site
//! identifiers, discrete [`Epoch`]s, containment relations, ground truth for
//! evaluation, and the read-rate table `pi(r, r̄)` of the paper's graphical
//! model (Section 3.1).

#![warn(missing_docs)]

pub mod containment;
pub mod event;
pub mod ids;
pub mod reading;
pub mod readrate;
pub mod trace;

pub use containment::{ContainmentChange, ContainmentMap, ContainmentTimeline};
pub use event::{ObjectEvent, SensorReading};
pub use ids::{Epoch, LocationId, ReaderId, SiteId, TagId, TagKind};
pub use reading::{RawReading, ReadingBatch};
pub use readrate::ReadRateTable;
pub use trace::{GroundTruth, Trace, TraceMetadata};
