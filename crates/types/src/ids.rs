//! Identifier newtypes used throughout the system.
//!
//! The paper assumes the EPC tag-data standard: a tag id encodes the level of
//! packaging (item, case, or pallet). We model that by packing a [`TagKind`]
//! into the high bits of [`TagId`], which lets every component cheaply answer
//! "is this a container tag or an object tag?" without a lookup table —
//! exactly the assumption made in Appendix A.4 ("we know a priori which tags
//! are container tags").

use serde::{Deserialize, Serialize};
use std::fmt;

/// The packaging level encoded in a tag id (EPC tag-data-standard style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TagKind {
    /// A sellable unit, always packed inside a case.
    Item,
    /// A case holding items; the "container" of the paper's two-level model.
    Case,
    /// A pallet holding cases (used by the hierarchical-containment extension).
    Pallet,
}

impl TagKind {
    /// All tag kinds, in increasing packaging level.
    pub const ALL: [TagKind; 3] = [TagKind::Item, TagKind::Case, TagKind::Pallet];

    fn code(self) -> u64 {
        match self {
            TagKind::Item => 0,
            TagKind::Case => 1,
            TagKind::Pallet => 2,
        }
    }

    fn from_code(code: u64) -> TagKind {
        match code {
            0 => TagKind::Item,
            1 => TagKind::Case,
            _ => TagKind::Pallet,
        }
    }
}

impl fmt::Display for TagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagKind::Item => write!(f, "item"),
            TagKind::Case => write!(f, "case"),
            TagKind::Pallet => write!(f, "pallet"),
        }
    }
}

/// Unique identity of an RFID tag.
///
/// The two high bits carry the [`TagKind`]; the remaining 62 bits carry a
/// serial number. Construct with [`TagId::new`] and query with
/// [`TagId::kind`] / [`TagId::serial`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TagId(u64);

impl TagId {
    const KIND_SHIFT: u32 = 62;
    const SERIAL_MASK: u64 = (1 << Self::KIND_SHIFT) - 1;

    /// Create a tag id for the given packaging level and serial number.
    ///
    /// # Panics
    /// Panics if `serial` does not fit in 62 bits.
    pub fn new(kind: TagKind, serial: u64) -> TagId {
        assert!(
            serial <= Self::SERIAL_MASK,
            "tag serial {serial} does not fit in 62 bits"
        );
        TagId((kind.code() << Self::KIND_SHIFT) | serial)
    }

    /// Convenience constructor for an item tag.
    pub fn item(serial: u64) -> TagId {
        TagId::new(TagKind::Item, serial)
    }

    /// Convenience constructor for a case tag.
    pub fn case(serial: u64) -> TagId {
        TagId::new(TagKind::Case, serial)
    }

    /// Convenience constructor for a pallet tag.
    pub fn pallet(serial: u64) -> TagId {
        TagId::new(TagKind::Pallet, serial)
    }

    /// The packaging level encoded in this tag.
    pub fn kind(self) -> TagKind {
        TagKind::from_code(self.0 >> Self::KIND_SHIFT)
    }

    /// The serial number portion of this tag.
    pub fn serial(self) -> u64 {
        self.0 & Self::SERIAL_MASK
    }

    /// Whether this tag identifies a container (case or pallet).
    pub fn is_container(self) -> bool {
        matches!(self.kind(), TagKind::Case | TagKind::Pallet)
    }

    /// Whether this tag identifies an object (item).
    pub fn is_object(self) -> bool {
        self.kind() == TagKind::Item
    }

    /// Raw 64-bit representation (kind + serial), useful for compact storage.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstruct a tag id from its raw representation.
    pub fn from_raw(raw: u64) -> TagId {
        TagId(raw)
    }
}

impl fmt::Debug for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.kind(), self.serial())
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.kind(), self.serial())
    }
}

/// Identity of a physical RFID reader (one antenna at one fixed location).
///
/// The paper localizes objects "to the nearest reader", so reader identity
/// and location identity are in one-to-one correspondence for static readers;
/// [`ReaderId::location`] performs that mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReaderId(pub u16);

impl ReaderId {
    /// The discrete location this (static) reader corresponds to.
    pub fn location(self) -> LocationId {
        LocationId(self.0)
    }
}

impl fmt::Display for ReaderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reader{}", self.0)
    }
}

/// A discrete location — the position of one static reader (Section 3.1:
/// "we model locations as a discrete set R, which is the set of locations of
/// all of the static readers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocationId(pub u16);

impl LocationId {
    /// The reader stationed at this location.
    pub fn reader(self) -> ReaderId {
        ReaderId(self.0)
    }

    /// Index into dense per-location arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

/// Identity of a site (warehouse / distribution center / hospital wing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u16);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// A discrete time epoch (Section 3.1 discretizes time into epochs of, e.g.,
/// one second). Epochs are measured in seconds since the start of a trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Epoch(pub u32);

impl Epoch {
    /// Epoch zero — the start of a trace.
    pub const ZERO: Epoch = Epoch(0);

    /// The epoch `n` seconds after this one.
    pub fn plus(self, n: u32) -> Epoch {
        Epoch(self.0 + n)
    }

    /// The epoch `n` seconds before this one, saturating at zero.
    pub fn minus(self, n: u32) -> Epoch {
        Epoch(self.0.saturating_sub(n))
    }

    /// Number of whole seconds between `self` and an earlier epoch.
    pub fn since(self, earlier: Epoch) -> u32 {
        self.0.saturating_sub(earlier.0)
    }

    /// Index into dense per-epoch arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_id_roundtrips_kind_and_serial() {
        for kind in TagKind::ALL {
            for serial in [0u64, 1, 17, 1 << 40, (1 << 62) - 1] {
                let tag = TagId::new(kind, serial);
                assert_eq!(tag.kind(), kind);
                assert_eq!(tag.serial(), serial);
                assert_eq!(TagId::from_raw(tag.raw()), tag);
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn tag_id_rejects_oversized_serial() {
        let _ = TagId::new(TagKind::Item, 1 << 62);
    }

    #[test]
    fn tag_kind_classification() {
        assert!(TagId::item(3).is_object());
        assert!(!TagId::item(3).is_container());
        assert!(TagId::case(3).is_container());
        assert!(TagId::pallet(9).is_container());
        assert!(!TagId::pallet(9).is_object());
    }

    #[test]
    fn item_and_case_with_same_serial_are_distinct() {
        assert_ne!(TagId::item(5), TagId::case(5));
        assert_ne!(TagId::case(5), TagId::pallet(5));
    }

    #[test]
    fn reader_location_correspondence() {
        let r = ReaderId(7);
        assert_eq!(r.location(), LocationId(7));
        assert_eq!(r.location().reader(), r);
        assert_eq!(LocationId(7).index(), 7);
    }

    #[test]
    fn epoch_arithmetic() {
        let t = Epoch(100);
        assert_eq!(t.plus(50), Epoch(150));
        assert_eq!(t.minus(30), Epoch(70));
        assert_eq!(t.minus(200), Epoch(0));
        assert_eq!(t.since(Epoch(40)), 60);
        assert_eq!(Epoch(40).since(t), 0);
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(TagId::item(4).to_string(), "item#4");
        assert_eq!(TagId::case(2).to_string(), "case#2");
        assert_eq!(ReaderId(1).to_string(), "reader1");
        assert_eq!(LocationId(3).to_string(), "loc3");
        assert_eq!(SiteId(0).to_string(), "site0");
        assert_eq!(Epoch(9).to_string(), "t=9");
    }
}
