//! Enriched event schemas produced by the inference module and consumed by
//! the stream query processor: [`ObjectEvent`] for RFID-derived events and
//! [`SensorReading`] for other sensor streams (e.g. temperature) used by the
//! hybrid queries of Section 2.

use crate::ids::{Epoch, LocationId, TagId};
use serde::{Deserialize, Serialize};

/// One tuple of the enriched event stream `(time, tag id, location,
/// container)` (Section 2), plus an optional product-property attribute.
///
/// `container == None` means the inference engine believes the object is not
/// currently inside any container (or it is itself a top-level container).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectEvent {
    /// Epoch of the event.
    pub time: Epoch,
    /// The object (or container) the event describes.
    pub tag: TagId,
    /// Inferred (or true, when ground truth is used) location.
    pub location: LocationId,
    /// Inferred immediate container, if any.
    pub container: Option<TagId>,
    /// Optional product property from the manufacturer's database
    /// (e.g. `"frozen-food"`, `"flammable"`); used by query predicates such
    /// as `IsA 'freezer'`.
    pub property: Option<String>,
}

impl ObjectEvent {
    /// Construct an event without a property annotation.
    pub fn new(
        time: Epoch,
        tag: TagId,
        location: LocationId,
        container: Option<TagId>,
    ) -> ObjectEvent {
        ObjectEvent {
            time,
            tag,
            location,
            container,
            property: None,
        }
    }

    /// Attach a product property (builder style).
    pub fn with_property(mut self, property: impl Into<String>) -> ObjectEvent {
        self.property = Some(property.into());
        self
    }

    /// Whether the event's property matches the given class name, mirroring
    /// the `IsA` predicate of Query 1.
    pub fn is_a(&self, class: &str) -> bool {
        self.property.as_deref() == Some(class)
    }
}

/// One tuple of a generic sensor stream: `(time, sensor location, value)`.
///
/// Query 1 joins the RFID event stream with a temperature stream partitioned
/// by sensor; we identify a sensor with the location it measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// Epoch of the measurement.
    pub time: Epoch,
    /// Location of the sensor (one sensor per reader location).
    pub location: LocationId,
    /// Measured value (degrees Celsius for temperature sensors).
    pub value: f64,
}

impl SensorReading {
    /// Construct a sensor reading.
    pub fn new(time: Epoch, location: LocationId, value: f64) -> SensorReading {
        SensorReading {
            time,
            location,
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_event_property_builder_and_is_a() {
        let e = ObjectEvent::new(
            Epoch(1),
            TagId::item(1),
            LocationId(0),
            Some(TagId::case(1)),
        )
        .with_property("frozen-food");
        assert!(e.is_a("frozen-food"));
        assert!(!e.is_a("freezer"));
        let bare = ObjectEvent::new(Epoch(1), TagId::item(1), LocationId(0), None);
        assert!(!bare.is_a("frozen-food"));
        assert_eq!(bare.container, None);
    }

    #[test]
    fn sensor_reading_holds_fields() {
        let s = SensorReading::new(Epoch(10), LocationId(3), 21.5);
        assert_eq!(s.time, Epoch(10));
        assert_eq!(s.location, LocationId(3));
        assert!((s.value - 21.5).abs() < f64::EPSILON);
    }

    #[test]
    fn object_event_serde_roundtrip() {
        let e = ObjectEvent::new(
            Epoch(5),
            TagId::item(9),
            LocationId(2),
            Some(TagId::case(4)),
        )
        .with_property("flammable");
        let json = serde_json::to_string(&e).unwrap();
        let back: ObjectEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
