//! Containment relations between objects and containers.
//!
//! The paper's set `C` of containment relations is a set of
//! `(object id, container id)` pairs with each object in at most one
//! container ([`ContainmentMap`]). For evaluation we also need the *true*
//! containment as it evolves over time, including injected anomalies; that is
//! the [`ContainmentTimeline`].

use crate::ids::{Epoch, TagId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A snapshot of containment relations: each object maps to its (single)
/// immediate container.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainmentMap {
    map: BTreeMap<TagId, TagId>,
}

impl ContainmentMap {
    /// Create an empty containment map.
    pub fn new() -> ContainmentMap {
        ContainmentMap::default()
    }

    /// Set (or replace) the container of `object`.
    pub fn set(&mut self, object: TagId, container: TagId) {
        self.map.insert(object, container);
    }

    /// Remove `object` from its container (the object is now loose).
    pub fn remove(&mut self, object: TagId) -> Option<TagId> {
        self.map.remove(&object)
    }

    /// The container of `object`, if any.
    pub fn container_of(&self, object: TagId) -> Option<TagId> {
        self.map.get(&object).copied()
    }

    /// All objects currently assigned to `container`.
    pub fn objects_in(&self, container: TagId) -> Vec<TagId> {
        self.map
            .iter()
            .filter(|(_, c)| **c == container)
            .map(|(o, _)| *o)
            .collect()
    }

    /// Iterate over all `(object, container)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, TagId)> + '_ {
        self.map.iter().map(|(o, c)| (*o, *c))
    }

    /// All objects that have a container assigned.
    pub fn objects(&self) -> impl Iterator<Item = TagId> + '_ {
        self.map.keys().copied()
    }

    /// All distinct containers referenced by at least one object.
    pub fn containers(&self) -> Vec<TagId> {
        let mut cs: Vec<TagId> = self.map.values().copied().collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    }

    /// Number of contained objects.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no containment relation is recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Fraction of objects on which `self` and `other` agree, over the union
    /// of objects mentioned by either map. Used by evaluation code.
    pub fn agreement(&self, other: &ContainmentMap) -> f64 {
        let mut objects: Vec<TagId> = self.map.keys().copied().collect();
        objects.extend(other.map.keys().copied());
        objects.sort_unstable();
        objects.dedup();
        if objects.is_empty() {
            return 1.0;
        }
        let agree = objects
            .iter()
            .filter(|o| self.container_of(**o) == other.container_of(**o))
            .count();
        agree as f64 / objects.len() as f64
    }
}

impl FromIterator<(TagId, TagId)> for ContainmentMap {
    fn from_iter<I: IntoIterator<Item = (TagId, TagId)>>(iter: I) -> Self {
        ContainmentMap {
            map: iter.into_iter().collect(),
        }
    }
}

/// A recorded change of containment: at `time`, `object` moved from
/// `old_container` to `new_container` (either may be `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainmentChange {
    /// Epoch at which the change physically happened.
    pub time: Epoch,
    /// The object that changed containers.
    pub object: TagId,
    /// Container before the change (`None` if the object was loose).
    pub old_container: Option<TagId>,
    /// Container after the change (`None` if the object was removed).
    pub new_container: Option<TagId>,
}

/// The true containment relation as a function of time: an initial map plus a
/// time-ordered list of changes. Supports efficient "containment as of epoch
/// t" queries used by the evaluation harness and the change-point scorer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ContainmentTimeline {
    initial: ContainmentMap,
    changes: Vec<ContainmentChange>,
}

impl ContainmentTimeline {
    /// Create a timeline with the given initial containment and no changes.
    pub fn new(initial: ContainmentMap) -> ContainmentTimeline {
        ContainmentTimeline {
            initial,
            changes: Vec::new(),
        }
    }

    /// The containment relation at epoch zero.
    pub fn initial(&self) -> &ContainmentMap {
        &self.initial
    }

    /// Record a change. Changes must be appended in non-decreasing time order.
    ///
    /// # Panics
    /// Panics if `change.time` precedes the last recorded change.
    pub fn record(&mut self, change: ContainmentChange) {
        if let Some(last) = self.changes.last() {
            assert!(
                change.time >= last.time,
                "containment changes must be recorded in time order"
            );
        }
        self.changes.push(change);
    }

    /// All recorded changes in time order.
    pub fn changes(&self) -> &[ContainmentChange] {
        &self.changes
    }

    /// Changes affecting a specific object, in time order.
    pub fn changes_for(&self, object: TagId) -> Vec<ContainmentChange> {
        self.changes
            .iter()
            .copied()
            .filter(|c| c.object == object)
            .collect()
    }

    /// The containment map in force at epoch `t` (changes at exactly `t` are
    /// considered applied).
    pub fn at(&self, t: Epoch) -> ContainmentMap {
        let mut map = self.initial.clone();
        for change in self.changes.iter().take_while(|c| c.time <= t) {
            match change.new_container {
                Some(c) => map.set(change.object, c),
                None => {
                    map.remove(change.object);
                }
            }
        }
        map
    }

    /// The container of `object` at epoch `t`.
    pub fn container_at(&self, object: TagId, t: Epoch) -> Option<TagId> {
        let mut current = self.initial.container_of(object);
        for change in self.changes.iter().take_while(|c| c.time <= t) {
            if change.object == object {
                current = change.new_container;
            }
        }
        current
    }

    /// Whether any change affects `object` within the inclusive epoch range.
    pub fn changed_in(&self, object: TagId, from: Epoch, to: Epoch) -> bool {
        self.changes
            .iter()
            .any(|c| c.object == object && c.time >= from && c.time <= to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(n: u64) -> TagId {
        TagId::item(n)
    }
    fn case(n: u64) -> TagId {
        TagId::case(n)
    }

    #[test]
    fn containment_map_basic_ops() {
        let mut m = ContainmentMap::new();
        assert!(m.is_empty());
        m.set(item(1), case(1));
        m.set(item(2), case(1));
        m.set(item(3), case(2));
        assert_eq!(m.len(), 3);
        assert_eq!(m.container_of(item(1)), Some(case(1)));
        assert_eq!(m.container_of(item(9)), None);
        assert_eq!(m.objects_in(case(1)), vec![item(1), item(2)]);
        assert_eq!(m.containers(), vec![case(1), case(2)]);
        assert_eq!(m.remove(item(2)), Some(case(1)));
        assert_eq!(m.objects_in(case(1)), vec![item(1)]);
    }

    #[test]
    fn containment_map_set_replaces_container() {
        let mut m = ContainmentMap::new();
        m.set(item(1), case(1));
        m.set(item(1), case(2));
        assert_eq!(m.container_of(item(1)), Some(case(2)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn agreement_counts_union_of_objects() {
        let a: ContainmentMap = [(item(1), case(1)), (item(2), case(1))]
            .into_iter()
            .collect();
        let b: ContainmentMap = [(item(1), case(1)), (item(3), case(2))]
            .into_iter()
            .collect();
        // union = {1,2,3}; agreement only on item 1.
        assert!((a.agreement(&b) - 1.0 / 3.0).abs() < 1e-12);
        assert!((a.agreement(&a) - 1.0).abs() < 1e-12);
        assert!((ContainmentMap::new().agreement(&ContainmentMap::new()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_applies_changes_in_order() {
        let initial: ContainmentMap = [(item(1), case(1)), (item(2), case(1))]
            .into_iter()
            .collect();
        let mut tl = ContainmentTimeline::new(initial);
        tl.record(ContainmentChange {
            time: Epoch(10),
            object: item(1),
            old_container: Some(case(1)),
            new_container: Some(case(2)),
        });
        tl.record(ContainmentChange {
            time: Epoch(20),
            object: item(2),
            old_container: Some(case(1)),
            new_container: None,
        });
        assert_eq!(tl.container_at(item(1), Epoch(5)), Some(case(1)));
        assert_eq!(tl.container_at(item(1), Epoch(10)), Some(case(2)));
        assert_eq!(tl.container_at(item(2), Epoch(25)), None);
        assert_eq!(tl.at(Epoch(5)).len(), 2);
        assert_eq!(tl.at(Epoch(25)).len(), 1);
        assert!(tl.changed_in(item(1), Epoch(0), Epoch(15)));
        assert!(!tl.changed_in(item(1), Epoch(11), Epoch(15)));
        assert_eq!(tl.changes_for(item(2)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn timeline_rejects_out_of_order_changes() {
        let mut tl = ContainmentTimeline::new(ContainmentMap::new());
        tl.record(ContainmentChange {
            time: Epoch(10),
            object: item(1),
            old_container: None,
            new_container: Some(case(1)),
        });
        tl.record(ContainmentChange {
            time: Epoch(5),
            object: item(1),
            old_container: None,
            new_container: Some(case(2)),
        });
    }
}
