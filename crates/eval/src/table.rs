//! Lightweight table / series formatting for the experiment harness.
//!
//! Every experiment binary prints its results as either a [`Table`] (for the
//! paper's tables) or a set of [`Series`] (for its figures), in a stable
//! plain-text format that `EXPERIMENTS.md` quotes directly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"Table 5: communication costs (bytes)"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row data, one vector of cells per row.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Cells are converted with `ToString`.
    pub fn push_row<S: ToString>(&mut self, cells: &[S]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let widths = self.widths();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// A named series of `(x, y)` points — one line of a figure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Series {
    /// Series label (e.g. `"Containment(CR)"`).
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.name)?;
        for (x, y) in &self.points {
            write!(f, " ({x:.3}, {y:.3})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_aligned_columns() {
        let mut t = Table::new("Demo", &["method", "error (%)"]);
        t.push_row(&["CR", "2.3"]);
        t.push_row(&["All history", "2.5"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.to_string();
        assert!(text.contains("## Demo"));
        assert!(text.contains("method"));
        assert!(text.contains("All history"));
        // header separator present
        assert!(text.contains("---"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(&["only one"]);
    }

    #[test]
    fn series_stores_and_looks_up_points() {
        let mut s = Series::new("Containment(CR)");
        s.push(0.6, 6.5);
        s.push(0.8, 2.1);
        assert_eq!(s.y_at(0.8), Some(2.1));
        assert_eq!(s.y_at(0.7), None);
        let text = s.to_string();
        assert!(text.starts_with("Containment(CR):"));
        assert!(text.contains("(0.600, 6.500)"));
    }
}
