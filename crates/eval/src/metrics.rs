//! Accuracy metrics used throughout Section 5 / Appendix C of the paper.

use rfid_types::{ContainmentChange, Epoch, GroundTruth, LocationId, TagId};
use serde::{Deserialize, Serialize};

/// Containment error rate (%): the fraction of evaluated objects whose
/// inferred container differs from the true container at the evaluation
/// epoch. `estimate` maps each object to its inferred container (`None` =
/// "not contained").
pub fn containment_error(
    truth: &GroundTruth,
    estimate: impl Fn(TagId) -> Option<TagId>,
    objects: &[TagId],
    at: Epoch,
) -> f64 {
    if objects.is_empty() {
        return 0.0;
    }
    let wrong = objects
        .iter()
        .filter(|&&o| estimate(o) != truth.container_at(o, at))
        .count();
    100.0 * wrong as f64 / objects.len() as f64
}

/// Location error rate (%): the fraction of evaluated `(tag, epoch)` pairs
/// whose estimated location differs from the true location. Pairs for which
/// the ground truth has no location (tag not yet in the system) are skipped;
/// pairs with a true location but no estimate count as errors.
pub fn location_error(
    truth: &GroundTruth,
    estimate: impl Fn(TagId, Epoch) -> Option<LocationId>,
    tags: &[TagId],
    epochs: &[Epoch],
) -> f64 {
    let mut evaluated = 0usize;
    let mut wrong = 0usize;
    for &tag in tags {
        for &t in epochs {
            let Some(true_loc) = truth.location_at(tag, t) else {
                continue;
            };
            evaluated += 1;
            if estimate(tag, t) != Some(true_loc) {
                wrong += 1;
            }
        }
    }
    if evaluated == 0 {
        0.0
    } else {
        100.0 * wrong as f64 / evaluated as f64
    }
}

/// Precision, recall and F-measure of a detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionRecall {
    /// Fraction of reported events that match a true event.
    pub precision: f64,
    /// Fraction of true events that were reported.
    pub recall: f64,
}

impl PrecisionRecall {
    /// `F = 2 P R / (P + R)` (0 when both are 0), in percent.
    pub fn f_measure(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            100.0 * 2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// How detected containment changes are matched against true changes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChangeMatchConfig {
    /// Maximum difference, in seconds, between the reported change epoch and
    /// the true change epoch for the two to be considered the same event.
    /// The paper runs inference every 300 s, so detections are naturally
    /// delayed by up to one period.
    pub time_tolerance: u32,
    /// Whether the reported *new* container must equal the true new container
    /// for the detection to count as correct.
    pub require_correct_container: bool,
}

impl Default for ChangeMatchConfig {
    fn default() -> ChangeMatchConfig {
        ChangeMatchConfig {
            time_tolerance: 600,
            require_correct_container: false,
        }
    }
}

/// A detector-agnostic view of a reported containment change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportedChange {
    /// The object reported as having changed containers.
    pub object: TagId,
    /// The epoch the detector assigned to the change.
    pub change_at: Epoch,
    /// The new container reported by the detector.
    pub new_container: Option<TagId>,
}

/// Match reported changes against the true changes and compute precision /
/// recall. Each true change can be matched by at most one report and vice
/// versa.
pub fn changes_f_measure(
    true_changes: &[ContainmentChange],
    reported: &[ReportedChange],
    config: ChangeMatchConfig,
) -> PrecisionRecall {
    let mut matched_truth = vec![false; true_changes.len()];
    let mut matched_reports = 0usize;
    for report in reported {
        let hit = true_changes.iter().enumerate().find(|(idx, truth)| {
            !matched_truth[*idx]
                && truth.object == report.object
                && truth
                    .time
                    .since(report.change_at)
                    .max(report.change_at.since(truth.time))
                    <= config.time_tolerance
                && (!config.require_correct_container
                    || truth.new_container == report.new_container)
        });
        if let Some((idx, _)) = hit {
            matched_truth[idx] = true;
            matched_reports += 1;
        }
    }
    let precision = if reported.is_empty() {
        if true_changes.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        matched_reports as f64 / reported.len() as f64
    };
    let recall = if true_changes.is_empty() {
        1.0
    } else {
        matched_truth.iter().filter(|m| **m).count() as f64 / true_changes.len() as f64
    };
    PrecisionRecall { precision, recall }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_types::{ContainmentMap, ContainmentTimeline};

    fn truth() -> GroundTruth {
        let map: ContainmentMap = [
            (TagId::item(1), TagId::case(1)),
            (TagId::item(2), TagId::case(1)),
            (TagId::item(3), TagId::case(2)),
        ]
        .into_iter()
        .collect();
        let mut timeline = ContainmentTimeline::new(map);
        timeline.record(ContainmentChange {
            time: Epoch(100),
            object: TagId::item(2),
            old_container: Some(TagId::case(1)),
            new_container: Some(TagId::case(2)),
        });
        let mut truth = GroundTruth::new(timeline);
        for tag in [
            TagId::item(1),
            TagId::item(2),
            TagId::item(3),
            TagId::case(1),
            TagId::case(2),
        ] {
            truth.record_location(tag, Epoch(0), LocationId(0));
            truth.record_location(tag, Epoch(50), LocationId(1));
        }
        truth
    }

    #[test]
    fn containment_error_counts_mismatches() {
        let truth = truth();
        let objects = [TagId::item(1), TagId::item(2), TagId::item(3)];
        // Perfect estimate before the change.
        let perfect = |o: TagId| truth.container_at(o, Epoch(10));
        assert_eq!(containment_error(&truth, perfect, &objects, Epoch(10)), 0.0);
        // An estimate that ignores the change at t=100 is wrong for item 2.
        let stale = |o: TagId| truth.container_at(o, Epoch(10));
        let err = containment_error(&truth, stale, &objects, Epoch(200));
        assert!((err - 100.0 / 3.0).abs() < 1e-9);
        assert_eq!(containment_error(&truth, |_| None, &[], Epoch(0)), 0.0);
    }

    #[test]
    fn location_error_skips_unknown_truth_and_counts_missing_estimates() {
        let truth = truth();
        let tags = [TagId::item(1), TagId::item(99)]; // 99 has no ground truth
        let epochs = [Epoch(10), Epoch(60)];
        // Correct at t=10 (loc 0), wrong at t=60 (estimate says loc 0, truth 1).
        let estimate = |_tag: TagId, _t: Epoch| Some(LocationId(0));
        let err = location_error(&truth, estimate, &tags, &epochs);
        assert!((err - 50.0).abs() < 1e-9);
        // A missing estimate counts as an error.
        let none = |_tag: TagId, _t: Epoch| None;
        assert!((location_error(&truth, none, &tags, &epochs) - 100.0).abs() < 1e-9);
        // no evaluable pairs -> zero error
        assert_eq!(
            location_error(&truth, none, &[TagId::item(99)], &epochs),
            0.0
        );
    }

    #[test]
    fn f_measure_combines_precision_and_recall() {
        let pr = PrecisionRecall {
            precision: 1.0,
            recall: 0.5,
        };
        assert!((pr.f_measure() - 2.0 / 3.0 * 100.0).abs() < 1e-9);
        let zero = PrecisionRecall {
            precision: 0.0,
            recall: 0.0,
        };
        assert_eq!(zero.f_measure(), 0.0);
    }

    #[test]
    fn change_matching_respects_tolerance_and_object() {
        let truth = truth();
        let true_changes = truth.containment.changes();
        // correct object, within tolerance
        let good = ReportedChange {
            object: TagId::item(2),
            change_at: Epoch(300),
            new_container: Some(TagId::case(2)),
        };
        let pr = changes_f_measure(true_changes, &[good], ChangeMatchConfig::default());
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.f_measure(), 100.0);
        // wrong object -> false positive and missed truth
        let bad = ReportedChange {
            object: TagId::item(3),
            change_at: Epoch(100),
            new_container: Some(TagId::case(1)),
        };
        let pr = changes_f_measure(true_changes, &[bad], ChangeMatchConfig::default());
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
        // too late -> no match
        let late = ReportedChange {
            object: TagId::item(2),
            change_at: Epoch(1200),
            new_container: Some(TagId::case(2)),
        };
        let pr = changes_f_measure(true_changes, &[late], ChangeMatchConfig::default());
        assert_eq!(pr.recall, 0.0);
    }

    #[test]
    fn change_matching_can_require_the_correct_container() {
        let truth = truth();
        let report = ReportedChange {
            object: TagId::item(2),
            change_at: Epoch(120),
            new_container: Some(TagId::case(1)), // wrong container
        };
        let strict = ChangeMatchConfig {
            require_correct_container: true,
            ..Default::default()
        };
        let pr = changes_f_measure(truth.containment.changes(), &[report], strict);
        assert_eq!(pr.recall, 0.0);
        let lenient = ChangeMatchConfig::default();
        let pr = changes_f_measure(truth.containment.changes(), &[report], lenient);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn empty_inputs_behave_sensibly() {
        let pr = changes_f_measure(&[], &[], ChangeMatchConfig::default());
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        let truth = truth();
        let pr = changes_f_measure(
            truth.containment.changes(),
            &[],
            ChangeMatchConfig::default(),
        );
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
    }
}
