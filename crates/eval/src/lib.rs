//! # rfid-eval
//!
//! Evaluation metrics and table formatting for the reproduction experiments:
//! location/containment error rates (Sections 5.1–5.3), precision / recall /
//! F-measure for containment-change detection, and small helpers for printing
//! the tables and figure series the benchmark harness regenerates.

#![warn(missing_docs)]

pub mod metrics;
pub mod table;

pub use metrics::{
    changes_f_measure, containment_error, location_error, ChangeMatchConfig, PrecisionRecall,
};
pub use table::{Series, Table};
