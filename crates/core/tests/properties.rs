//! Property-based tests of the inference core: the posterior normalization,
//! the optimized likelihood evaluation, the change-point statistic and the
//! EM invariants hold for arbitrary inputs, not just the hand-picked cases of
//! the unit tests.

use proptest::prelude::*;
use rfid_core::{
    change_statistic, container_posterior, LikelihoodModel, Observations, Posterior, RfInfer,
    RfInferConfig,
};
use rfid_types::{Epoch, LocationId, RawReading, ReadRateTable, ReaderId, ReadingBatch, TagId};

fn naive_loglik(rates: &ReadRateTable, readers: &[LocationId], at: LocationId) -> f64 {
    rates
        .locations()
        .map(|r| {
            if readers.contains(&r) {
                rates.log_hit(r, at)
            } else {
                rates.log_miss(r, at)
            }
        })
        .sum()
}

proptest! {
    /// Posteriors built from arbitrary finite log-weights are normalized and
    /// their MAP is the argmax of the inputs.
    #[test]
    fn posterior_normalizes(weights in prop::collection::vec(-1e4f64..0.0, 1..12)) {
        let posterior = Posterior::from_log_weights(weights.clone());
        let total: f64 = posterior.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(posterior.iter().all(|(_, p)| (0.0..=1.0 + 1e-12).contains(&p)));
        let argmax = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        // the MAP location has at least the probability of the true argmax
        prop_assert!(
            posterior.prob(posterior.map_location()) >= posterior.prob(LocationId(argmax as u16)) - 1e-12
        );
    }

    /// The sparse likelihood evaluation (all-miss + corrections) equals the
    /// naive sum over every reader, for arbitrary reader subsets and rates.
    #[test]
    fn optimized_likelihood_matches_naive(
        own in 0.4f64..0.99,
        background in 1e-6f64..1e-2,
        num_locations in 2usize..8,
        reader_mask in prop::collection::vec(any::<bool>(), 8),
        at in 0u16..8,
    ) {
        let at = LocationId(at % num_locations as u16);
        let rates = ReadRateTable::diagonal(num_locations, own, background);
        let model = LikelihoodModel::new(rates.clone());
        let readers: Vec<LocationId> = (0..num_locations as u16)
            .map(LocationId)
            .filter(|l| reader_mask[l.index()])
            .collect();
        let fast = model.tag_loglik(&readers, at);
        let slow = naive_loglik(&rates, &readers, at);
        prop_assert!((fast - slow).abs() < 1e-9);
    }

    /// The E-step posterior favours a location where more of the container's
    /// members were read, whatever the (diagonal) read-rate table looks like.
    #[test]
    fn posterior_favours_majority_location(
        own in 0.5f64..0.95,
        votes_a in 1usize..5,
        votes_b in 0usize..1,
    ) {
        let model = LikelihoodModel::new(ReadRateTable::diagonal(2, own, 1e-4));
        let a = [LocationId(0)];
        let b = [LocationId(1)];
        let mut members: Vec<Option<&[LocationId]>> = Vec::new();
        for _ in 0..votes_a { members.push(Some(&a)); }
        for _ in 0..votes_b { members.push(Some(&b)); }
        let posterior = container_posterior(&model, None, &members);
        prop_assert_eq!(posterior.map_location(), LocationId(0));
    }

    /// RFINFER always assigns every observed object that has at least one
    /// co-located container, and candidate pruning never changes that
    /// guarantee; the change statistic of any object is non-negative.
    #[test]
    fn rfinfer_total_assignment_and_nonnegative_statistic(
        seedlike in prop::collection::vec((0u32..40, 0u64..3, 0u64..3), 20..120),
    ) {
        // Build a co-location structure: each triple (t, object, container)
        // produces a pair of readings at the same reader, so the object is
        // guaranteed a candidate.
        let mut readings = Vec::new();
        for &(t, o, c) in &seedlike {
            let reader = ReaderId((c % 3) as u16);
            readings.push(RawReading::new(Epoch(t), TagId::item(o), reader));
            readings.push(RawReading::new(Epoch(t), TagId::case(c), reader));
        }
        let obs = Observations::from_batch(&ReadingBatch::from_readings(readings));
        let model = LikelihoodModel::new(ReadRateTable::diagonal(3, 0.8, 1e-4));
        let outcome = RfInfer::new(&model, &obs)
            .with_config(RfInferConfig { max_iterations: 5, ..Default::default() })
            .run();
        for object in obs.objects() {
            let evidence = &outcome.objects[&object];
            prop_assert!(!evidence.candidates.is_empty());
            prop_assert!(evidence.assigned.is_some());
            prop_assert!(outcome.containment.container_of(object).is_some());
            if let Some(stat) = change_statistic(evidence) {
                prop_assert!(stat.delta >= -1e-9, "GLR statistic must be non-negative, got {}", stat.delta);
            }
            // weights are finite
            prop_assert!(evidence.weights.values().all(|w| w.is_finite()));
        }
        prop_assert!(outcome.iterations >= 1);
    }
}
