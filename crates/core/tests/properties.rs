//! Property-based tests of the inference core: the posterior normalization,
//! the optimized likelihood evaluation, the change-point statistic and the
//! EM invariants hold for arbitrary inputs, not just the hand-picked cases of
//! the unit tests.

use proptest::prelude::*;
use rfid_core::{
    change_statistic, container_posterior, CollapsedState, InferenceConfig, InferenceEngine,
    LikelihoodModel, MemoryBudget, MemoryStats, MigrationState, Observations, Posterior,
    ReadingsState, RetentionPlan, RfInfer, RfInferConfig, TruncationPolicy,
};
use rfid_types::{Epoch, LocationId, RawReading, ReadRateTable, ReaderId, ReadingBatch, TagId};
use std::collections::BTreeMap;

fn naive_loglik(rates: &ReadRateTable, readers: &[LocationId], at: LocationId) -> f64 {
    rates
        .locations()
        .map(|r| {
            if readers.contains(&r) {
                rates.log_hit(r, at)
            } else {
                rates.log_miss(r, at)
            }
        })
        .sum()
}

proptest! {
    /// Posteriors built from arbitrary finite log-weights are normalized and
    /// their MAP is the argmax of the inputs.
    #[test]
    fn posterior_normalizes(weights in prop::collection::vec(-1e4f64..0.0, 1..12)) {
        let posterior = Posterior::from_log_weights(weights.clone());
        let total: f64 = posterior.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(posterior.iter().all(|(_, p)| (0.0..=1.0 + 1e-12).contains(&p)));
        let argmax = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        // the MAP location has at least the probability of the true argmax
        prop_assert!(
            posterior.prob(posterior.map_location()) >= posterior.prob(LocationId(argmax as u16)) - 1e-12
        );
    }

    /// The sparse likelihood evaluation (all-miss + corrections) equals the
    /// naive sum over every reader, for arbitrary reader subsets and rates.
    #[test]
    fn optimized_likelihood_matches_naive(
        own in 0.4f64..0.99,
        background in 1e-6f64..1e-2,
        num_locations in 2usize..8,
        reader_mask in prop::collection::vec(any::<bool>(), 8),
        at in 0u16..8,
    ) {
        let at = LocationId(at % num_locations as u16);
        let rates = ReadRateTable::diagonal(num_locations, own, background);
        let model = LikelihoodModel::new(rates.clone());
        let readers: Vec<LocationId> = (0..num_locations as u16)
            .map(LocationId)
            .filter(|l| reader_mask[l.index()])
            .collect();
        let fast = model.tag_loglik(&readers, at);
        let slow = naive_loglik(&rates, &readers, at);
        prop_assert!((fast - slow).abs() < 1e-9);
    }

    /// The E-step posterior favours a location where more of the container's
    /// members were read, whatever the (diagonal) read-rate table looks like.
    #[test]
    fn posterior_favours_majority_location(
        own in 0.5f64..0.95,
        votes_a in 1usize..5,
        votes_b in 0usize..1,
    ) {
        let model = LikelihoodModel::new(ReadRateTable::diagonal(2, own, 1e-4));
        let a = [LocationId(0)];
        let b = [LocationId(1)];
        let mut members: Vec<Option<&[LocationId]>> = Vec::new();
        for _ in 0..votes_a { members.push(Some(&a)); }
        for _ in 0..votes_b { members.push(Some(&b)); }
        let posterior = container_posterior(&model, None, &members);
        prop_assert_eq!(posterior.map_location(), LocationId(0));
    }

    /// RFINFER always assigns every observed object that has at least one
    /// co-located container, and candidate pruning never changes that
    /// guarantee; the change statistic of any object is non-negative.
    #[test]
    fn rfinfer_total_assignment_and_nonnegative_statistic(
        seedlike in prop::collection::vec((0u32..40, 0u64..3, 0u64..3), 20..120),
    ) {
        // Build a co-location structure: each triple (t, object, container)
        // produces a pair of readings at the same reader, so the object is
        // guaranteed a candidate.
        let mut readings = Vec::new();
        for &(t, o, c) in &seedlike {
            let reader = ReaderId((c % 3) as u16);
            readings.push(RawReading::new(Epoch(t), TagId::item(o), reader));
            readings.push(RawReading::new(Epoch(t), TagId::case(c), reader));
        }
        let obs = Observations::from_batch(&ReadingBatch::from_readings(readings));
        let model = LikelihoodModel::new(ReadRateTable::diagonal(3, 0.8, 1e-4));
        let outcome = RfInfer::new(&model, &obs)
            .with_config(RfInferConfig { max_iterations: 5, ..Default::default() })
            .run();
        for object in obs.objects() {
            let evidence = &outcome.objects[&object];
            prop_assert!(!evidence.candidates.is_empty());
            prop_assert!(evidence.assigned.is_some());
            prop_assert!(outcome.containment.container_of(object).is_some());
            if let Some(stat) = change_statistic(evidence) {
                prop_assert!(stat.delta >= -1e-9, "GLR statistic must be non-negative, got {}", stat.delta);
            }
            // weights are finite
            prop_assert!(evidence.weights.values().all(|w| w.is_finite()));
        }
        prop_assert!(outcome.iterations >= 1);
    }

    /// The dense-interned columnar solver is bit-identical to the
    /// `BTreeMap`-keyed tree reference under arbitrary interleavings of
    /// observations, collapsed-state and critical-region-readings imports,
    /// forgets and inference runs — with the cross-run cache (`incremental`)
    /// both on and off, with the chunk-of-8 vector kernels both on and off,
    /// and with change-point detection (whose truncations feed the dirty
    /// journal) active throughout.
    #[test]
    fn dense_solver_matches_tree_reference(
        ops in prop::collection::vec(
            (0u8..8, 1u32..5, 0u64..4, 0u64..3, 0u16..3),
            30..120,
        ),
    ) {
        let config = InferenceConfig::default()
            .with_period(10)
            .with_recent_history(25)
            .with_fixed_threshold(5.0);
        // Six engines fed identically: {dense, tree} × {incremental, full},
        // plus the dense pair again with the vector kernels disabled — the
        // scalar dense path is the exactness reference for the chunk-of-8
        // kernels, so all six must agree bitwise.
        let rates = ReadRateTable::diagonal(3, 0.8, 1e-4);
        let mut engines = [
            InferenceEngine::new(config.clone().with_dense(true), rates.clone()),
            InferenceEngine::new(config.clone().with_dense(false), rates.clone()),
            InferenceEngine::new(
                config.clone().with_dense(true).with_incremental(false),
                rates.clone(),
            ),
            InferenceEngine::new(
                config.clone().with_dense(false).with_incremental(false),
                rates.clone(),
            ),
            InferenceEngine::new(
                config.clone().with_dense(true).with_vector_kernels(false),
                rates.clone(),
            ),
            InferenceEngine::new(
                config
                    .with_dense(true)
                    .with_vector_kernels(false)
                    .with_incremental(false),
                rates,
            ),
        ];
        let mut now = Epoch(0);

        for (i, &(kind, dt, obj, cont, reader)) in ops.iter().enumerate() {
            now = now.plus(dt);
            let object = TagId::item(obj);
            let container = TagId::case(cont);
            match kind {
                0 | 1 => {
                    for engine in engines.iter_mut() {
                        engine.observe(RawReading::new(now, object, ReaderId(reader)));
                        engine.observe(RawReading::new(now, container, ReaderId(reader)));
                    }
                }
                2 => {
                    for engine in engines.iter_mut() {
                        engine.observe(RawReading::new(now, object, ReaderId(reader)));
                    }
                }
                3 => {
                    let state = CollapsedState {
                        object,
                        weights: BTreeMap::from([
                            (container, 0.0),
                            (TagId::case((cont + 1) % 3), -(dt as f64) * 3.0),
                        ]),
                        container: Some(container),
                    };
                    for engine in engines.iter_mut() {
                        engine.import_state(MigrationState::Collapsed(state.clone()));
                    }
                }
                4 => {
                    let from = now.minus(8);
                    let readings: Vec<RawReading> = (0..4u32)
                        .map(|k| RawReading::new(from.plus(k), object, ReaderId(reader)))
                        .chain((0..4u32).map(|k| {
                            RawReading::new(from.plus(k), container, ReaderId(reader))
                        }))
                        .collect();
                    let state = ReadingsState {
                        object,
                        readings,
                        container: Some(container),
                    };
                    for engine in engines.iter_mut() {
                        engine.import_state(MigrationState::Readings(state.clone()));
                    }
                }
                5 => {
                    for engine in engines.iter_mut() {
                        engine.forget(object);
                    }
                }
                _ => {
                    if engines[0].stored_observations() == 0 {
                        continue;
                    }
                    let reports: Vec<_> = engines
                        .iter_mut()
                        .map(|engine| engine.run_inference(now))
                        .collect();
                    let dense_incr = &reports[0];
                    for (label, other) in
                        [("tree-incr", &reports[1]), ("dense-full", &reports[2]),
                         ("tree-full", &reports[3]),
                         ("dense-incr-scalar", &reports[4]),
                         ("dense-full-scalar", &reports[5])]
                    {
                        prop_assert_eq!(&dense_incr.outcome, &other.outcome,
                            "{} outcome diverged at op {} (epoch {:?})", label, i, now);
                        prop_assert_eq!(&dense_incr.changes, &other.changes,
                            "{} changes diverged at op {}", label, i);
                        prop_assert_eq!(
                            dense_incr.retained_observations,
                            other.retained_observations
                        );
                    }
                    // The incremental solvers replay the same reuse
                    // decisions, so their accounting matches exactly too —
                    // the vector kernels must not change what gets reused.
                    prop_assert_eq!(reports[0].stats, reports[1].stats,
                        "dense-incr vs tree-incr reuse counters diverged at op {}", i);
                    prop_assert_eq!(reports[0].stats, reports[4].stats,
                        "dense-incr vs dense-incr-scalar reuse counters diverged at op {}", i);
                    prop_assert_eq!(engines[0].containment(), engines[1].containment());
                    prop_assert_eq!(engines[0].containment(), engines[2].containment());
                    prop_assert_eq!(
                        engines[0].export_collapsed(object),
                        engines[1].export_collapsed(object)
                    );
                    prop_assert_eq!(
                        engines[0].export_readings(object),
                        engines[1].export_readings(object)
                    );
                }
            }
        }
        // final run: every solver must agree after the whole interleaving
        if engines[0].stored_observations() > 0 {
            let final_at = now.plus(1);
            let reports: Vec<_> = engines
                .iter_mut()
                .map(|engine| engine.run_inference(final_at))
                .collect();
            for other in &reports[1..] {
                prop_assert_eq!(&reports[0].outcome, &other.outcome);
            }
            prop_assert_eq!(engines[0].containment(), engines[3].containment());
        }
    }

    /// Incremental RFINFER is bit-identical to a from-scratch full recompute
    /// under arbitrary interleavings of observations, collapsed-state and
    /// critical-region-readings imports, forgets and inference runs — with
    /// change-point detection (and its history truncation) active, so
    /// change-point truncations feed the dirty journal too.
    #[test]
    fn incremental_engine_matches_full_recompute(
        ops in prop::collection::vec(
            (0u8..8, 1u32..5, 0u64..4, 0u64..3, 0u16..3),
            30..120,
        ),
    ) {
        let config = InferenceConfig::default()
            .with_period(10)
            .with_recent_history(25)
            .with_fixed_threshold(5.0);
        let rates = ReadRateTable::diagonal(3, 0.8, 1e-4);
        let mut full = InferenceEngine::new(config.clone().with_incremental(false), rates.clone());
        let mut incremental = InferenceEngine::new(config, rates);
        let mut now = Epoch(0);

        for (i, &(kind, dt, obj, cont, reader)) in ops.iter().enumerate() {
            now = now.plus(dt);
            let object = TagId::item(obj);
            let container = TagId::case(cont);
            match kind {
                // co-located readings: object travels with a container
                0 | 1 => {
                    for engine in [&mut full, &mut incremental] {
                        engine.observe(RawReading::new(now, object, ReaderId(reader)));
                        engine.observe(RawReading::new(now, container, ReaderId(reader)));
                    }
                }
                // stray reading of the object alone
                2 => {
                    for engine in [&mut full, &mut incremental] {
                        engine.observe(RawReading::new(now, object, ReaderId(reader)));
                    }
                }
                // collapsed-weights import from a previous site
                3 => {
                    let state = CollapsedState {
                        object,
                        weights: BTreeMap::from([
                            (container, 0.0),
                            (TagId::case((cont + 1) % 3), -(dt as f64) * 3.0),
                        ]),
                        container: Some(container),
                    };
                    for engine in [&mut full, &mut incremental] {
                        engine.import_state(MigrationState::Collapsed(state.clone()));
                    }
                }
                // critical-region readings import (historical epochs)
                4 => {
                    let from = now.minus(8);
                    let readings: Vec<RawReading> = (0..4u32)
                        .map(|k| RawReading::new(from.plus(k), object, ReaderId(reader)))
                        .chain((0..4u32).map(|k| {
                            RawReading::new(from.plus(k), container, ReaderId(reader))
                        }))
                        .collect();
                    let state = ReadingsState {
                        object,
                        readings,
                        container: Some(container),
                    };
                    for engine in [&mut full, &mut incremental] {
                        engine.import_state(MigrationState::Readings(state.clone()));
                    }
                }
                // the object's state was shipped elsewhere
                5 => {
                    for engine in [&mut full, &mut incremental] {
                        engine.forget(object);
                    }
                }
                // explicit inference run at the current epoch
                _ => {
                    if full.stored_observations() == 0 {
                        continue;
                    }
                    let report_full = full.run_inference(now);
                    let report_incr = incremental.run_inference(now);
                    prop_assert_eq!(&report_full.outcome, &report_incr.outcome,
                        "outcomes diverged at op {} (epoch {:?})", i, now);
                    prop_assert_eq!(&report_full.changes, &report_incr.changes);
                    prop_assert_eq!(
                        report_full.retained_observations,
                        report_incr.retained_observations
                    );
                    prop_assert_eq!(full.containment(), incremental.containment());
                    prop_assert_eq!(
                        full.export_collapsed(object),
                        incremental.export_collapsed(object)
                    );
                    prop_assert_eq!(
                        full.export_readings(object),
                        incremental.export_readings(object)
                    );
                }
            }
        }
        // final run: both engines must agree after the whole interleaving
        if full.stored_observations() > 0 {
            let report_full = full.run_inference(now.plus(1));
            let report_incr = incremental.run_inference(now.plus(1));
            prop_assert_eq!(&report_full.outcome, &report_incr.outcome);
            prop_assert_eq!(full.containment(), incremental.containment());
        }
    }

    /// `RetentionPlan::ranges_for` always yields ascending, disjoint,
    /// non-touching, non-empty inclusive ranges, whatever raw (possibly
    /// overlapping, possibly unsorted) ranges the plan holds per tag.
    #[test]
    fn retention_ranges_are_disjoint_and_nonempty(
        raw in prop::collection::vec((0u32..500, 0u32..100), 0..10),
        recent in 0u32..500,
        now in 0u32..600,
    ) {
        let plan = RetentionPlan {
            per_tag: BTreeMap::from([(
                TagId::item(1),
                raw.iter().map(|&(lo, len)| (Epoch(lo), Epoch(lo + len))).collect(),
            )]),
            recent_from: Epoch(recent),
        };
        let ranges = plan.ranges_for(TagId::item(1), Epoch(now));
        prop_assert!(!ranges.is_empty(), "the recent history is always retained");
        for &(lo, hi) in &ranges {
            prop_assert!(lo <= hi, "empty range {:?}..{:?}", lo, hi);
        }
        for pair in ranges.windows(2) {
            prop_assert!(pair[1].0.0 > pair[0].1.0 + 1,
                "ranges overlap or touch: {:?}", ranges);
        }
        // a tag with no per-tag ranges keeps exactly the recent history
        prop_assert_eq!(
            plan.ranges_for(TagId::item(99), Epoch(now)),
            vec![(Epoch(recent.min(now)), Epoch(now))]
        );
    }

    /// Budget-driven compaction is monotone — a tighter budget never retains
    /// more observations than a looser one — and an unbounded budget is
    /// bit-identical to never calling `enforce_budget` at all (it only tracks
    /// the high-water mark).
    #[test]
    fn budget_compaction_is_monotone_and_unbounded_is_identity(
        ops in prop::collection::vec((0u32..3, 0u64..4, 0u64..3, 0u16..3), 20..80),
        loose in 8usize..60,
        delta in 1usize..30,
    ) {
        let config = InferenceConfig::default()
            .with_period(10)
            .with_recent_history(40)
            .with_truncation(TruncationPolicy::Full)
            .without_change_detection();
        let rates = ReadRateTable::diagonal(3, 0.8, 1e-4);
        let mut engine = InferenceEngine::new(config.clone(), rates.clone());
        let mut now = Epoch(0);
        for &(dt, obj, cont, reader) in &ops {
            now = now.plus(dt + 1);
            engine.observe(RawReading::new(now, TagId::item(obj), ReaderId(reader)));
            engine.observe(RawReading::new(now, TagId::case(cont), ReaderId(reader)));
        }
        engine.run_inference(now);
        let snapshot = engine.snapshot();

        // Unbounded: bit-identical to not enforcing any budget.
        let mut untouched = InferenceEngine::new(config.clone(), rates.clone());
        untouched.restore(snapshot.clone());
        let mut stats = MemoryStats::default();
        untouched.enforce_budget(MemoryBudget::unbounded(), now, &mut stats);
        prop_assert_eq!(untouched.snapshot(), snapshot.clone());
        prop_assert_eq!(stats.high_water, snapshot.store.len() as u64);
        prop_assert_eq!(stats.compactions, 0);
        prop_assert_eq!(stats.compacted_observations, 0);
        prop_assert_eq!(stats.evicted_cache_entries, 0);

        // Monotone: the halving loop retains nested windows, so tightening
        // the budget can only shrink what survives.
        let tight = loose.saturating_sub(delta);
        let mut a = InferenceEngine::new(config.clone(), rates.clone());
        a.restore(snapshot.clone());
        let mut b = InferenceEngine::new(config, rates);
        b.restore(snapshot);
        a.enforce_budget(MemoryBudget::capped(loose), now, &mut MemoryStats::default());
        b.enforce_budget(MemoryBudget::capped(tight), now, &mut MemoryStats::default());
        prop_assert!(b.stored_observations() <= a.stored_observations(),
            "tight budget {} retained {} > loose budget {} retained {}",
            tight, b.stored_observations(), loose, a.stored_observations());
    }
}
