//! Dense-interned columnar RFINFER — the default solver behind
//! [`RfInfer::run`](crate::RfInfer::run).
//!
//! The reference solver (`RfInfer::run_tree`) keys every piece of EM state by
//! sparse 64-bit [`TagId`]s in `BTreeMap`s: each E-step posterior, each
//! point-evidence append and each M-step weight update pays a tree walk plus
//! an allocation. This module removes all of that from the inner loops with
//! one idea: **a per-run interning pass**. At the top of a run every live tag
//! (objects, observed containers, prior-named candidate containers) is
//! interned into a contiguous `u32` index, every distinct per-epoch reader
//! set into a reader-set id, and from then on the EM runs entirely over flat
//! `Vec`-indexed arenas:
//!
//! * candidate sets, co-location weight rows and prior weights live in flat
//!   arenas aligned by candidate position (`cand_arena` / `weights`),
//! * per-container needed-epoch lists and member lists live in shared arenas
//!   sliced by a per-container `(start, len)`,
//! * E-step posteriors are epoch-sorted slices walked with cursors — no
//!   `BTreeMap<Epoch, Posterior>` anywhere,
//! * every `(reader set, location)` log-likelihood is computed once per run
//!   in a memoized [`ReaderSetTable`] row and reused by both the posterior
//!   and the point-evidence evaluations,
//! * all of it backed by [`DenseScratch`] buffers the engine keeps alive
//!   across runs, so the streaming steady state allocates almost nothing.
//!
//! Interned indices are **run-scoped**: they are assigned fresh each run from
//! the ascending tag order, and nothing outside the run ever sees one. Only
//! the run boundary converts back to the `TagId`-keyed
//! [`InferenceOutcome`] / [`EvidenceCache`] types, so the public API, the
//! wire formats and the incremental dirty-set machinery are untouched.
//!
//! The solver replays the exact control flow of the reference EM — same
//! candidate ranking, same initial assignment, same variant memoization and
//! cross-run reuse decisions, same floating-point summation order — so its
//! results are **bit-identical** to the tree solver's, pinned by the
//! `dense_solver_matches_tree_reference` proptest and the distributed
//! determinism suite.

pub mod kernels;

use crate::likelihood::ReaderSetTable;
use crate::observations::{ObsAt, Observations};
use crate::posterior::{
    container_posterior_row_into, container_posterior_row_into_vector, expect_row_of, Posterior,
};
use crate::rfinfer::{
    CachedVariant, DirtySet, EvidenceCache, InferenceOutcome, InferenceStats, ObjectEvidence,
    PrevSeries, RfInfer, MAX_CACHED_VARIANTS,
};
use rfid_types::{ContainmentMap, Epoch, LocationId, TagId};
use std::collections::{BTreeMap, HashMap};

/// Sentinel for "no index" in dense `u32` columns.
const NONE_IDX: u32 = u32::MAX;

// TEMPORARY profiling section counters (nanos).

/// One point-evidence series: `(epoch, e_co)` in epoch order.
type Series = Vec<(Epoch, f64)>;

/// Series keyed by interned object index, ascending; `Option` so the
/// whole-series fast path can move one out without shifting the column.
type TakableSeries = Vec<(u32, Option<Series>)>;

/// Reusable flat buffers of the dense solver: the interning arena, the
/// candidate/weight/epoch/member arenas and the reader-set log-likelihood
/// table. Held by [`InferenceEngine`](crate::InferenceEngine) across runs
/// (and by every EM iteration within a run), so the steady state reuses
/// capacity instead of reallocating.
///
/// The buffers carry no meaning between runs — every run re-interns from
/// scratch — which is exactly why holding them is safe: a `DenseScratch` can
/// be shared across engines, runs and configurations freely.
#[derive(Debug, Default)]
pub struct DenseScratch {
    /// Interned universe: dense index → tag, ascending by `TagId`.
    tags: Vec<TagId>,
    /// Prior-named tags missing from the observation index.
    extras: Vec<TagId>,
    /// Reader-set id of every observation, flattened per tag.
    set_ids: Vec<u32>,
    /// Per-tag offset into `set_ids` (length `tags.len() + 1`).
    set_start: Vec<u32>,
    /// Memoized `(reader set, location) → loglik` rows.
    table: ReaderSetTable,
    /// Dense indices of observed objects, ascending.
    objects: Vec<u32>,
    /// Dense indices of observed containers, ascending.
    all_containers: Vec<u32>,
    /// Dense indices of relevant containers (candidates ∪ observed),
    /// ascending; the slot order of all per-container columns.
    rel: Vec<u32>,
    /// Dense tag index → relevant-container slot (or `NONE_IDX`).
    slot_of: Vec<u32>,
    /// Scratch bitmap over the tag universe.
    mark: Vec<bool>,
    /// Flat candidate container indices per object, in pruned order.
    cand_arena: Vec<u32>,
    /// Per-object offset into `cand_arena` (length `objects.len() + 1`).
    cand_start: Vec<u32>,
    /// Per-object candidate positions sorted by ascending container index —
    /// the argmax iteration order of the `BTreeMap`-keyed reference.
    cand_sorted: Vec<u32>,
    /// Co-location counting scratch for candidate pruning.
    colo_counts: Vec<(u32, usize)>,
    /// Co-location weight rows, aligned with `cand_arena`.
    weights: Vec<f64>,
    /// Prior weights, aligned with `cand_arena` (resolved once per run).
    prior_w: Vec<f64>,
    /// Per-object assigned container index (or `NONE_IDX`).
    assign: Vec<u32>,
    /// The next iteration's assignment.
    new_assign: Vec<u32>,
    /// Needed-epoch arena, sliced per relevant-container slot.
    epochs_arena: Vec<Epoch>,
    /// Per-slot offset into `epochs_arena`.
    epochs_start: Vec<u32>,
    /// Per-slot deduplicated length within `epochs_arena`.
    epochs_len: Vec<u32>,
    /// Member arena (object tag indices), sliced per slot.
    member_arena: Vec<u32>,
    /// Per-slot offset into `member_arena` (length `rel.len() + 1`).
    member_start: Vec<u32>,
    /// Per-slot fill cursors for the counting sorts.
    slot_fill: Vec<u32>,
    /// Per-member observation cursors of the current container walk.
    cursors: Vec<u32>,
    /// Sorted invalid epochs of the current container (dirty union).
    invalid: Vec<Epoch>,
    /// Vector-path scratch: one probability row, reused by every in-place
    /// normalization that only needs the MAP location (no `Posterior`
    /// allocation per epoch).
    row_scratch: Vec<f64>,
    /// Vector-path scratch: gathered weights of one argmax scan, in
    /// ascending-container (`cand_sorted`) order.
    argmax_buf: Vec<f64>,
    /// Vector-path scratch: per-reader-set location bitmask (bit `r` set
    /// when reader `r` fired). Exact only when every reader id fits the
    /// mask width; see `set_mask_exact`.
    set_masks: Vec<u128>,
    /// Whether the matching `set_masks` entry covers every reader of the
    /// set (readers with ids ≥ 128 fall back to a list intersection).
    set_mask_exact: Vec<bool>,
    /// Vector-path scratch: container observation events `(epoch,
    /// all-containers position, reader-set id)`, epoch-sorted.
    colo_cont_events: Vec<(Epoch, u32, u32)>,
    /// Vector-path scratch: object observation events `(epoch, object
    /// position, reader-set id)`, epoch-sorted.
    colo_obj_events: Vec<(Epoch, u32, u32)>,
    /// Vector-path scratch: object × container co-location count matrix,
    /// row-major by object position.
    colo_matrix: Vec<u32>,
    /// Vector-path scratch: lane indices computing a dot product at the
    /// current epoch of one transposed M-step walk.
    active: Vec<u32>,
    /// Vector-path scratch: epoch-presence bitset of one slot's needed-epoch
    /// dedup, indexed by epoch offset from the run's earliest epoch.
    seen: Vec<u64>,
    /// Vector-path scratch: the distinct epochs of one slot, pre-sort.
    uniq: Vec<Epoch>,
}

/// A previous run's cached variant, re-interned into this run's indices.
struct PrevVariant {
    members: Vec<u32>,
    epochs: Vec<Epoch>,
    qrows: Vec<f64>,
    evidence: TakableSeries,
}

/// Working state of one container during a dense EM run — the columnar
/// mirror of the reference solver's `Variant`.
struct DVariant {
    members: Vec<u32>,
    updated_iter: usize,
    /// Epochs of the per-epoch posteriors, ascending.
    epochs: Vec<Epoch>,
    /// Posterior probability rows, concatenated in epoch order (row width =
    /// number of locations) — one arena per variant, so the M-step lanes and
    /// the outcome builder stream rows instead of chasing per-posterior
    /// allocations.
    qrows: Vec<f64>,
    /// Epochs whose posterior was moved bitwise out of the previous run.
    reused: Vec<Epoch>,
    fully_reused: bool,
    prev_evidence: TakableSeries,
    /// This run's evidence series, pushed in ascending object order.
    evidence: Vec<(u32, Series)>,
}

/// One lane of the transposed M-step walk: the per-candidate cursors and the
/// accumulating weight for a candidate whose evidence series must be derived
/// (or partially reused) against its variant's per-epoch posteriors. The
/// variant itself stays in `current`, borrowed shared for the duration of the
/// walk; lanes only carry indices and owned state.
struct MWalker {
    /// Flat index of this (object, candidate) pair in the weight arena.
    flat: u32,
    /// Slot of the candidate's variant in `current`.
    slot: u32,
    /// Accumulating co-location weight (prior already added).
    w: f64,
    /// Evidence series under construction (incremental mode only).
    series: Series,
    /// Cursor into the variant's per-epoch posterior series.
    q_cur: usize,
    /// Cursor into the variant's reused-epochs list.
    r_cur: usize,
    /// Cursor into the previous run's series for this pair.
    prev_pos: usize,
    /// The posterior series is exhausted; the lane contributes nothing more.
    done: bool,
}

/// The shared borrows one M-step lane reads during the transposed walk:
/// (posterior epochs, flat posterior rows, reused epochs, previous run's
/// evidence series for the walked object).
type MLaneRefs<'v> = (
    &'v [Epoch],
    &'v [f64],
    &'v [Epoch],
    Option<&'v [(Epoch, f64)]>,
);

/// Multiplicative word hasher for the run-scoped reader-set interner (the
/// fx-hash recipe: rotate, xor, multiply by a golden-ratio-derived odd
/// constant). The interner's keys are tiny `&[LocationId]` slices hashed
/// thousands of times per run, where SipHash's per-call setup dominates;
/// interned ids depend only on insertion order, so the hash function cannot
/// affect inference output.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

fn find_series(evidence: &[(u32, Series)], object: u32) -> Option<&Series> {
    evidence
        .binary_search_by_key(&object, |e| e.0)
        .ok()
        .map(|i| &evidence[i].1)
}

fn prev_series(evidence: &TakableSeries, object: u32) -> Option<&[(Epoch, f64)]> {
    evidence
        .binary_search_by_key(&object, |e| e.0)
        .ok()
        .and_then(|i| evidence[i].1.as_deref())
}

fn take_prev_series(evidence: &mut TakableSeries, object: u32) -> Option<Series> {
    evidence
        .binary_search_by_key(&object, |e| e.0)
        .ok()
        .and_then(|i| evidence[i].1.take())
}

/// Counting-sort the current assignment into per-slot member lists
/// (`member_start` / `member_arena`, object tag indices ascending per slot —
/// the reference solver's iteration order over its assignment map). Shared
/// by the EM loop and the outcome builder, whose member sets must be built
/// identically for the bit-identity contract to hold. Takes the scratch
/// columns individually so callers can keep disjoint borrows (e.g. loglik
/// rows) alive across the call.
#[allow(clippy::too_many_arguments)]
fn count_members(
    assign: &[u32],
    objects: &[u32],
    slot_of: &[u32],
    slot_fill: &mut Vec<u32>,
    member_start: &mut Vec<u32>,
    member_arena: &mut Vec<u32>,
    num_rel: usize,
) {
    let num_objects = objects.len();
    slot_fill.clear();
    slot_fill.resize(num_rel, 0);
    for k in 0..num_objects {
        if assign[k] != NONE_IDX {
            slot_fill[slot_of[assign[k] as usize] as usize] += 1;
        }
    }
    member_start.clear();
    let mut total = 0u32;
    for slot in 0..num_rel {
        member_start.push(total);
        total += slot_fill[slot];
        slot_fill[slot] = member_start[slot];
    }
    member_start.push(total);
    member_arena.clear();
    member_arena.resize(total as usize, 0);
    for k in 0..num_objects {
        if assign[k] != NONE_IDX {
            let slot = slot_of[assign[k] as usize] as usize;
            member_arena[slot_fill[slot] as usize] = objects[k];
            slot_fill[slot] += 1;
        }
    }
}

/// Argmax over one object's weight row, iterating candidates in ascending
/// container order with later ties winning — the reference's `BTreeMap`
/// iteration + `max_by` semantics. `range` is the object's flat candidate
/// range; returns the winning container index.
fn argmax_weight(s: &DenseScratch, range: std::ops::Range<usize>) -> u32 {
    let mut best: Option<(u32, f64)> = None;
    for &p in &s.cand_sorted[range.clone()] {
        let flat = range.start + p as usize;
        let w = s.weights[flat];
        if best.is_none_or(|(_, bw)| w >= bw) {
            best = Some((s.cand_arena[flat], w));
        }
    }
    best.map(|(ci, _)| ci).unwrap_or(NONE_IDX)
}

/// Vector-path [`argmax_weight`]: gather the weights in `cand_sorted`
/// order into a reusable buffer and scan them with the chunked
/// [`kernels::argmax_ties_last`] — same iteration order, same `>=`
/// later-ties-win rule, so the winner is identical for every input.
fn argmax_weight_vector(
    cand_sorted: &[u32],
    cand_arena: &[u32],
    weights: &[f64],
    range: std::ops::Range<usize>,
    buf: &mut Vec<f64>,
) -> u32 {
    buf.clear();
    buf.extend(
        cand_sorted[range.clone()]
            .iter()
            .map(|&p| weights[range.start + p as usize]),
    );
    kernels::argmax_ties_last(buf)
        .map(|i| cand_arena[range.start + cand_sorted[range.start + i] as usize])
        .unwrap_or(NONE_IDX)
}

/// Epoch-indexed co-location counting for the vector path's candidate
/// pruning: instead of one merge-join per (object, container) pair — the
/// scalar [`Observations::candidate_indices_dense`] walk, quadratic in the
/// tag universe — group *all* observation events by epoch once and touch
/// only the (object, container) pairs that actually share an epoch.
/// Reader-set overlap is resolved through per-set location bitmasks
/// (`any shared reader` ⇔ `mask ∩ mask ≠ ∅` — exact whenever reader ids fit
/// the mask, with a list-intersection fallback when they don't), so the
/// resulting counts equal the scalar `colocated_epochs` counts exactly.
///
/// Fills `s.colo_matrix` row-major by object position over
/// `s.all_containers` columns.
fn fill_colocation_matrix(
    s: &mut DenseScratch,
    obs_of: &[&[ObsAt]],
    set_readers: &[&[LocationId]],
) {
    // Per-set location masks.
    s.set_masks.clear();
    s.set_mask_exact.clear();
    for readers in set_readers {
        let mut mask = 0u128;
        let mut exact = true;
        for r in *readers {
            if (r.0 as usize) < 128 {
                mask |= 1u128 << r.0;
            } else {
                exact = false;
            }
        }
        s.set_masks.push(mask);
        s.set_mask_exact.push(exact);
    }

    // Epoch-sorted event lists, containers and objects separately.
    s.colo_cont_events.clear();
    for (cpos, &ci) in s.all_containers.iter().enumerate() {
        let base = s.set_start[ci as usize];
        for (off, obs_at) in obs_of[ci as usize].iter().enumerate() {
            s.colo_cont_events.push((
                obs_at.epoch,
                cpos as u32,
                s.set_ids[(base + off as u32) as usize],
            ));
        }
    }
    s.colo_cont_events.sort_unstable_by_key(|e| e.0);
    s.colo_obj_events.clear();
    for (kpos, &oi) in s.objects.iter().enumerate() {
        let base = s.set_start[oi as usize];
        for (off, obs_at) in obs_of[oi as usize].iter().enumerate() {
            s.colo_obj_events.push((
                obs_at.epoch,
                kpos as u32,
                s.set_ids[(base + off as u32) as usize],
            ));
        }
    }
    s.colo_obj_events.sort_unstable_by_key(|e| e.0);

    // Lockstep walk over shared epochs; each co-located (object, container)
    // event pair bumps one matrix cell.
    let nc = s.all_containers.len();
    s.colo_matrix.clear();
    s.colo_matrix.resize(s.objects.len() * nc, 0);
    let overlap = |oset: u32, cset: u32| -> bool {
        if s.set_mask_exact[oset as usize] && s.set_mask_exact[cset as usize] {
            s.set_masks[oset as usize] & s.set_masks[cset as usize] != 0
        } else {
            set_readers[oset as usize]
                .iter()
                .any(|r| set_readers[cset as usize].contains(r))
        }
    };
    let (objs, conts) = (&s.colo_obj_events, &s.colo_cont_events);
    let (mut i, mut j) = (0usize, 0usize);
    while i < objs.len() && j < conts.len() {
        let t = objs[i].0;
        match t.cmp(&conts[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let i_end = i + objs[i..].iter().take_while(|e| e.0 == t).count();
                let j_end = j + conts[j..].iter().take_while(|e| e.0 == t).count();
                for &(_, kpos, oset) in &objs[i..i_end] {
                    let row = kpos as usize * nc;
                    for &(_, cpos, cset) in &conts[j..j_end] {
                        if overlap(oset, cset) {
                            s.colo_matrix[row + cpos as usize] += 1;
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
}

/// Sort a slice range in place and return its deduplicated length.
fn sort_dedup(slice: &mut [Epoch]) -> usize {
    slice.sort_unstable();
    let mut len = 0usize;
    for i in 0..slice.len() {
        if len == 0 || slice[len - 1] != slice[i] {
            slice[len] = slice[i];
            len += 1;
        }
    }
    len
}

/// [`sort_dedup`] through an epoch-presence bitset: collect each distinct
/// epoch once (testing a bit instead of sorting duplicates), sort only the
/// distinct values, and clear the touched bits for the next slot. A slot's
/// segment concatenates one epoch-sorted list per candidate object, so the
/// duplication factor is roughly the candidate count — sorting only the
/// distinct epochs is what makes this linear-ish. The output (ascending
/// distinct epochs) is identical to [`sort_dedup`]'s for every input.
fn sort_dedup_bitmap(
    slice: &mut [Epoch],
    base: Epoch,
    seen: &mut [u64],
    uniq: &mut Vec<Epoch>,
) -> usize {
    uniq.clear();
    for &e in slice.iter() {
        let off = e.since(base) as usize;
        let (word, bit) = (off / 64, off % 64);
        if seen[word] & (1 << bit) == 0 {
            seen[word] |= 1 << bit;
            uniq.push(e);
        }
    }
    uniq.sort_unstable();
    slice[..uniq.len()].copy_from_slice(uniq);
    for &e in uniq.iter() {
        let off = e.since(base) as usize;
        seen[off / 64] &= !(1 << (off % 64));
    }
    uniq.len()
}

/// Run the dense-interned EM. Control flow and floating-point summation
/// order mirror `RfInfer::run_tree` exactly; see the module docs.
pub(crate) fn run_dense(
    rf: &RfInfer<'_>,
    mut incr: Option<(&mut EvidenceCache, &DirtySet)>,
    scratch: &mut DenseScratch,
) -> (InferenceOutcome, InferenceStats) {
    let model = rf.model;
    let nl = model.num_locations();
    let obs = rf.obs;
    let prior = rf.prior;
    let config = &rf.config;

    let mut stats = InferenceStats::default();
    let mut prev_cache: BTreeMap<TagId, Vec<CachedVariant>> = BTreeMap::new();
    let mut dirty: Option<&DirtySet> = None;
    if let Some((cache, d)) = incr.as_mut() {
        prev_cache = std::mem::take(&mut cache.containers);
        dirty = Some(*d);
        stats.dirty_tags = d.num_tags();
    }
    let incremental = dirty.is_some();

    let s = &mut *scratch;

    // ---- Interning pass: tags ----------------------------------------
    // The universe is every observed tag plus every container the prior
    // names for an observed object (they become candidates even when never
    // read locally). Observed tags arrive ascending; extras are merged in.
    s.tags.clear();
    s.extras.clear();
    for (tag, _) in obs.entries() {
        s.tags.push(tag);
        if tag.is_object() {
            for (c, _) in prior.entries_for(tag) {
                if s.tags.binary_search(&c).is_err() {
                    s.extras.push(c);
                }
            }
        }
    }
    if !s.extras.is_empty() {
        s.tags.append(&mut s.extras);
        s.tags.sort_unstable();
        s.tags.dedup();
    }
    let num_tags = s.tags.len();

    // Per-tag observation slices, resolved once (extras have none).
    let mut obs_of: Vec<&[ObsAt]> = Vec::with_capacity(num_tags);
    {
        let mut entries = obs.entries().peekable();
        for &tag in &s.tags {
            match entries.peek() {
                Some(&(t, slice)) if t == tag => {
                    obs_of.push(slice);
                    entries.next();
                }
                _ => obs_of.push(&[]),
            }
        }
    }

    // ---- Interning pass: reader sets + loglik table ------------------
    s.set_ids.clear();
    s.set_start.clear();
    let mut set_readers: Vec<&[LocationId]> = Vec::new();
    {
        let mut interner: HashMap<&[LocationId], u32, std::hash::BuildHasherDefault<FxHasher>> =
            HashMap::default();
        for list in &obs_of {
            s.set_start.push(s.set_ids.len() as u32);
            for o in *list {
                let next = set_readers.len() as u32;
                let id = *interner.entry(o.readers.as_slice()).or_insert(next);
                if id == next {
                    set_readers.push(&o.readers);
                }
                s.set_ids.push(id);
            }
        }
        s.set_start.push(s.set_ids.len() as u32);
    }
    if config.vector_kernels {
        model.fill_reader_set_table_vector(set_readers.iter().copied(), &mut s.table);
    } else {
        model.fill_reader_set_table(set_readers.iter().copied(), &mut s.table);
    }

    // ---- Objects / containers ----------------------------------------
    s.objects.clear();
    s.all_containers.clear();
    for (i, &tag) in s.tags.iter().enumerate() {
        if obs_of[i].is_empty() {
            continue; // prior-only extras are candidates, never objects
        }
        if tag.is_object() {
            s.objects.push(i as u32);
        } else if tag.is_container() {
            s.all_containers.push(i as u32);
        }
    }
    let num_objects = s.objects.len();

    // ---- Candidate pruning -------------------------------------------
    // Container columns for the dense co-location ranking.
    let container_columns: Vec<(u32, &[ObsAt])> = s
        .all_containers
        .iter()
        .map(|&ci| (ci, obs_of[ci as usize]))
        .collect();
    // Vector path: one epoch-indexed counting pass over all observation
    // events replaces the per-(object, container) merge joins; the counts —
    // and therefore the selected candidates — are identical.
    if config.vector_kernels && config.candidate_pruning {
        fill_colocation_matrix(s, &obs_of, &set_readers);
    }
    s.cand_arena.clear();
    s.cand_start.clear();
    s.prior_w.clear();
    for (k, &oi) in s.objects.iter().enumerate() {
        s.cand_start.push(s.cand_arena.len() as u32);
        let start = s.cand_arena.len();
        if config.candidate_pruning {
            if config.vector_kernels {
                let nc = s.all_containers.len();
                s.colo_counts.clear();
                for cpos in 0..nc {
                    let count = s.colo_matrix[k * nc + cpos];
                    if count > 0 {
                        s.colo_counts.push((s.all_containers[cpos], count as usize));
                    }
                }
                s.colo_counts
                    .sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                s.cand_arena.extend(
                    s.colo_counts
                        .iter()
                        .take(config.candidate_limit)
                        .map(|&(c, _)| c),
                );
            } else {
                Observations::candidate_indices_dense(
                    obs_of[oi as usize],
                    &container_columns,
                    config.candidate_limit,
                    &mut s.colo_counts,
                    &mut s.cand_arena,
                );
            }
        } else {
            s.cand_arena.extend_from_slice(&s.all_containers);
        }
        for (c, _) in prior.entries_for(s.tags[oi as usize]) {
            let ci = s.tags.binary_search(&c).expect("prior tags interned") as u32;
            if !s.cand_arena[start..].contains(&ci) {
                s.cand_arena.push(ci);
            }
        }
        // Resolve the prior weight of every candidate once.
        for &ci in &s.cand_arena[start..] {
            s.prior_w
                .push(prior.get(s.tags[oi as usize], s.tags[ci as usize]));
        }
    }
    s.cand_start.push(s.cand_arena.len() as u32);

    // Candidate positions (relative to each object's range) sorted by
    // ascending container index — the tie ordering of the reference
    // solver's `BTreeMap` argmax walks.
    s.cand_sorted.clear();
    for k in 0..num_objects {
        let start = s.cand_start[k] as usize;
        let end = s.cand_start[k + 1] as usize;
        s.cand_sorted.extend(0..(end - start) as u32);
        let arena = &s.cand_arena;
        s.cand_sorted[start..end].sort_unstable_by_key(|&p| arena[start + p as usize]);
    }

    // ---- Initial assignment ------------------------------------------
    // Strongest prior if any (later candidates win ties, like the
    // reference's `max_by`), otherwise the top-ranked candidate.
    s.assign.clear();
    s.assign.resize(num_objects, NONE_IDX);
    s.new_assign.clear();
    s.new_assign.resize(num_objects, NONE_IDX);
    for k in 0..num_objects {
        let range = s.cand_start[k] as usize..s.cand_start[k + 1] as usize;
        if range.is_empty() {
            continue;
        }
        let mut best: Option<(u32, f64)> = None;
        for flat in range.clone() {
            let w = s.prior_w[flat];
            if w != 0.0 && best.is_none_or(|(_, bw)| w >= bw) {
                best = Some((s.cand_arena[flat], w));
            }
        }
        s.assign[k] = best.map(|(ci, _)| ci).unwrap_or(s.cand_arena[range.start]);
    }

    // ---- Relevant containers + slots ---------------------------------
    s.mark.clear();
    s.mark.resize(num_tags, false);
    for &ci in &s.cand_arena {
        s.mark[ci as usize] = true;
    }
    for &ci in &s.all_containers {
        s.mark[ci as usize] = true;
    }
    s.rel.clear();
    s.slot_of.clear();
    s.slot_of.resize(num_tags, NONE_IDX);
    for i in 0..num_tags {
        if s.mark[i] {
            s.slot_of[i] = s.rel.len() as u32;
            s.rel.push(i as u32);
        }
    }
    let num_rel = s.rel.len();

    // ---- Needed epochs per relevant container ------------------------
    // Counting pass, prefix sums, fill, then per-slot sort + dedup: the
    // set-union of the reference built with vector constants.
    s.slot_fill.clear();
    s.slot_fill.resize(num_rel, 0);
    for (slot, &ci) in s.rel.iter().enumerate() {
        s.slot_fill[slot] = obs_of[ci as usize].len() as u32;
    }
    for k in 0..num_objects {
        let len = obs_of[s.objects[k] as usize].len() as u32;
        for flat in s.cand_start[k] as usize..s.cand_start[k + 1] as usize {
            s.slot_fill[s.slot_of[s.cand_arena[flat] as usize] as usize] += len;
        }
    }
    s.epochs_start.clear();
    let mut total = 0u32;
    for slot in 0..num_rel {
        s.epochs_start.push(total);
        total += s.slot_fill[slot];
        s.slot_fill[slot] = s.epochs_start[slot];
    }
    s.epochs_arena.clear();
    s.epochs_arena.resize(total as usize, Epoch(0));
    for (slot, &ci) in s.rel.iter().enumerate() {
        let cur = s.slot_fill[slot] as usize;
        for (off, o) in obs_of[ci as usize].iter().enumerate() {
            s.epochs_arena[cur + off] = o.epoch;
        }
        s.slot_fill[slot] += obs_of[ci as usize].len() as u32;
    }
    for k in 0..num_objects {
        let list = obs_of[s.objects[k] as usize];
        for flat in s.cand_start[k] as usize..s.cand_start[k + 1] as usize {
            let slot = s.slot_of[s.cand_arena[flat] as usize] as usize;
            let cur = s.slot_fill[slot] as usize;
            for (off, o) in list.iter().enumerate() {
                s.epochs_arena[cur + off] = o.epoch;
            }
            s.slot_fill[slot] += list.len() as u32;
        }
    }
    s.epochs_len.clear();
    // Epoch span of the run, for the bitset dedup (the arena holds every
    // observed epoch, so min/max bound every slot's segment).
    let dedup_base = if config.vector_kernels {
        let base = s.epochs_arena.iter().copied().min().unwrap_or(Epoch(0));
        let max = s.epochs_arena.iter().copied().max().unwrap_or(base);
        let span = max.since(base) as usize + 1;
        // Epoch spans are bounded by the retained history; fall back to the
        // plain sort if a pathological store says otherwise.
        if span <= (1 << 24) {
            s.seen.clear();
            s.seen.resize(span.div_ceil(64), 0);
            Some(base)
        } else {
            None
        }
    } else {
        None
    };
    for slot in 0..num_rel {
        let start = s.epochs_start[slot] as usize;
        let end = if slot + 1 < num_rel {
            s.epochs_start[slot + 1] as usize
        } else {
            s.epochs_arena.len()
        };
        let len = match dedup_base {
            Some(base) => sort_dedup_bitmap(
                &mut s.epochs_arena[start..end],
                base,
                &mut s.seen,
                &mut s.uniq,
            ),
            None => sort_dedup(&mut s.epochs_arena[start..end]),
        };
        s.epochs_len.push(len as u32);
    }

    // ---- Re-intern the previous run's cache --------------------------
    // Containers or members that left the universe can never match or be
    // requested this run, so variants naming them are dropped — exactly
    // what the reference's `TagId` comparisons would conclude.
    let mut prev_slots: Vec<Vec<PrevVariant>> = Vec::with_capacity(num_rel);
    prev_slots.resize_with(num_rel, Vec::new);
    for (tag, variants) in prev_cache {
        let Ok(ci) = s.tags.binary_search(&tag) else {
            continue;
        };
        let slot = s.slot_of[ci];
        if slot == NONE_IDX {
            continue;
        }
        let converted = &mut prev_slots[slot as usize];
        'variant: for v in variants {
            let mut members = Vec::with_capacity(v.members.len());
            for m in &v.members {
                match s.tags.binary_search(m) {
                    Ok(mi) => members.push(mi as u32),
                    Err(_) => continue 'variant,
                }
            }
            let evidence = v
                .evidence
                .into_iter()
                .filter_map(|(o, series)| {
                    s.tags
                        .binary_search(&o)
                        .ok()
                        .map(|oi| (oi as u32, Some(series)))
                })
                .collect();
            converted.push(PrevVariant {
                members,
                epochs: v.epochs,
                qrows: v.qrows,
                evidence,
            });
        }
    }

    // ---- EM loop ------------------------------------------------------
    s.weights.clear();
    s.weights.resize(s.cand_arena.len(), 0.0);
    let mut current: Vec<Option<DVariant>> = Vec::with_capacity(num_rel);
    current.resize_with(num_rel, || None);
    let mut retired: Vec<Vec<DVariant>> = Vec::with_capacity(num_rel);
    retired.resize_with(num_rel, Vec::new);
    let mut member_rows: Vec<&[f64]> = Vec::new();
    // Lanes of the transposed M-step walk, reused across objects.
    let mut walkers: Vec<MWalker> = Vec::new();
    let mut iterations = 0;
    for iter in 0..config.max_iterations.max(1) {
        iterations = iter + 1;

        // Members per container from the current assignment.
        count_members(
            &s.assign,
            &s.objects,
            &s.slot_of,
            &mut s.slot_fill,
            &mut s.member_start,
            &mut s.member_arena,
            num_rel,
        );

        // E-step (Eq. 4) over every relevant container.
        for slot in 0..num_rel {
            let ci = s.rel[slot];
            let members =
                &s.member_arena[s.member_start[slot] as usize..s.member_start[slot + 1] as usize];
            if let Some(variant) = &current[slot] {
                if config.memoization && variant.members == members {
                    continue;
                }
            }
            if let Some(old) = current[slot].take() {
                retired[slot].push(old);
            }
            // Cross-run reuse: match the previous run's variant with the
            // same member set (consumed on match, like the reference).
            let matched = prev_slots[slot]
                .iter()
                .position(|v| v.members == members)
                .map(|i| prev_slots[slot].swap_remove(i));
            let (prev_epochs, prev_qrows, prev_evidence) = match matched {
                Some(v) => (v.epochs, v.qrows, v.evidence),
                None => (Vec::new(), Vec::new(), Vec::new()),
            };
            // Dirty union over the container and its members, clamped to
            // the cached horizon.
            s.invalid.clear();
            if let Some(d) = dirty {
                if !prev_epochs.is_empty() {
                    let union = d.union_for_until(
                        std::iter::once(s.tags[ci as usize])
                            .chain(members.iter().map(|&m| s.tags[m as usize])),
                        prev_epochs.last().copied(),
                    );
                    s.invalid.extend(union);
                }
            }
            let needed_range =
                s.epochs_start[slot] as usize..(s.epochs_start[slot] + s.epochs_len[slot]) as usize;
            let needed = &s.epochs_arena[needed_range];
            // Whole-variant fast path, same condition as the reference.
            let fully_reused = !prev_epochs.is_empty()
                && prev_epochs.as_slice() == needed
                && s.invalid
                    .iter()
                    .all(|t| prev_epochs.binary_search(t).is_err());
            if fully_reused {
                stats.posteriors_reused += prev_epochs.len();
                let reused = prev_epochs.clone();
                current[slot] = Some(DVariant {
                    members: members.to_vec(),
                    updated_iter: iter,
                    epochs: prev_epochs,
                    qrows: prev_qrows,
                    reused,
                    fully_reused: true,
                    prev_evidence,
                    evidence: Vec::new(),
                });
                continue;
            }
            // Per-epoch path: walk the sorted needed epochs in lockstep
            // with the previous variant, the invalid set and every
            // involved tag's observation list (one cursor each — no
            // binary search per epoch).
            let mut epochs_vec: Vec<Epoch> = Vec::with_capacity(needed.len());
            let mut qrows: Vec<f64> = Vec::with_capacity(needed.len() * nl);
            let mut reused_vec: Vec<Epoch> = Vec::new();
            let mut prev_cur = 0usize;
            let mut invalid_cur = 0usize;
            let own = obs_of[ci as usize];
            let own_sets = &s.set_ids
                [s.set_start[ci as usize] as usize..s.set_start[ci as usize + 1] as usize];
            let mut own_cur = 0usize;
            s.cursors.clear();
            s.cursors.resize(members.len(), 0);
            for &t in needed {
                while prev_cur < prev_epochs.len() && prev_epochs[prev_cur] < t {
                    prev_cur += 1;
                }
                while invalid_cur < s.invalid.len() && s.invalid[invalid_cur] < t {
                    invalid_cur += 1;
                }
                let hit =
                    s.invalid.get(invalid_cur) != Some(&t) && prev_epochs.get(prev_cur) == Some(&t);
                if hit {
                    // The cached row's bits move into the new arena verbatim.
                    stats.posteriors_reused += 1;
                    reused_vec.push(t);
                    qrows.extend_from_slice(&prev_qrows[prev_cur * nl..(prev_cur + 1) * nl]);
                } else {
                    stats.posteriors_computed += 1;
                    while own_cur < own.len() && own[own_cur].epoch < t {
                        own_cur += 1;
                    }
                    let base_row = if own_cur < own.len() && own[own_cur].epoch == t {
                        s.table.row(own_sets[own_cur])
                    } else {
                        model.all_miss_row()
                    };
                    member_rows.clear();
                    for (mi, &m) in members.iter().enumerate() {
                        let list = obs_of[m as usize];
                        let mut cur = s.cursors[mi] as usize;
                        while cur < list.len() && list[cur].epoch < t {
                            cur += 1;
                        }
                        s.cursors[mi] = cur as u32;
                        member_rows.push(if cur < list.len() && list[cur].epoch == t {
                            s.table
                                .row(s.set_ids[s.set_start[m as usize] as usize + cur])
                        } else {
                            model.all_miss_row()
                        });
                    }
                    // The posterior normalizes directly onto the arena tail —
                    // no per-posterior allocation.
                    if config.vector_kernels {
                        container_posterior_row_into_vector(
                            base_row,
                            member_rows.iter().copied(),
                            &mut qrows,
                        );
                    } else {
                        container_posterior_row_into(
                            base_row,
                            member_rows.iter().copied(),
                            &mut qrows,
                        );
                    }
                }
                epochs_vec.push(t);
            }
            current[slot] = Some(DVariant {
                members: members.to_vec(),
                updated_iter: iter,
                epochs: epochs_vec,
                qrows,
                reused: reused_vec,
                fully_reused: false,
                prev_evidence,
                evidence: Vec::new(),
            });
        }

        // M-step (Eq. 5): weight rows and the new assignment.
        for k in 0..num_objects {
            let oi = s.objects[k];
            let range = s.cand_start[k] as usize..s.cand_start[k + 1] as usize;
            if range.is_empty() {
                s.new_assign[k] = NONE_IDX;
                continue;
            }
            // Stable-object fast path: every candidate variant untouched
            // this iteration ⇒ last iteration's weight row is
            // bit-identical; re-derive only the argmax, in ascending
            // container order.
            if incremental && iter > 0 {
                let untouched = s.cand_arena[range.clone()].iter().all(|&ci| {
                    current[s.slot_of[ci as usize] as usize]
                        .as_ref()
                        .is_none_or(|v| v.updated_iter < iter)
                });
                if untouched {
                    s.new_assign[k] = if config.vector_kernels {
                        argmax_weight_vector(
                            &s.cand_sorted,
                            &s.cand_arena,
                            &s.weights,
                            range,
                            &mut s.argmax_buf,
                        )
                    } else {
                        argmax_weight(s, range)
                    };
                    continue;
                }
            }
            let o_dirty = dirty.and_then(|d| d.epochs_of(s.tags[oi as usize]));
            let o_obs = obs_of[oi as usize];
            let o_sets = &s.set_ids
                [s.set_start[oi as usize] as usize..s.set_start[oi as usize + 1] as usize];
            if config.vector_kernels {
                // Lane-parallel M-step (the transposed walk): classify every
                // candidate once, then drive all candidates that need the
                // per-epoch walk through ONE pass over the object's
                // observations — one lane per candidate accumulator. Each
                // lane keeps the scalar walk's exact sequence of reuse
                // decisions, dot products and additions (prior first, then
                // epoch order), and no value flows between lanes, so every
                // weight is bit-identical; only the interleaving across
                // candidates changes. The shared work — the o_obs cursor,
                // the dirty test and the object's loglik row — is paid once
                // per epoch instead of once per (candidate, epoch).
                let o_clean = o_dirty.is_none_or(|d| d.is_empty());
                debug_assert!(walkers.is_empty());
                for flat in range.clone() {
                    let ci = s.cand_arena[flat];
                    let slot = s.slot_of[ci as usize] as usize;
                    let mut w = s.prior_w[flat];
                    if let Some(variant) = current[slot].as_mut() {
                        if let Some(series) = find_series(&variant.evidence, oi) {
                            // Same variant as an earlier iteration: identical
                            // inputs, identical series and summation order.
                            stats.evidence_reused += series.len();
                            for &(_, e) in series {
                                w += e;
                            }
                        } else {
                            // Whole-series fast path: the variant's
                            // posteriors all came from the cache and the
                            // object is clean.
                            let moved = (incremental && variant.fully_reused && o_clean)
                                .then(|| take_prev_series(&mut variant.prev_evidence, oi))
                                .flatten();
                            if let Some(series) = moved {
                                stats.evidence_reused += series.len();
                                for &(_, e) in &series {
                                    w += e;
                                }
                                debug_assert!(
                                    variant.evidence.last().is_none_or(|e| e.0 < oi),
                                    "evidence pushed out of object order"
                                );
                                variant.evidence.push((oi, series));
                            } else {
                                walkers.push(MWalker {
                                    flat: flat as u32,
                                    slot: slot as u32,
                                    w,
                                    series: if incremental {
                                        Vec::with_capacity(o_obs.len())
                                    } else {
                                        Vec::new()
                                    },
                                    q_cur: 0,
                                    r_cur: 0,
                                    prev_pos: 0,
                                    done: false,
                                });
                                continue;
                            }
                        }
                    }
                    s.weights[flat] = w;
                }
                if !walkers.is_empty() {
                    // Bind each lane's inputs once — the posterior series,
                    // the reuse epochs and the previous run's series are
                    // shared borrows of `current`, so the walk reads flat
                    // slices instead of chasing through the variant on
                    // every epoch. (Distinct candidates name distinct
                    // slots; the variants themselves are only mutated
                    // after the walk, when the lanes are drained.)
                    let lane_refs: Vec<MLaneRefs<'_>> = walkers
                        .iter()
                        .map(|wk| {
                            let v = current[wk.slot as usize].as_ref().expect("walker variant");
                            (
                                v.epochs.as_slice(),
                                v.qrows.as_slice(),
                                v.reused.as_slice(),
                                prev_series(&v.prev_evidence, oi),
                            )
                        })
                        .collect();
                    let mut rows: Vec<&[f64]> = Vec::with_capacity(walkers.len());
                    let mut dirty_iter = o_dirty.map(|d| d.iter().peekable());
                    for (pos, obs_at) in o_obs.iter().enumerate() {
                        let t = obs_at.epoch;
                        // The dirty test depends only on (object, epoch):
                        // hoisted out of the per-candidate walks. Same
                        // monotone cursor, same boolean per epoch.
                        let o_dirty_here = dirty_iter.as_mut().is_some_and(|it| {
                            while it.peek().is_some_and(|dt| **dt < t) {
                                it.next();
                            }
                            it.peek().is_some_and(|dt| **dt == t)
                        });
                        s.active.clear();
                        rows.clear();
                        let mut all_done = true;
                        for (l, (wk, refs)) in walkers.iter_mut().zip(&lane_refs).enumerate() {
                            if wk.done {
                                continue;
                            }
                            let (epochs, qrows, reused, prev) = *refs;
                            while wk.q_cur < epochs.len() && epochs[wk.q_cur] < t {
                                wk.q_cur += 1;
                            }
                            if wk.q_cur >= epochs.len() {
                                wk.done = true;
                                continue;
                            }
                            all_done = false;
                            if epochs[wk.q_cur] != t {
                                continue;
                            }
                            while wk.r_cur < reused.len() && reused[wk.r_cur] < t {
                                wk.r_cur += 1;
                            }
                            if reused.get(wk.r_cur) == Some(&t) && !o_dirty_here {
                                if let Some(series) = prev {
                                    while wk.prev_pos < series.len() && series[wk.prev_pos].0 < t {
                                        wk.prev_pos += 1;
                                    }
                                    if let Some(&(pt, e)) = series.get(wk.prev_pos) {
                                        if pt == t {
                                            stats.evidence_reused += 1;
                                            wk.series.push((t, e));
                                            wk.w += e;
                                            continue;
                                        }
                                    }
                                }
                            }
                            stats.evidence_computed += 1;
                            s.active.push(l as u32);
                            rows.push(&qrows[wk.q_cur * nl..(wk.q_cur + 1) * nl]);
                        }
                        if all_done {
                            break;
                        }
                        if s.active.is_empty() {
                            continue;
                        }
                        // Point-evidence dots of every active lane against
                        // the object's loglik row at this epoch — the row is
                        // loaded once and shared across the lanes.
                        let row = s.table.row(o_sets[pos]);
                        for (chunk, qch) in s
                            .active
                            .chunks(kernels::LANES)
                            .zip(rows.chunks(kernels::LANES))
                        {
                            let mut vals = [0.0f64; kernels::LANES];
                            if config.fast_math {
                                for (v, q) in vals.iter_mut().zip(qch) {
                                    *v = kernels::dot_fast(q, row);
                                }
                            } else {
                                kernels::dot_many_shared(qch, row, &mut vals[..qch.len()]);
                            }
                            for (j, &l) in chunk.iter().enumerate() {
                                let wk = &mut walkers[l as usize];
                                let e = vals[j];
                                if incremental {
                                    wk.series.push((t, e));
                                }
                                wk.w += e;
                            }
                        }
                    }
                    for wk in walkers.drain(..) {
                        if incremental {
                            let v = current[wk.slot as usize].as_mut().expect("walker variant");
                            debug_assert!(
                                v.evidence.last().is_none_or(|e| e.0 < oi),
                                "evidence pushed out of object order"
                            );
                            v.evidence.push((oi, wk.series));
                        }
                        s.weights[wk.flat as usize] = wk.w;
                    }
                }
            } else {
                for flat in range.clone() {
                    let ci = s.cand_arena[flat];
                    let mut w = s.prior_w[flat];
                    if let Some(variant) = current[s.slot_of[ci as usize] as usize].as_mut() {
                        if let Some(series) = find_series(&variant.evidence, oi) {
                            // Same variant as an earlier iteration: identical
                            // inputs, identical series and summation order.
                            stats.evidence_reused += series.len();
                            for &(_, e) in series {
                                w += e;
                            }
                        } else if incremental {
                            // Whole-series fast path: the variant's posteriors
                            // all came from the cache and the object is clean.
                            let o_clean = o_dirty.is_none_or(|d| d.is_empty());
                            let moved = (variant.fully_reused && o_clean)
                                .then(|| take_prev_series(&mut variant.prev_evidence, oi))
                                .flatten();
                            if let Some(series) = moved {
                                stats.evidence_reused += series.len();
                                for &(_, e) in &series {
                                    w += e;
                                }
                                debug_assert!(
                                    variant.evidence.last().is_none_or(|e| e.0 < oi),
                                    "evidence pushed out of object order"
                                );
                                variant.evidence.push((oi, series));
                            } else {
                                // Per-epoch path: lockstep walk over the
                                // object's observations, the variant's sorted
                                // posterior series, its reuse set, the dirty
                                // set and the previous series.
                                let mut prev =
                                    PrevSeries::new(prev_series(&variant.prev_evidence, oi));
                                let mut series = Vec::with_capacity(o_obs.len());
                                let mut q_cur = 0usize;
                                let mut r_cur = 0usize;
                                let mut dirty_iter = o_dirty.map(|d| d.iter().peekable());
                                for (pos, obs_at) in o_obs.iter().enumerate() {
                                    let t = obs_at.epoch;
                                    while q_cur < variant.epochs.len() && variant.epochs[q_cur] < t
                                    {
                                        q_cur += 1;
                                    }
                                    let Some(&qt) = variant.epochs.get(q_cur) else {
                                        break;
                                    };
                                    if qt != t {
                                        continue;
                                    }
                                    while r_cur < variant.reused.len() && variant.reused[r_cur] < t
                                    {
                                        r_cur += 1;
                                    }
                                    let posterior_reused = variant.reused.get(r_cur) == Some(&t);
                                    let o_dirty_here = dirty_iter.as_mut().is_some_and(|it| {
                                        while it.peek().is_some_and(|dt| **dt < t) {
                                            it.next();
                                        }
                                        it.peek().is_some_and(|dt| **dt == t)
                                    });
                                    let reusable = posterior_reused && !o_dirty_here;
                                    let e = match reusable.then(|| prev.lookup(t)).flatten() {
                                        Some(e) => {
                                            stats.evidence_reused += 1;
                                            e
                                        }
                                        None => {
                                            stats.evidence_computed += 1;
                                            expect_row_of(
                                                &variant.qrows[q_cur * nl..(q_cur + 1) * nl],
                                                s.table.row(o_sets[pos]),
                                            )
                                        }
                                    };
                                    series.push((t, e));
                                    w += e;
                                }
                                debug_assert!(
                                    variant.evidence.last().is_none_or(|e| e.0 < oi),
                                    "evidence pushed out of object order"
                                );
                                variant.evidence.push((oi, series));
                            }
                        } else {
                            // Full recompute: lockstep walk, memoized rows.
                            let mut q_cur = 0usize;
                            for (pos, obs_at) in o_obs.iter().enumerate() {
                                let t = obs_at.epoch;
                                while q_cur < variant.epochs.len() && variant.epochs[q_cur] < t {
                                    q_cur += 1;
                                }
                                if let Some(&qt) = variant.epochs.get(q_cur) {
                                    if qt == t {
                                        stats.evidence_computed += 1;
                                        w += expect_row_of(
                                            &variant.qrows[q_cur * nl..(q_cur + 1) * nl],
                                            s.table.row(o_sets[pos]),
                                        );
                                    }
                                }
                            }
                        }
                    }
                    s.weights[flat] = w;
                }
            }
            s.new_assign[k] = if config.vector_kernels {
                argmax_weight_vector(
                    &s.cand_sorted,
                    &s.cand_arena,
                    &s.weights,
                    range,
                    &mut s.argmax_buf,
                )
            } else {
                argmax_weight(s, range)
            };
        }

        let converged = s.new_assign == s.assign;
        s.assign.copy_from_slice(&s.new_assign);
        if converged {
            break;
        }
    }

    // ---- Run boundary: convert back to TagId-keyed results -----------
    let outcome = build_outcome(
        rf,
        s,
        &obs_of,
        &current,
        iterations,
        incremental,
        &mut stats,
    );

    // Refill the cache: the final variant of every container first, then
    // recently retired ones (most recent first), deduplicated by member
    // set and capped — the reference's policy, converted at the boundary.
    if let Some((cache, _)) = incr {
        let mut current = current;
        let mut containers = BTreeMap::new();
        for slot in 0..num_rel {
            let Some(variant) = current[slot].take() else {
                continue;
            };
            let mut chosen: Vec<DVariant> = vec![variant];
            for candidate in retired[slot].drain(..).rev() {
                if chosen.len() >= MAX_CACHED_VARIANTS {
                    break;
                }
                if chosen.iter().all(|v| v.members != candidate.members) {
                    chosen.push(candidate);
                }
            }
            let variants: Vec<CachedVariant> = chosen
                .into_iter()
                .map(|v| CachedVariant {
                    members: v.members.iter().map(|&m| s.tags[m as usize]).collect(),
                    epochs: v.epochs,
                    qrows: v.qrows,
                    evidence: v
                        .evidence
                        .into_iter()
                        .map(|(o, series)| (s.tags[o as usize], series))
                        .collect(),
                })
                .collect();
            containers.insert(s.tags[s.rel[slot] as usize], variants);
        }
        cache.containers = containers;
    }
    (outcome, stats)
}

/// Convert the dense EM state into the public `TagId`-keyed
/// [`InferenceOutcome`] — the only place interned indices are translated
/// back.
#[allow(clippy::too_many_arguments)]
fn build_outcome(
    rf: &RfInfer<'_>,
    s: &mut DenseScratch,
    obs_of: &[&[ObsAt]],
    current: &[Option<DVariant>],
    iterations: usize,
    incremental: bool,
    stats: &mut InferenceStats,
) -> InferenceOutcome {
    let model = rf.model;
    let nl = model.num_locations();
    let num_objects = s.objects.len();
    let num_rel = s.rel.len();

    // Point evidence per (object, candidate) from the final posteriors; in
    // incremental mode the final M-step iteration already stored every
    // series, so the builder clones instead of re-deriving.
    let mut objects_map: BTreeMap<TagId, ObjectEvidence> = BTreeMap::new();
    for k in 0..num_objects {
        let oi = s.objects[k];
        let range = s.cand_start[k] as usize..s.cand_start[k + 1] as usize;
        let o_obs = obs_of[oi as usize];
        let o_sets =
            &s.set_ids[s.set_start[oi as usize] as usize..s.set_start[oi as usize + 1] as usize];
        let mut point_evidence: BTreeMap<TagId, Vec<(Epoch, f64)>> = BTreeMap::new();
        let mut weights: BTreeMap<TagId, f64> = BTreeMap::new();
        // One points list per candidate, indexed by offset within `range`.
        let mut flat_points: Vec<Vec<(Epoch, f64)>> = Vec::new();
        flat_points.resize_with(range.len(), Vec::new);
        // Lanes of the transposed recompute walk (vector path): one per
        // candidate whose series must be re-derived from the final
        // posteriors.
        struct BLane<'v> {
            off: usize,
            q_cur: usize,
            v: &'v DVariant,
        }
        let mut lanes: Vec<BLane<'_>> = Vec::new();
        for (off, flat) in range.clone().enumerate() {
            let ci = s.cand_arena[flat];
            if let Some(variant) = current[s.slot_of[ci as usize] as usize].as_ref() {
                match find_series(&variant.evidence, oi) {
                    Some(series) if incremental => {
                        stats.evidence_reused += series.len();
                        flat_points[off] = series.clone();
                    }
                    _ if rf.config.vector_kernels => lanes.push(BLane {
                        off,
                        q_cur: 0,
                        v: variant,
                    }),
                    _ => {
                        let mut q_cur = 0usize;
                        for (pos, obs_at) in o_obs.iter().enumerate() {
                            let t = obs_at.epoch;
                            while q_cur < variant.epochs.len() && variant.epochs[q_cur] < t {
                                q_cur += 1;
                            }
                            if let Some(&qt) = variant.epochs.get(q_cur) {
                                if qt == t {
                                    stats.evidence_computed += 1;
                                    flat_points[off].push((
                                        t,
                                        expect_row_of(
                                            &variant.qrows[q_cur * nl..(q_cur + 1) * nl],
                                            s.table.row(o_sets[pos]),
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        if !lanes.is_empty() {
            // Same transposed walk as the M-step: one pass over the
            // object's observations drives every lane, the loglik row is
            // loaded once per epoch and shared, and each lane's points
            // accumulate in epoch order — the scalar walk's exact values
            // in the scalar walk's exact order.
            for (pos, obs_at) in o_obs.iter().enumerate() {
                let t = obs_at.epoch;
                s.active.clear();
                let mut all_done = true;
                for (l, lane) in lanes.iter_mut().enumerate() {
                    let epochs = &lane.v.epochs;
                    while lane.q_cur < epochs.len() && epochs[lane.q_cur] < t {
                        lane.q_cur += 1;
                    }
                    if lane.q_cur >= epochs.len() {
                        continue;
                    }
                    all_done = false;
                    if epochs[lane.q_cur] == t {
                        stats.evidence_computed += 1;
                        s.active.push(l as u32);
                    }
                }
                if all_done {
                    break;
                }
                if s.active.is_empty() {
                    continue;
                }
                let row = s.table.row(o_sets[pos]);
                for chunk in s.active.chunks(kernels::LANES) {
                    let mut qs: [&[f64]; kernels::LANES] = [&[]; kernels::LANES];
                    for (j, &l) in chunk.iter().enumerate() {
                        let lane = &lanes[l as usize];
                        qs[j] = &lane.v.qrows[lane.q_cur * nl..(lane.q_cur + 1) * nl];
                    }
                    let mut vals = [0.0f64; kernels::LANES];
                    if rf.config.fast_math {
                        for j in 0..chunk.len() {
                            vals[j] = kernels::dot_fast(qs[j], row);
                        }
                    } else {
                        kernels::dot_many_shared(&qs[..chunk.len()], row, &mut vals[..chunk.len()]);
                    }
                    for (j, &l) in chunk.iter().enumerate() {
                        flat_points[lanes[l as usize].off].push((t, vals[j]));
                    }
                }
            }
        }
        for (off, flat) in range.clone().enumerate() {
            let ci = s.cand_arena[flat];
            point_evidence.insert(s.tags[ci as usize], std::mem::take(&mut flat_points[off]));
            weights.insert(s.tags[ci as usize], s.weights[flat]);
        }
        let assigned = (s.assign[k] != NONE_IDX).then(|| s.tags[s.assign[k] as usize]);
        objects_map.insert(
            s.tags[oi as usize],
            ObjectEvidence {
                candidates: s.cand_arena[range]
                    .iter()
                    .map(|&ci| s.tags[ci as usize])
                    .collect(),
                weights,
                point_evidence,
                assigned,
            },
        );
    }

    // Location estimates: containers from their posteriors at informative
    // epochs only. Members come from the *final* assignment (it may have
    // moved after the last E-step), recounted into the member arena.
    count_members(
        &s.assign,
        &s.objects,
        &s.slot_of,
        &mut s.slot_fill,
        &mut s.member_start,
        &mut s.member_arena,
        num_rel,
    );

    let mut tag_locations: BTreeMap<TagId, Vec<(Epoch, LocationId)>> = BTreeMap::new();
    for (slot, current_slot) in current.iter().enumerate() {
        let Some(variant) = current_slot.as_ref() else {
            continue;
        };
        let ci = s.rel[slot];
        let own = obs_of[ci as usize];
        let members =
            &s.member_arena[s.member_start[slot] as usize..s.member_start[slot + 1] as usize];
        let mut own_cur = 0usize;
        s.cursors.clear();
        s.cursors.resize(members.len(), 0);
        let mut locs: Vec<(Epoch, LocationId)> = Vec::new();
        for (&t, q) in variant.epochs.iter().zip(variant.qrows.chunks_exact(nl)) {
            while own_cur < own.len() && own[own_cur].epoch < t {
                own_cur += 1;
            }
            let mut informative = own_cur < own.len() && own[own_cur].epoch == t;
            for (mi, &m) in members.iter().enumerate() {
                let list = obs_of[m as usize];
                let mut cur = s.cursors[mi] as usize;
                while cur < list.len() && list[cur].epoch < t {
                    cur += 1;
                }
                s.cursors[mi] = cur as u32;
                if !informative && cur < list.len() && list[cur].epoch == t {
                    informative = true;
                }
            }
            if informative {
                // The later-ties-win scan of `Posterior::map_location`, over
                // the arena row directly.
                locs.push((t, Posterior::map_location_of_row(q)));
            }
        }
        if !locs.is_empty() {
            tag_locations.insert(s.tags[ci as usize], locs);
        }
    }
    // Objects with no assigned container fall back to their own readings
    // (the memoized row *is* the log-weight vector of that posterior).
    for k in 0..num_objects {
        if s.assign[k] != NONE_IDX {
            continue;
        }
        let oi = s.objects[k];
        let o_obs = obs_of[oi as usize];
        let o_sets =
            &s.set_ids[s.set_start[oi as usize] as usize..s.set_start[oi as usize + 1] as usize];
        let locs: Vec<(Epoch, LocationId)> = o_obs
            .iter()
            .enumerate()
            .map(|(pos, obs_at)| {
                let loc = if rf.config.vector_kernels {
                    // Normalize into the reusable scratch row instead of
                    // allocating a posterior per epoch; same kernel, same
                    // later-ties-win MAP scan, identical location.
                    s.row_scratch.clear();
                    s.row_scratch.extend_from_slice(s.table.row(o_sets[pos]));
                    kernels::exp_normalize(&mut s.row_scratch);
                    Posterior::map_location_of_row(&s.row_scratch)
                } else {
                    Posterior::from_log_weights(s.table.row(o_sets[pos]).to_vec()).map_location()
                };
                (obs_at.epoch, loc)
            })
            .collect();
        if !locs.is_empty() {
            tag_locations.insert(s.tags[oi as usize], locs);
        }
    }

    let mut containment = ContainmentMap::new();
    for k in 0..num_objects {
        if s.assign[k] != NONE_IDX {
            containment.set(s.tags[s.objects[k] as usize], s.tags[s.assign[k] as usize]);
        }
    }

    InferenceOutcome {
        containment,
        objects: objects_map,
        tag_locations,
        iterations,
        num_locations: model.num_locations(),
    }
}
