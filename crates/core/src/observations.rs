//! Sparse index over raw RFID readings.
//!
//! RFINFER never needs the dense binary matrices `x` and `y` of the paper's
//! notation — almost all entries are zero. What it needs, per tag, is the
//! list of epochs at which the tag was read and by which readers, plus a fast
//! way to find which containers were co-located with an object (same epoch,
//! same reader), which drives candidate pruning (Appendix A.3).

use rfid_types::{Epoch, LocationId, RawReading, ReadingBatch, TagId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The readers that detected one tag during one epoch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsAt {
    /// The epoch of the observation.
    pub epoch: Epoch,
    /// Sorted, de-duplicated list of reader locations that detected the tag.
    pub readers: Vec<LocationId>,
}

/// Sparse per-tag observation index built from raw readings.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observations {
    per_tag: BTreeMap<TagId, Vec<ObsAt>>,
}

impl Observations {
    /// Create an empty index.
    pub fn new() -> Observations {
        Observations::default()
    }

    /// Build an index from a batch of raw readings.
    pub fn from_batch(batch: &ReadingBatch) -> Observations {
        let mut obs = Observations::new();
        for r in batch.readings_unordered() {
            obs.insert(*r);
        }
        obs
    }

    /// Insert a single reading. Returns whether the index changed (a reading
    /// already present is a no-op) — the signal incremental inference uses to
    /// journal dirty `(tag, epoch)` pairs.
    pub fn insert(&mut self, reading: RawReading) -> bool {
        let entry = self.per_tag.entry(reading.tag).or_default();
        let loc = reading.reader.location();
        // Readings arrive roughly in time order: the affected epoch is almost
        // always the last entry (or a brand-new one past it). Check that slot
        // first; anything older is found by binary search — the list is
        // epoch-sorted, so a miss must never walk it linearly.
        let pos = match entry.last() {
            None => Err(0),
            Some(last) if last.epoch == reading.time => Ok(entry.len() - 1),
            Some(last) if last.epoch < reading.time => Err(entry.len()),
            _ => entry.binary_search_by_key(&reading.time, |o| o.epoch),
        };
        match pos {
            Ok(at) => match entry[at].readers.binary_search(&loc) {
                Ok(_) => false,
                Err(pos) => {
                    entry[at].readers.insert(pos, loc);
                    true
                }
            },
            Err(at) => {
                entry.insert(
                    at,
                    ObsAt {
                        epoch: reading.time,
                        readers: vec![loc],
                    },
                );
                true
            }
        }
    }

    /// Merge every reading of another index into this one.
    ///
    /// Equivalent to replaying `other` reading by reading through
    /// [`Self::insert`] — the resulting index is identical, so callers that
    /// journal dirtiness can treat every `(tag, epoch)` of `other` as
    /// potentially changed — but runs in `O(n + m)` per tag instead of
    /// `O(m · n)`: a tag absent from this index is adopted wholesale, a
    /// batch of strictly newer epochs (the append-only case of streaming
    /// ingestion) is appended in one `extend`, and interleaved ranges fall
    /// back to a single sorted two-list merge with no per-entry `Vec::insert`
    /// shifting.
    pub fn merge(&mut self, other: &Observations) {
        for (tag, list) in &other.per_tag {
            match self.per_tag.entry(*tag) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(list.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    merge_obs_lists(slot.get_mut(), list);
                }
            }
        }
    }

    /// All tags with at least one observation.
    pub fn tags(&self) -> impl Iterator<Item = TagId> + '_ {
        self.per_tag.keys().copied()
    }

    /// All observed object (item) tags.
    pub fn objects(&self) -> Vec<TagId> {
        self.tags().filter(|t| t.is_object()).collect()
    }

    /// All observed container (case/pallet) tags.
    pub fn containers(&self) -> Vec<TagId> {
        self.tags().filter(|t| t.is_container()).collect()
    }

    /// Observations of one tag, in epoch order.
    pub fn obs_for(&self, tag: TagId) -> &[ObsAt] {
        self.per_tag.get(&tag).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All `(tag, observations)` entries in ascending tag order — one walk
    /// over the index instead of one tree lookup per tag. This is how the
    /// dense inference path resolves every per-tag observation slice once,
    /// up front, before entering the EM loops.
    pub fn entries(&self) -> impl Iterator<Item = (TagId, &[ObsAt])> {
        self.per_tag.iter().map(|(t, v)| (*t, v.as_slice()))
    }

    /// Observations of one tag restricted to the inclusive epoch range.
    pub fn obs_between(&self, tag: TagId, from: Epoch, to: Epoch) -> &[ObsAt] {
        let all = self.obs_for(tag);
        let lo = all.partition_point(|o| o.epoch < from);
        let hi = all.partition_point(|o| o.epoch <= to);
        &all[lo..hi]
    }

    /// The readers that detected `tag` at exactly epoch `t`, if any.
    pub fn readers_at(&self, tag: TagId, t: Epoch) -> Option<&[LocationId]> {
        let all = self.obs_for(tag);
        all.binary_search_by_key(&t, |o| o.epoch)
            .ok()
            .map(|idx| all[idx].readers.as_slice())
    }

    /// Number of distinct (tag, epoch) observations.
    pub fn len(&self) -> usize {
        self.per_tag.values().map(|v| v.len()).sum()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.per_tag.is_empty()
    }

    /// The earliest observed epoch.
    pub fn first_epoch(&self) -> Option<Epoch> {
        self.per_tag
            .values()
            .filter_map(|v| v.first().map(|o| o.epoch))
            .min()
    }

    /// The latest observed epoch.
    pub fn last_epoch(&self) -> Option<Epoch> {
        self.per_tag
            .values()
            .filter_map(|v| v.last().map(|o| o.epoch))
            .max()
    }

    /// Count, for each container, the number of epochs at which it was read
    /// by the *same reader in the same epoch* as `object` — the co-location
    /// signal that seeds containment inference and candidate pruning. The
    /// result is sorted by tag, ascending, and omits zero counts.
    pub fn colocation_counts(&self, object: TagId) -> Vec<(TagId, usize)> {
        let mut counts = Vec::new();
        self.colocation_counts_into(object, &mut counts);
        counts
    }

    /// [`Self::colocation_counts`] into a reusable buffer: `counts` is
    /// cleared and refilled, so a caller ranking candidates for thousands of
    /// objects per inference run pays for one allocation, not one tree
    /// rebuild per object.
    pub fn colocation_counts_into(&self, object: TagId, counts: &mut Vec<(TagId, usize)>) {
        counts.clear();
        let object_obs = self.obs_for(object);
        if object_obs.is_empty() {
            return;
        }
        // `per_tag` iterates in ascending tag order, so pushing keeps
        // `counts` sorted by tag with no post-pass.
        for (tag, obs_list) in &self.per_tag {
            if !tag.is_container() || *tag == object {
                continue;
            }
            let count = colocated_epochs(object_obs, obs_list);
            if count > 0 {
                counts.push((*tag, count));
            }
        }
    }

    /// Dense variant of [`Self::colocation_counts_into`]: count, for each
    /// pre-resolved container column `(index, observations)`, the epochs at
    /// which it shared a reader with `object_obs`. Pushes `(index, count)`
    /// pairs in column order, omitting zeros — when the columns are supplied
    /// in ascending tag order (the interner's order), the result matches
    /// [`Self::colocation_counts`] with tags replaced by their dense indices,
    /// and no per-object tree iteration remains.
    pub fn colocation_counts_dense(
        object_obs: &[ObsAt],
        containers: &[(u32, &[ObsAt])],
        counts: &mut Vec<(u32, usize)>,
    ) {
        counts.clear();
        if object_obs.is_empty() {
            return;
        }
        for &(index, obs_list) in containers {
            let count = colocated_epochs(object_obs, obs_list);
            if count > 0 {
                counts.push((index, count));
            }
        }
    }

    /// Dense variant of [`Self::candidate_containers_with`]: rank the
    /// container columns by co-location count (most frequent first, ties by
    /// ascending index) and **append** the top `limit` indices to `out` —
    /// unlike `scratch`, `out` is deliberately *not* cleared, because the
    /// caller is building one flat candidate arena across many objects.
    /// With columns in ascending tag order this selects exactly the
    /// candidates of [`Self::candidate_containers`], as dense indices.
    pub fn candidate_indices_dense(
        object_obs: &[ObsAt],
        containers: &[(u32, &[ObsAt])],
        limit: usize,
        scratch: &mut Vec<(u32, usize)>,
        out: &mut Vec<u32>,
    ) {
        Self::colocation_counts_dense(object_obs, containers, scratch);
        scratch.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.extend(scratch.iter().take(limit).map(|&(c, _)| c));
    }

    /// The `limit` containers most frequently co-located with `object`
    /// (candidate pruning, Appendix A.3), most frequent first.
    pub fn candidate_containers(&self, object: TagId, limit: usize) -> Vec<TagId> {
        let mut scratch = Vec::new();
        self.candidate_containers_with(object, limit, &mut scratch)
    }

    /// [`Self::candidate_containers`] with a caller-owned scratch buffer for
    /// the intermediate counts, reusable across objects of one inference run.
    pub fn candidate_containers_with(
        &self,
        object: TagId,
        limit: usize,
        scratch: &mut Vec<(TagId, usize)>,
    ) -> Vec<TagId> {
        self.colocation_counts_into(object, scratch);
        scratch.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        scratch.iter().take(limit).map(|&(c, _)| c).collect()
    }

    /// Drop, for the given tag, every observation outside the union of the
    /// provided inclusive epoch ranges. Used by per-object history
    /// truncation. Returns the epochs whose observations were removed, so
    /// incremental inference can invalidate exactly the affected cache
    /// entries.
    pub fn retain_ranges_for(&mut self, tag: TagId, ranges: &[(Epoch, Epoch)]) -> Vec<Epoch> {
        let mut removed = Vec::new();
        if let Some(list) = self.per_tag.get_mut(&tag) {
            list.retain(|o| {
                let keep = ranges
                    .iter()
                    .any(|&(lo, hi)| o.epoch >= lo && o.epoch <= hi);
                if !keep {
                    removed.push(o.epoch);
                }
                keep
            });
            if list.is_empty() {
                self.per_tag.remove(&tag);
            }
        }
        removed
    }

    /// Drop every observation (for all tags) strictly older than `cutoff`.
    pub fn retain_since(&mut self, cutoff: Epoch) {
        self.per_tag.retain(|_, list| {
            list.retain(|o| o.epoch >= cutoff);
            !list.is_empty()
        });
    }

    /// The set of epochs at which any of the given tags was observed.
    pub fn epochs_of(&self, tags: &[TagId]) -> BTreeSet<Epoch> {
        let mut set = BTreeSet::new();
        for tag in tags {
            for o in self.obs_for(*tag) {
                set.insert(o.epoch);
            }
        }
        set
    }
}

/// Number of epochs at which two epoch-sorted observation lists share at
/// least one reader — the co-location count of candidate pruning.
fn colocated_epochs(object_obs: &[ObsAt], obs_list: &[ObsAt]) -> usize {
    let mut count = 0usize;
    let mut i = 0usize;
    let mut j = 0usize;
    while i < object_obs.len() && j < obs_list.len() {
        match object_obs[i].epoch.cmp(&obs_list[j].epoch) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let shared = object_obs[i]
                    .readers
                    .iter()
                    .any(|r| obs_list[j].readers.contains(r));
                if shared {
                    count += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Merge one tag's sorted observation list into another, preserving the
/// per-epoch sorted, de-duplicated reader lists. `dst` and `src` are both in
/// strictly ascending epoch order (the invariant [`Observations::insert`]
/// maintains).
fn merge_obs_lists(dst: &mut Vec<ObsAt>, src: &[ObsAt]) {
    if src.is_empty() {
        return;
    }
    // Append-only fast path: every incoming epoch is newer than everything
    // stored — the common case when batches arrive in time order.
    match dst.last() {
        None => {
            dst.extend(src.iter().cloned());
            return;
        }
        Some(last) if src[0].epoch > last.epoch => {
            dst.extend(src.iter().cloned());
            return;
        }
        _ => {}
    }
    let old = std::mem::take(dst);
    dst.reserve(old.len() + src.len());
    let mut a = old.into_iter().peekable();
    let mut b = src.iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => match x.epoch.cmp(&y.epoch) {
                std::cmp::Ordering::Less => dst.push(a.next().expect("peeked")),
                std::cmp::Ordering::Greater => dst.push(b.next().expect("peeked").clone()),
                std::cmp::Ordering::Equal => {
                    let mut obs = a.next().expect("peeked");
                    merge_sorted_readers(&mut obs.readers, &b.next().expect("peeked").readers);
                    dst.push(obs);
                }
            },
            (Some(_), None) => {
                dst.extend(a);
                return;
            }
            (None, Some(_)) => {
                dst.extend(b.cloned());
                return;
            }
            (None, None) => return,
        }
    }
}

/// Union two sorted, de-duplicated reader lists into the first.
fn merge_sorted_readers(dst: &mut Vec<LocationId>, src: &[LocationId]) {
    if src.is_empty() {
        return;
    }
    // Disjoint-suffix fast path.
    if dst.last().is_none_or(|last| src[0] > *last) {
        dst.extend_from_slice(src);
        return;
    }
    let old = std::mem::take(dst);
    dst.reserve(old.len() + src.len());
    let mut a = old.into_iter().peekable();
    let mut b = src.iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => match x.cmp(y) {
                std::cmp::Ordering::Less => dst.push(a.next().expect("peeked")),
                std::cmp::Ordering::Greater => dst.push(*b.next().expect("peeked")),
                std::cmp::Ordering::Equal => {
                    dst.push(a.next().expect("peeked"));
                    b.next();
                }
            },
            (Some(_), None) => {
                dst.extend(a);
                return;
            }
            (None, Some(_)) => {
                dst.extend(b.copied());
                return;
            }
            (None, None) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_types::ReaderId;

    fn read(t: u32, tag: TagId, reader: u16) -> RawReading {
        RawReading::new(Epoch(t), tag, ReaderId(reader))
    }

    fn sample() -> Observations {
        let batch = ReadingBatch::from_readings(vec![
            read(1, TagId::item(1), 0),
            read(1, TagId::case(1), 0),
            read(2, TagId::item(1), 0),
            read(2, TagId::case(1), 0),
            read(2, TagId::case(2), 1),
            read(3, TagId::item(1), 1),
            read(3, TagId::case(2), 1),
            read(3, TagId::item(1), 2), // two readers in one epoch
        ]);
        Observations::from_batch(&batch)
    }

    #[test]
    fn per_tag_obs_are_ordered_and_merged_per_epoch() {
        let obs = sample();
        let item = obs.obs_for(TagId::item(1));
        assert_eq!(item.len(), 3);
        assert_eq!(item[0].epoch, Epoch(1));
        assert_eq!(item[2].epoch, Epoch(3));
        assert_eq!(item[2].readers, vec![LocationId(1), LocationId(2)]);
        assert_eq!(obs.len(), 3 + 2 + 2);
        assert_eq!(obs.first_epoch(), Some(Epoch(1)));
        assert_eq!(obs.last_epoch(), Some(Epoch(3)));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut obs = sample();
        let before = obs.len();
        assert!(!obs.insert(read(3, TagId::item(1), 1)), "duplicate reading");
        assert_eq!(obs.len(), before);
        assert_eq!(obs.readers_at(TagId::item(1), Epoch(3)).unwrap().len(), 2);
        assert!(obs.insert(read(9, TagId::item(1), 1)), "new epoch");
        assert!(obs.insert(read(9, TagId::item(1), 2)), "new reader");
    }

    /// Out-of-order arrivals (a late reading older than everything stored,
    /// one landing in the middle, duplicates of both) must keep the per-tag
    /// list epoch-sorted with merged reader sets — the binary-search insert
    /// path, which the in-order fast path never exercises.
    #[test]
    fn insert_handles_out_of_order_arrivals() {
        let tag = TagId::item(1);
        let mut obs = Observations::new();
        assert!(obs.insert(read(10, tag, 0)), "first reading of a tag");
        assert!(obs.insert(read(20, tag, 0)), "in-order append");
        assert!(obs.insert(read(2, tag, 1)), "older than everything stored");
        assert!(obs.insert(read(15, tag, 2)), "lands in the middle");
        assert!(obs.insert(read(15, tag, 1)), "new reader at a middle epoch");
        assert!(!obs.insert(read(15, tag, 2)), "duplicate middle reading");
        assert!(!obs.insert(read(2, tag, 1)), "duplicate oldest reading");
        let list = obs.obs_for(tag);
        let epochs: Vec<Epoch> = list.iter().map(|o| o.epoch).collect();
        assert_eq!(epochs, vec![Epoch(2), Epoch(10), Epoch(15), Epoch(20)]);
        assert_eq!(list[2].readers, vec![LocationId(1), LocationId(2)]);
        // A replay in any order produces the same index.
        let mut replay = Observations::new();
        for r in [
            read(15, tag, 1),
            read(2, tag, 1),
            read(20, tag, 0),
            read(15, tag, 2),
            read(10, tag, 0),
        ] {
            assert!(replay.insert(r));
        }
        assert_eq!(replay.obs_for(tag), list);
    }

    #[test]
    fn entries_iterate_in_ascending_tag_order() {
        let obs = sample();
        let entries: Vec<(TagId, usize)> = obs.entries().map(|(t, list)| (t, list.len())).collect();
        assert_eq!(
            entries,
            vec![
                (TagId::item(1), 3),
                (TagId::case(1), 2),
                (TagId::case(2), 2)
            ]
        );
    }

    /// The dense colocation/candidate variants agree with the tag-keyed ones
    /// once tags are replaced by their positions in an ascending container
    /// column list.
    #[test]
    fn dense_colocation_matches_tag_keyed_counts() {
        let obs = sample();
        let containers: Vec<TagId> = obs.containers();
        let columns: Vec<(u32, &[ObsAt])> = containers
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u32, obs.obs_for(c)))
            .collect();
        let mut dense = Vec::new();
        Observations::colocation_counts_dense(obs.obs_for(TagId::item(1)), &columns, &mut dense);
        let keyed = obs.colocation_counts(TagId::item(1));
        let mapped: Vec<(TagId, usize)> = dense
            .iter()
            .map(|&(i, n)| (containers[i as usize], n))
            .collect();
        assert_eq!(mapped, keyed);
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        Observations::candidate_indices_dense(
            obs.obs_for(TagId::item(1)),
            &columns,
            1,
            &mut scratch,
            &mut out,
        );
        let keyed_cands = obs.candidate_containers(TagId::item(1), 1);
        assert_eq!(
            out.iter()
                .map(|&i| containers[i as usize])
                .collect::<Vec<_>>(),
            keyed_cands
        );
        // An unobserved object yields no columns hits.
        Observations::colocation_counts_dense(&[], &columns, &mut dense);
        assert!(dense.is_empty());
    }

    #[test]
    fn obs_between_slices_by_epoch() {
        let obs = sample();
        let item = TagId::item(1);
        assert_eq!(obs.obs_between(item, Epoch(2), Epoch(3)).len(), 2);
        assert_eq!(obs.obs_between(item, Epoch(0), Epoch(0)).len(), 0);
        assert_eq!(obs.obs_between(item, Epoch(1), Epoch(1)).len(), 1);
        assert!(obs.readers_at(item, Epoch(5)).is_none());
    }

    #[test]
    fn objects_and_containers_are_classified() {
        let obs = sample();
        assert_eq!(obs.objects(), vec![TagId::item(1)]);
        assert_eq!(obs.containers(), vec![TagId::case(1), TagId::case(2)]);
    }

    #[test]
    fn colocation_counts_require_same_epoch_and_reader() {
        let obs = sample();
        let counts = obs.colocation_counts(TagId::item(1));
        // case1 co-located with item1 at epochs 1 and 2 (reader 0); case2
        // co-located only at epoch 3 (reader 1) — at epoch 2 they were read
        // by different readers. Sorted by tag, ascending.
        assert_eq!(counts, vec![(TagId::case(1), 2), (TagId::case(2), 1)]);
        let cands = obs.candidate_containers(TagId::item(1), 1);
        assert_eq!(cands, vec![TagId::case(1)]);
        let cands2 = obs.candidate_containers(TagId::item(1), 5);
        assert_eq!(cands2.len(), 2);
        // The reusable-buffer variant agrees and refills the scratch.
        let mut scratch = vec![(TagId::item(9), 99)];
        assert_eq!(
            obs.candidate_containers_with(TagId::item(1), 5, &mut scratch),
            cands2
        );
        assert_eq!(scratch.len(), 2);
        obs.colocation_counts_into(TagId::item(1), &mut scratch);
        assert_eq!(scratch, counts);
        // An unobserved object yields no candidates and an emptied buffer.
        obs.colocation_counts_into(TagId::item(42), &mut scratch);
        assert!(scratch.is_empty());
    }

    #[test]
    fn retain_ranges_for_prunes_one_tag_only() {
        let mut obs = sample();
        let removed = obs.retain_ranges_for(TagId::item(1), &[(Epoch(3), Epoch(3))]);
        assert_eq!(removed, vec![Epoch(1), Epoch(2)]);
        assert_eq!(obs.obs_for(TagId::item(1)).len(), 1);
        assert_eq!(obs.obs_for(TagId::case(1)).len(), 2, "other tags untouched");
        let removed = obs.retain_ranges_for(TagId::item(1), &[(Epoch(9), Epoch(9))]);
        assert_eq!(removed, vec![Epoch(3)]);
        assert!(obs.obs_for(TagId::item(1)).is_empty());
        assert!(!obs.objects().contains(&TagId::item(1)));
        assert!(obs
            .retain_ranges_for(TagId::item(1), &[(Epoch(0), Epoch(9))])
            .is_empty());
    }

    #[test]
    fn retain_since_prunes_globally() {
        let mut obs = sample();
        obs.retain_since(Epoch(3));
        assert_eq!(obs.last_epoch(), Some(Epoch(3)));
        assert_eq!(obs.first_epoch(), Some(Epoch(3)));
        assert!(obs.obs_for(TagId::case(1)).is_empty());
    }

    #[test]
    fn merge_combines_indexes() {
        let mut a = Observations::new();
        a.insert(read(1, TagId::item(1), 0));
        let mut b = Observations::new();
        b.insert(read(2, TagId::item(1), 1));
        b.insert(read(1, TagId::item(1), 0)); // overlap
        a.merge(&b);
        assert_eq!(a.obs_for(TagId::item(1)).len(), 2);
    }

    /// The batch merge (vacant-tag adoption, append-only extension, and the
    /// general interleaved two-list merge) must produce exactly the index
    /// that reading-by-reading insertion produces.
    #[test]
    fn merge_matches_insert_by_insert_reference() {
        // A deterministic little generator is enough to hit every path:
        // disjoint tags, strictly newer epochs, interleaved epochs, equal
        // epochs with disjoint readers, and exact duplicates.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let mut base = Observations::new();
            let mut incoming = Observations::new();
            let mut reference = Observations::new();
            for _ in 0..60 {
                let r = read(
                    (next() % 20) as u32,
                    if next() % 2 == 0 {
                        TagId::item(next() % 3)
                    } else {
                        TagId::case(next() % 3)
                    },
                    (next() % 4) as u16,
                );
                if next() % 2 == 0 {
                    base.insert(r);
                    reference.insert(r);
                } else {
                    incoming.insert(r);
                }
            }
            // the reference replays `incoming` through insert()
            for (tag, list) in &incoming.per_tag {
                for obs in list {
                    for reader in &obs.readers {
                        reference.insert(RawReading::new(obs.epoch, *tag, reader.reader()));
                    }
                }
            }
            base.merge(&incoming);
            assert_eq!(base.per_tag, reference.per_tag);
        }
    }

    #[test]
    fn merge_append_only_and_vacant_fast_paths() {
        let mut a = Observations::new();
        a.insert(read(1, TagId::item(1), 0));
        a.insert(read(2, TagId::item(1), 1));
        let mut b = Observations::new();
        // strictly newer epochs for an existing tag → append path
        b.insert(read(5, TagId::item(1), 0));
        b.insert(read(6, TagId::item(1), 2));
        // unseen tag → adoption path
        b.insert(read(3, TagId::case(7), 1));
        a.merge(&b);
        assert_eq!(a.obs_for(TagId::item(1)).len(), 4);
        assert_eq!(a.obs_for(TagId::case(7)).len(), 1);
        // merging an empty index is a no-op; merging into empty adopts all
        let before = a.len();
        a.merge(&Observations::new());
        assert_eq!(a.len(), before);
        let mut fresh = Observations::new();
        fresh.merge(&a);
        assert_eq!(fresh.per_tag, a.per_tag);
    }

    #[test]
    fn epochs_of_unions_tags() {
        let obs = sample();
        let set = obs.epochs_of(&[TagId::item(1), TagId::case(2)]);
        assert_eq!(set.len(), 3);
    }
}
