//! Per-tag observation likelihoods under the paper's sensing model
//! (Section 3.1, Eq. 1).
//!
//! For a tag whose true location is `a`, every reader `r` independently
//! detects it with probability `pi(r, a)`. The log-probability of one epoch's
//! observations of that tag is therefore
//!
//! ```text
//! sum_r [ read(r) * log pi(r,a) + (1 - read(r)) * log (1 - pi(r,a)) ]
//! ```
//!
//! Evaluating that sum naively costs `O(R)` per (tag, epoch, location). The
//! optimization of Appendix A.3 applies here: precompute, per location, the
//! "missed by everyone" term `sum_r log (1 - pi(r,a))` once, and then correct
//! it only for the readers that actually fired — of which there are at most a
//! handful.

use rfid_types::{LocationId, ReadRateTable};

/// Precomputed log-likelihood helper bound to one read-rate table.
#[derive(Debug, Clone)]
pub struct LikelihoodModel {
    rates: ReadRateTable,
    /// `log_all_miss[a] = sum_r log (1 - pi(r, a))`.
    log_all_miss: Vec<f64>,
    /// Row-major correction rows, one per reader:
    /// `corr[r * R + a] = log pi(r, a) - log (1 - pi(r, a))`.
    ///
    /// Precomputing these once per model turns every loglik row fill into a
    /// copy of the all-miss row plus one elementwise row add per firing
    /// reader — no `ln` in any inner loop. Each entry is the same
    /// `log_hit - log_miss` subtraction [`Self::tag_loglik`] performs, so
    /// adding a correction row is bit-identical to the scalar loop.
    corr: Vec<f64>,
}

impl LikelihoodModel {
    /// Build the model from a read-rate table.
    pub fn new(rates: ReadRateTable) -> LikelihoodModel {
        let log_all_miss: Vec<f64> = rates.locations().map(|a| rates.log_all_miss(a)).collect();
        let mut corr = Vec::with_capacity(rates.num_locations() * rates.num_locations());
        for r in rates.locations() {
            for a in rates.locations() {
                corr.push(rates.log_hit(r, a) - rates.log_miss(r, a));
            }
        }
        LikelihoodModel {
            rates,
            log_all_miss,
            corr,
        }
    }

    /// The precomputed per-location correction row of one reader:
    /// `corr_row(r)[a] = log pi(r, a) - log (1 - pi(r, a))`.
    pub fn corr_row(&self, r: LocationId) -> &[f64] {
        let n = self.num_locations();
        &self.corr[r.index() * n..(r.index() + 1) * n]
    }

    /// The read-rate table the model was built from.
    pub fn rates(&self) -> &ReadRateTable {
        &self.rates
    }

    /// Number of discrete locations `R`.
    pub fn num_locations(&self) -> usize {
        self.rates.num_locations()
    }

    /// All locations.
    pub fn locations(&self) -> impl Iterator<Item = LocationId> {
        self.rates.locations()
    }

    /// Log-probability that a tag at location `at` is missed by every reader
    /// during one epoch.
    pub fn unread_loglik(&self, at: LocationId) -> f64 {
        self.log_all_miss[at.index()]
    }

    /// Log-probability of one epoch's observations of a tag, given that the
    /// tag is truly at `at` and was detected by exactly the readers in
    /// `readers` (readers not listed missed it).
    pub fn tag_loglik(&self, readers: &[LocationId], at: LocationId) -> f64 {
        let mut ll = self.log_all_miss[at.index()];
        for &r in readers {
            ll += self.rates.log_hit(r, at) - self.rates.log_miss(r, at);
        }
        ll
    }

    /// Log-probability of one epoch's observations where `readers` is `None`
    /// when the tag was not detected at all that epoch.
    pub fn tag_loglik_opt(&self, readers: Option<&[LocationId]>, at: LocationId) -> f64 {
        match readers {
            Some(rs) => self.tag_loglik(rs, at),
            None => self.unread_loglik(at),
        }
    }

    /// The precomputed "missed by every reader" row: `unread_loglik` for
    /// every location, in ascending location order. Row zero of the dense
    /// inference path's loglik table — the row every `None` reader set maps
    /// to.
    pub fn all_miss_row(&self) -> &[f64] {
        &self.log_all_miss
    }

    /// Fill a memoized `(reader set, location) → loglik` table for a run's
    /// interned reader sets (Appendix A.3 memoization lifted across epochs):
    /// row `i` of the result holds `tag_loglik(sets[i], a)` for every
    /// location `a` in ascending order, so an inference run evaluates each
    /// distinct reader set exactly once however many epochs repeat it.
    ///
    /// `rows` is cleared and refilled (capacity is reused across runs); use
    /// [`ReaderSetTable::row`] to index it.
    pub fn fill_reader_set_table<'s>(
        &self,
        sets: impl IntoIterator<Item = &'s [LocationId]>,
        table: &mut ReaderSetTable,
    ) {
        table.rows.clear();
        table.num_locations = self.num_locations();
        for readers in sets {
            for at in self.locations() {
                table.rows.push(self.tag_loglik(readers, at));
            }
        }
    }

    /// Vector-path variant of [`Self::fill_reader_set_table`]: each row
    /// starts as a copy of the all-miss row and gains one lane-parallel
    /// [`kernels::add_assign_rows`](crate::dense::kernels::add_assign_rows)
    /// of the firing reader's correction row, in reader order. Per location
    /// that is the same addition sequence as [`Self::tag_loglik`], so the
    /// table is bit-identical to the scalar fill.
    pub fn fill_reader_set_table_vector<'s>(
        &self,
        sets: impl IntoIterator<Item = &'s [LocationId]>,
        table: &mut ReaderSetTable,
    ) {
        let n = self.num_locations();
        table.rows.clear();
        table.num_locations = n;
        for readers in sets {
            let start = table.rows.len();
            table.rows.extend_from_slice(&self.log_all_miss);
            for &r in readers {
                crate::dense::kernels::add_assign_rows(
                    &mut table.rows[start..start + n],
                    self.corr_row(r),
                );
            }
        }
    }
}

/// A run-scoped memo of per-location log-likelihood rows, one row per
/// interned reader set — filled by [`LikelihoodModel::fill_reader_set_table`]
/// and held (capacity and all) in the engine's dense scratch across runs.
#[derive(Debug, Clone, Default)]
pub struct ReaderSetTable {
    rows: Vec<f64>,
    num_locations: usize,
}

impl ReaderSetTable {
    /// The loglik row of one interned reader set: `row(id)[a.index()]` is
    /// `tag_loglik(set_readers(id), a)`.
    pub fn row(&self, set: u32) -> &[f64] {
        let start = set as usize * self.num_locations;
        &self.rows[start..start + self.num_locations]
    }

    /// Number of interned reader sets currently tabulated.
    pub fn len(&self) -> usize {
        self.rows.len().checked_div(self.num_locations).unwrap_or(0)
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LikelihoodModel {
        LikelihoodModel::new(ReadRateTable::diagonal(4, 0.8, 1e-4))
    }

    /// Naive reference implementation of the full sum over readers.
    fn naive_loglik(rates: &ReadRateTable, readers: &[LocationId], at: LocationId) -> f64 {
        rates
            .locations()
            .map(|r| {
                if readers.contains(&r) {
                    rates.log_hit(r, at)
                } else {
                    rates.log_miss(r, at)
                }
            })
            .sum()
    }

    #[test]
    fn optimized_loglik_matches_naive_sum() {
        let m = model();
        for at in m.locations().collect::<Vec<_>>() {
            for readers in [
                vec![],
                vec![LocationId(0)],
                vec![LocationId(1)],
                vec![at],
                vec![LocationId(0), LocationId(2)],
                vec![LocationId(0), LocationId(1), LocationId(2), LocationId(3)],
            ] {
                let fast = m.tag_loglik(&readers, at);
                let slow = naive_loglik(m.rates(), &readers, at);
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "mismatch for readers {readers:?} at {at}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn being_read_at_own_location_is_most_likely() {
        let m = model();
        let at_true = m.tag_loglik(&[LocationId(2)], LocationId(2));
        let at_other = m.tag_loglik(&[LocationId(2)], LocationId(1));
        assert!(
            at_true > at_other,
            "a detection by reader 2 should favour location 2"
        );
    }

    #[test]
    fn missed_reading_slightly_penalises_the_own_location() {
        let m = model();
        // When a tag is not read at all, locations with high read rates are
        // less likely than they would be under a detection, but all
        // locations have the same own-read-rate here, so the unread
        // likelihood is identical across locations.
        let a = m.unread_loglik(LocationId(0));
        let b = m.unread_loglik(LocationId(3));
        assert!((a - b).abs() < 1e-12);
        assert!(a < 0.0);
        assert_eq!(m.tag_loglik_opt(None, LocationId(0)), a);
        assert_eq!(
            m.tag_loglik_opt(Some(&[LocationId(0)]), LocationId(0)),
            m.tag_loglik(&[LocationId(0)], LocationId(0))
        );
    }

    #[test]
    fn reader_set_table_memoizes_tag_logliks_exactly() {
        let m = model();
        let sets: Vec<Vec<LocationId>> = vec![
            vec![],
            vec![LocationId(0)],
            vec![LocationId(1), LocationId(3)],
        ];
        let mut table = ReaderSetTable::default();
        assert!(table.is_empty());
        m.fill_reader_set_table(sets.iter().map(|s| s.as_slice()), &mut table);
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        for (i, set) in sets.iter().enumerate() {
            let row = table.row(i as u32);
            for at in m.locations() {
                // bit-identical, not merely close: the table is a memo of the
                // exact same computation
                assert_eq!(row[at.index()], m.tag_loglik(set, at));
            }
        }
        assert_eq!(m.all_miss_row(), table.row(0), "empty set == all-miss row");
        assert_eq!(m.all_miss_row().len(), m.num_locations());
        // refilling reuses the buffer and replaces the contents
        m.fill_reader_set_table(std::iter::once(&sets[1][..]), &mut table);
        assert_eq!(table.len(), 1);
        assert_eq!(table.row(0)[0], m.tag_loglik(&sets[1], LocationId(0)));
    }

    #[test]
    fn asymmetric_rates_shift_the_unread_likelihood() {
        // A location covered by a high-rate reader is *less* likely when the
        // tag is never read.
        let mut rates = ReadRateTable::diagonal(2, 0.5, 1e-4);
        rates.set(LocationId(0), LocationId(0), 0.95);
        let m = LikelihoodModel::new(rates);
        assert!(m.unread_loglik(LocationId(0)) < m.unread_loglik(LocationId(1)));
    }
}
