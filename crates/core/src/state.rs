//! Inference state shipped between sites when an object migrates
//! (Section 4.1).
//!
//! Three flavours are supported, matching the evaluation in Section 5.3 and
//! Table 5:
//!
//! * [`MigrationState::None`] — nothing is transferred; the new site starts
//!   from scratch (the "None" baseline).
//! * [`MigrationState::Readings`] — the raw readings of the object and its
//!   candidate containers inside the critical region and the recent history
//!   (the "CR" method of Section 4.1, *Truncating History*).
//! * [`MigrationState::Collapsed`] — a single number per candidate container:
//!   the accumulated co-location weight `w_co` (*Collapsing Inference
//!   State*). The receiving site adds these weights to the ones it computes
//!   locally.

use crate::rfinfer::PriorWeights;
use rfid_types::{RawReading, TagId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Collapsed inference state for one object: one weight per candidate
/// container plus the current containment estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollapsedState {
    /// The migrating object.
    pub object: TagId,
    /// Accumulated co-location weight per candidate container.
    pub weights: BTreeMap<TagId, f64>,
    /// The container currently believed to hold the object.
    pub container: Option<TagId>,
}

impl CollapsedState {
    /// Approximate wire size in bytes: the object id (8), the optional
    /// container id (9) and one (tag, f64) entry per candidate (16 each).
    /// This is what the communication-cost accounting of Table 5 charges.
    pub fn wire_bytes(&self) -> usize {
        8 + 9 + 16 * self.weights.len()
    }

    /// Convert into prior weights consumable by [`crate::RfInfer`].
    pub fn to_prior(&self) -> PriorWeights {
        let mut prior = PriorWeights::empty();
        for (&c, &w) in &self.weights {
            prior.set(self.object, c, w);
        }
        prior
    }

    /// Serialize to JSON (used by the distributed layer when it needs an
    /// inspectable payload; byte accounting uses [`Self::wire_bytes`]).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("collapsed state serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<CollapsedState, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Critical-region inference state for one object: the retained raw readings
/// of the object and its candidate containers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadingsState {
    /// The migrating object.
    pub object: TagId,
    /// Retained readings (object + candidate containers, CR + recent
    /// history).
    pub readings: Vec<RawReading>,
    /// The container currently believed to hold the object.
    pub container: Option<TagId>,
}

impl ReadingsState {
    /// Approximate wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        8 + 9 + self.readings.len() * RawReading::WIRE_BYTES
    }
}

/// The inference state transferred for one object when it leaves a site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MigrationState {
    /// Transfer nothing.
    None,
    /// Transfer collapsed co-location weights.
    Collapsed(CollapsedState),
    /// Transfer the critical-region readings.
    Readings(ReadingsState),
}

impl MigrationState {
    /// The object this state belongs to, if any state is carried.
    pub fn object(&self) -> Option<TagId> {
        match self {
            MigrationState::None => None,
            MigrationState::Collapsed(s) => Some(s.object),
            MigrationState::Readings(s) => Some(s.object),
        }
    }

    /// Approximate number of bytes this state costs to transfer.
    pub fn wire_bytes(&self) -> usize {
        match self {
            MigrationState::None => 0,
            MigrationState::Collapsed(s) => s.wire_bytes(),
            MigrationState::Readings(s) => s.wire_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_types::{Epoch, ReaderId};

    fn collapsed() -> CollapsedState {
        CollapsedState {
            object: TagId::item(3),
            weights: BTreeMap::from([(TagId::case(1), -12.5), (TagId::case(2), -40.0)]),
            container: Some(TagId::case(1)),
        }
    }

    #[test]
    fn collapsed_state_is_tiny_compared_to_readings() {
        let c = collapsed();
        assert_eq!(c.wire_bytes(), 8 + 9 + 32);
        let r = ReadingsState {
            object: TagId::item(3),
            readings: (0..100)
                .map(|t| RawReading::new(Epoch(t), TagId::item(3), ReaderId(0)))
                .collect(),
            container: Some(TagId::case(1)),
        };
        assert!(r.wire_bytes() > 10 * c.wire_bytes());
    }

    #[test]
    fn collapsed_state_round_trips_through_json_and_prior() {
        let c = collapsed();
        let json = c.to_json();
        let back = CollapsedState::from_json(&json).unwrap();
        assert_eq!(back, c);
        let prior = c.to_prior();
        assert_eq!(prior.get(TagId::item(3), TagId::case(1)), -12.5);
        assert_eq!(prior.get(TagId::item(3), TagId::case(2)), -40.0);
        assert_eq!(prior.get(TagId::item(3), TagId::case(9)), 0.0);
    }

    #[test]
    fn migration_state_accessors() {
        assert_eq!(MigrationState::None.wire_bytes(), 0);
        assert_eq!(MigrationState::None.object(), None);
        let c = MigrationState::Collapsed(collapsed());
        assert_eq!(c.object(), Some(TagId::item(3)));
        assert!(c.wire_bytes() > 0);
        let r = MigrationState::Readings(ReadingsState {
            object: TagId::item(4),
            readings: vec![],
            container: None,
        });
        assert_eq!(r.object(), Some(TagId::item(4)));
        assert_eq!(r.wire_bytes(), 17);
    }
}
