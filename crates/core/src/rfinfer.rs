//! RFINFER — the paper's EM algorithm for joint containment and location
//! inference (Section 3.2, Algorithm 1), including the optimizations of
//! Appendix A.3 (candidate pruning, memoization, sparse likelihood
//! evaluation) and support for prior co-location weights imported from a
//! previous site (the collapsed inference state of Section 4.1).
//!
//! ## Incremental re-runs
//!
//! Periodic inference (Section 3) re-solves the EM over the retained history
//! every run, yet between two runs most of that history is untouched: new
//! readings only arrive for epochs after the previous run, and truncation
//! only removes old epochs. [`RfInfer::run_incremental`] exploits this with
//! a cross-run [`EvidenceCache`]: the EM control flow is replayed in full
//! (so the result is **bit-identical** to [`RfInfer::run`] by construction),
//! but its two expensive leaves — the E-step container posterior at one
//! epoch, and the per-epoch point evidence of one (object, candidate) pair —
//! are memoized and skipped whenever a [`DirtySet`] journal proves their
//! exact inputs unchanged since the previous run.

use crate::likelihood::LikelihoodModel;
use crate::observations::Observations;
use crate::posterior::{container_posterior, Posterior};
use rfid_types::{ContainmentMap, Epoch, LocationId, ObjectEvent, TagId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs of the RFINFER algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RfInferConfig {
    /// Maximum number of candidate containers considered per object
    /// (candidate pruning, Appendix A.3). Ignored when
    /// `candidate_pruning` is false.
    pub candidate_limit: usize,
    /// Maximum number of EM iterations; the algorithm usually converges in
    /// just a few.
    pub max_iterations: usize,
    /// Whether to restrict each object's candidate containers to the most
    /// frequently co-located ones.
    pub candidate_pruning: bool,
    /// Whether to reuse a container's posterior from the previous iteration
    /// when its member set did not change (the memoization optimization;
    /// introduces no error).
    pub memoization: bool,
    /// Whether to run the EM over dense-interned columnar state (tags and
    /// locations interned to contiguous `u32` indices, flat arena storage,
    /// memoized reader-set log-likelihood rows — see
    /// [`crate::dense`]) instead of the `BTreeMap`-keyed reference solver.
    /// Both solvers are bit-identical; dense is faster and the default. The
    /// tree solver is kept as the reference the equivalence tests compare
    /// against.
    pub dense: bool,
    /// Whether the dense solver's inner loops run through the chunk-of-8
    /// vector kernels ([`crate::dense::kernels`]): lane-parallel loglik row
    /// fills, in-place log-sum-exp normalization, batched point-evidence
    /// dot products and the epoch-indexed candidate-pruning pass. The
    /// kernels vectorize across locations/candidates only — never across
    /// the terms of one accumulator — so outcomes, reuse counters and wire
    /// bytes are **bit-identical** with the flag on or off; off exists as
    /// the exactness reference the equivalence tests sweep.
    pub vector_kernels: bool,
    /// Opt-in reassociating kernels (multi-accumulator sums and dot
    /// products). Faster but **not** bit-identical to the reference
    /// summation order — off by default and excluded from the equivalence
    /// tests. Ignored unless `vector_kernels` is also on.
    pub fast_math: bool,
}

impl Default for RfInferConfig {
    fn default() -> RfInferConfig {
        RfInferConfig {
            candidate_limit: 5,
            max_iterations: 10,
            candidate_pruning: true,
            memoization: true,
            dense: true,
            vector_kernels: true,
            fast_math: false,
        }
    }
}

/// Prior co-location weights carried over from previous sites (the collapsed
/// inference state): for an object, a map from candidate container to the
/// accumulated weight `w_co` computed elsewhere. The M-step simply adds these
/// to the locally computed weights.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PriorWeights {
    map: BTreeMap<TagId, BTreeMap<TagId, f64>>,
}

impl PriorWeights {
    /// No prior information.
    pub fn empty() -> PriorWeights {
        PriorWeights::default()
    }

    /// Set the prior weight of `(object, container)`.
    pub fn set(&mut self, object: TagId, container: TagId, weight: f64) {
        self.map
            .entry(object)
            .or_default()
            .insert(container, weight);
    }

    /// Add to the prior weight of `(object, container)`.
    pub fn add(&mut self, object: TagId, container: TagId, weight: f64) {
        *self
            .map
            .entry(object)
            .or_default()
            .entry(container)
            .or_insert(0.0) += weight;
    }

    /// The prior weight of `(object, container)`, zero if absent.
    pub fn get(&self, object: TagId, container: TagId) -> f64 {
        self.map
            .get(&object)
            .and_then(|m| m.get(&container))
            .copied()
            .unwrap_or(0.0)
    }

    /// Containers with prior information for the given object.
    pub fn containers_for(&self, object: TagId) -> Vec<TagId> {
        self.map
            .get(&object)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// The `(container, weight)` priors of one object in ascending container
    /// order, without allocating — the dense path's view of
    /// [`Self::containers_for`].
    pub fn entries_for(&self, object: TagId) -> impl Iterator<Item = (TagId, f64)> + '_ {
        self.map
            .get(&object)
            .into_iter()
            .flat_map(|m| m.iter().map(|(c, w)| (*c, *w)))
    }

    /// Objects with prior information.
    pub fn objects(&self) -> impl Iterator<Item = TagId> + '_ {
        self.map.keys().copied()
    }

    /// Whether no prior information is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Merge another set of priors into this one (weights add up).
    pub fn merge(&mut self, other: &PriorWeights) {
        for (o, m) in &other.map {
            for (c, w) in m {
                self.add(*o, *c, *w);
            }
        }
    }
}

/// Everything the M-step learned about one object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectEvidence {
    /// Candidate containers considered for this object (pruned set).
    pub candidates: Vec<TagId>,
    /// Total co-location weight `w_co` per candidate (Eq. 5), including any
    /// prior weight.
    pub weights: BTreeMap<TagId, f64>,
    /// Point evidence `e_co(t)` (Eq. 7) per candidate, at every epoch the
    /// object was observed, in epoch order.
    pub point_evidence: BTreeMap<TagId, Vec<(Epoch, f64)>>,
    /// The container chosen by the M-step (argmax weight), if any candidate
    /// existed.
    pub assigned: Option<TagId>,
}

impl ObjectEvidence {
    /// Cumulative evidence `E_co(t)` for one candidate: the running sum of
    /// point evidence up to and including each epoch.
    pub fn cumulative_evidence(&self, container: TagId) -> Vec<(Epoch, f64)> {
        let mut total = 0.0;
        self.point_evidence
            .get(&container)
            .map(|points| {
                points
                    .iter()
                    .map(|&(t, e)| {
                        total += e;
                        (t, total)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The best and second-best candidate weights, if at least two candidates
    /// exist. Used by history truncation to decide whether the evidence is
    /// decisive.
    pub fn weight_margin(&self) -> Option<f64> {
        let mut ws: Vec<f64> = self.weights.values().copied().collect();
        if ws.len() < 2 {
            return None;
        }
        ws.sort_by(|a, b| b.partial_cmp(a).unwrap());
        Some(ws[0] - ws[1])
    }
}

/// The result of one RFINFER run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceOutcome {
    /// Inferred containment: each object mapped to its most likely container.
    pub containment: ContainmentMap,
    /// Per-object evidence (weights, point evidence, candidates).
    pub objects: BTreeMap<TagId, ObjectEvidence>,
    /// MAP location estimates per tag and epoch. For containers these come
    /// from the E-step posterior; for objects without an assigned container
    /// they come from the object's own readings.
    pub tag_locations: BTreeMap<TagId, Vec<(Epoch, LocationId)>>,
    /// Number of EM iterations executed before convergence.
    pub iterations: usize,
    /// Number of discrete locations in the model.
    pub num_locations: usize,
}

impl InferenceOutcome {
    /// The location estimate for `tag` at epoch `t`: the estimate at the
    /// nearest epoch for which a posterior was computed. Objects inherit the
    /// location of their inferred container (smoothing over containment).
    pub fn location_of(&self, tag: TagId, t: Epoch) -> Option<LocationId> {
        let lookup = |key: TagId| -> Option<LocationId> {
            let locs = self.tag_locations.get(&key)?;
            if locs.is_empty() {
                return None;
            }
            let idx = locs.partition_point(|&(e, _)| e <= t);
            let candidate = if idx == 0 { &locs[0] } else { &locs[idx - 1] };
            // prefer the nearest estimate in time
            let best = if idx < locs.len() {
                let after = &locs[idx];
                if after.0.since(t) < t.since(candidate.0) {
                    after
                } else {
                    candidate
                }
            } else {
                candidate
            };
            Some(best.1)
        };
        if tag.is_object() {
            if let Some(container) = self.containment.container_of(tag) {
                if let Some(loc) = lookup(container) {
                    return Some(loc);
                }
            }
        }
        lookup(tag)
    }

    /// The inferred container of an object.
    pub fn container_of(&self, object: TagId) -> Option<TagId> {
        self.containment.container_of(object)
    }

    /// The co-location weight of an (object, container) pair, if the pair was
    /// considered.
    pub fn weight(&self, object: TagId, container: TagId) -> Option<f64> {
        self.objects
            .get(&object)
            .and_then(|e| e.weights.get(&container))
            .copied()
    }

    /// Build enriched object events `(time, tag, location, container)` at the
    /// given epoch for every object with a location estimate.
    pub fn events_at(&self, t: Epoch) -> Vec<ObjectEvent> {
        let mut events = Vec::new();
        for object in self.objects.keys() {
            if let Some(loc) = self.location_of(*object, t) {
                events.push(ObjectEvent::new(
                    t,
                    *object,
                    loc,
                    self.containment.container_of(*object),
                ));
            }
        }
        events
    }
}

/// Journal of per-tag store changes since the previous inference run: the
/// dirty set driving incremental RFINFER.
///
/// Every mutation of the observation store — a new reading, a reading
/// imported with critical-region migration state, a truncation or a
/// `forget` — records the affected `(tag, epoch)` pairs here. A tag can also
/// be marked dirty without epochs (e.g. when collapsed weights were imported
/// for it), which counts it in the dirty statistics without invalidating any
/// cached per-epoch computation (priors are re-applied from scratch every
/// run).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirtySet {
    changed: BTreeMap<TagId, BTreeSet<Epoch>>,
}

impl DirtySet {
    /// An empty journal.
    pub fn new() -> DirtySet {
        DirtySet::default()
    }

    /// Record that `tag`'s observations changed at `epoch` (inserted or
    /// removed).
    pub fn record(&mut self, tag: TagId, epoch: Epoch) {
        self.changed.entry(tag).or_default().insert(epoch);
    }

    /// Record a batch of changed epochs for one tag. A no-op when `epochs`
    /// is empty, so callers can pass the removal list of
    /// [`Observations::retain_ranges_for`] unconditionally.
    pub fn record_all<I: IntoIterator<Item = Epoch>>(&mut self, tag: TagId, epochs: I) {
        let mut iter = epochs.into_iter().peekable();
        if iter.peek().is_some() {
            self.changed.entry(tag).or_default().extend(iter);
        }
    }

    /// Mark a tag dirty without naming epochs (state other than observations
    /// changed, e.g. imported prior weights).
    pub fn mark(&mut self, tag: TagId) {
        self.changed.entry(tag).or_default();
    }

    /// The changed epochs of one tag, if it is dirty.
    pub fn epochs_of(&self, tag: TagId) -> Option<&BTreeSet<Epoch>> {
        self.changed.get(&tag)
    }

    /// Number of dirty tags.
    pub fn num_tags(&self) -> usize {
        self.changed.len()
    }

    /// Whether nothing changed since the journal was last cleared.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }

    /// Union of the changed epochs of all the given tags — the epochs at
    /// which a cached posterior over exactly these tags is invalid.
    pub fn union_for<I: IntoIterator<Item = TagId>>(&self, tags: I) -> BTreeSet<Epoch> {
        self.union_for_until(tags, None)
    }

    /// Like [`Self::union_for`], but ignoring changes after `cutoff`. Used
    /// when the consumer's cache holds nothing newer than `cutoff` anyway —
    /// in the streaming steady state almost every change is a new reading
    /// past the previous run's horizon, so the clamp keeps the union tiny.
    pub fn union_for_until<I: IntoIterator<Item = TagId>>(
        &self,
        tags: I,
        cutoff: Option<Epoch>,
    ) -> BTreeSet<Epoch> {
        let mut union = BTreeSet::new();
        for tag in tags {
            if let Some(epochs) = self.changed.get(&tag) {
                match cutoff {
                    Some(cutoff) => union.extend(epochs.range(..=cutoff).copied()),
                    None => union.extend(epochs.iter().copied()),
                }
            }
        }
        union
    }

    /// All `(tag, changed epochs)` entries in ascending tag order — the
    /// checkpoint codec's view of the journal. A tag marked via
    /// [`Self::mark`] appears with an empty epoch set.
    pub fn entries(&self) -> impl Iterator<Item = (TagId, &BTreeSet<Epoch>)> {
        self.changed.iter().map(|(t, e)| (*t, e))
    }

    /// Forget all recorded changes.
    pub fn clear(&mut self) {
        self.changed.clear();
    }
}

/// Cached variants kept per container across runs. The EM typically visits
/// two member sets per container and run (the initial assignment's and the
/// converged one), and both tend to recur on the next run.
pub(crate) const MAX_CACHED_VARIANTS: usize = 4;

/// One E-step *variant* of a container: the per-epoch posteriors computed
/// over one member set, plus the point-evidence series each object computed
/// against those posteriors. The posterior series is stored columnar — an
/// epoch-sorted key vector plus one flat row arena holding every posterior's
/// probability row back to back — so the dense solver walks and reuses the
/// rows without touching a per-posterior allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedVariant {
    /// The member set the cached posteriors smooth over.
    pub members: Vec<TagId>,
    /// Epochs of the cached posteriors, ascending.
    pub epochs: Vec<Epoch>,
    /// Probability rows of the cached posteriors, concatenated in epoch
    /// order; row width is `qrows.len() / epochs.len()`.
    pub qrows: Vec<f64>,
    /// Per-object point-evidence series computed against those posteriors.
    pub evidence: BTreeMap<TagId, Vec<(Epoch, f64)>>,
}

impl CachedVariant {
    /// The cached posteriors as `(epoch, row)` pairs, in epoch order.
    pub(crate) fn rows(&self) -> impl Iterator<Item = (Epoch, &[f64])> {
        let width = self.qrows.len().checked_div(self.epochs.len()).unwrap_or(0);
        self.epochs
            .iter()
            .copied()
            .zip(self.qrows.chunks_exact(width.max(1)))
    }
}

/// Working state of one container during an EM run.
struct Variant {
    /// The member set the posteriors smooth over.
    members: Vec<TagId>,
    /// The EM iteration that (re)computed this variant — objects whose
    /// candidates were all left untouched by an iteration's E-step skip its
    /// M-step wholesale (their weights could not have changed).
    updated_iter: usize,
    /// Per-epoch posteriors of this variant, epoch-sorted.
    per_epoch: Vec<(Epoch, Posterior)>,
    /// Epochs whose posterior was moved bitwise out of the previous run's
    /// matching variant (sorted ascending) — the precondition for cross-run
    /// evidence reuse.
    reused: Vec<Epoch>,
    /// Whether *every* needed posterior came out of the previous run's
    /// matching variant — the whole-series evidence fast path.
    fully_reused: bool,
    /// The matching previous-run variant's evidence series.
    prev_evidence: BTreeMap<TagId, Vec<(Epoch, f64)>>,
    /// Evidence series computed this run against `per_epoch` (incremental
    /// mode only) — reused across EM iterations and by the outcome builder.
    evidence: BTreeMap<TagId, Vec<(Epoch, f64)>>,
}

impl Variant {
    fn into_cached(self) -> CachedVariant {
        let mut epochs = Vec::with_capacity(self.per_epoch.len());
        let mut qrows = Vec::with_capacity(self.per_epoch.iter().map(|(_, q)| q.len()).sum());
        for (t, q) in &self.per_epoch {
            epochs.push(*t);
            qrows.extend_from_slice(q.probs());
        }
        CachedVariant {
            members: self.members,
            epochs,
            qrows,
            evidence: self.evidence,
        }
    }
}

/// Cross-run evidence cache consumed and refilled by
/// [`RfInfer::run_incremental`].
///
/// Holds, per container, the posterior variants of the previous run — the
/// per-epoch E-step posteriors keyed by the member set they smoothed over —
/// together with the per-object point-evidence series computed against each
/// variant.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvidenceCache {
    pub(crate) containers: BTreeMap<TagId, Vec<CachedVariant>>,
}

impl EvidenceCache {
    /// An empty cache (the first incremental run computes everything).
    pub fn new() -> EvidenceCache {
        EvidenceCache::default()
    }

    /// Number of cached per-epoch posteriors, across all variants of all
    /// containers.
    pub fn cached_posteriors(&self) -> usize {
        self.containers
            .values()
            .flat_map(|variants| variants.iter())
            .map(|v| v.epochs.len())
            .sum()
    }

    /// All `(container, variants)` entries in ascending container order —
    /// the checkpoint codec's view of the cache.
    pub fn variants(&self) -> impl Iterator<Item = (TagId, &[CachedVariant])> {
        self.containers.iter().map(|(t, v)| (*t, v.as_slice()))
    }

    /// Replace the cached variants of one container. This is the checkpoint
    /// *restore* path — insertion order across containers is irrelevant (the
    /// map is keyed), and passing the variants decoded from a checkpoint
    /// rebuilds the cache bit-identically.
    pub fn set_variants(&mut self, container: TagId, variants: Vec<CachedVariant>) {
        self.containers.insert(container, variants);
    }

    /// Drop everything (e.g. when switching an engine to full recompute).
    pub fn clear(&mut self) {
        self.containers.clear();
    }

    /// Evict entries whose container no longer has any retained
    /// observations. After history compaction the cached posteriors of such
    /// a container describe epochs the store has forgotten, so no future
    /// incremental run can match them — keeping them would only hold memory.
    /// Returns the number of container entries evicted.
    pub fn evict_cold(&mut self, store: &Observations) -> usize {
        let before = self.containers.len();
        self.containers
            .retain(|container, _| !store.obs_for(*container).is_empty());
        before - self.containers.len()
    }
}

/// Work accounting of one inference run: how much of the E-step and M-step
/// was reused from the cross-run cache versus computed fresh.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceStats {
    /// Tags whose observations or imported state changed since the previous
    /// run (zero for a full recompute, which tracks no dirtiness).
    pub dirty_tags: usize,
    /// E-step per-epoch container posteriors reused from the cache.
    pub posteriors_reused: usize,
    /// E-step per-epoch container posteriors computed fresh.
    pub posteriors_computed: usize,
    /// Per-epoch point-evidence values reused from the previous outcome.
    pub evidence_reused: usize,
    /// Per-epoch point-evidence values computed fresh.
    pub evidence_computed: usize,
}

impl InferenceStats {
    /// Add another run's counters into this one (per-site aggregation).
    pub fn absorb(&mut self, other: &InferenceStats) {
        self.dirty_tags += other.dirty_tags;
        self.posteriors_reused += other.posteriors_reused;
        self.posteriors_computed += other.posteriors_computed;
        self.evidence_reused += other.evidence_reused;
        self.evidence_computed += other.evidence_computed;
    }

    /// Fraction of E-step posterior evaluations served from the cache.
    pub fn posterior_reuse_fraction(&self) -> f64 {
        let total = self.posteriors_reused + self.posteriors_computed;
        if total == 0 {
            0.0
        } else {
            self.posteriors_reused as f64 / total as f64
        }
    }

    /// Fraction of point-evidence evaluations served from the cache.
    pub fn evidence_reuse_fraction(&self) -> f64 {
        let total = self.evidence_reused + self.evidence_computed;
        if total == 0 {
            0.0
        } else {
            self.evidence_reused as f64 / total as f64
        }
    }
}

/// Forward-only cursor over a previous run's point-evidence series, looked
/// up in step with an object's (epoch-sorted) observations.
pub(crate) struct PrevSeries<'a> {
    series: &'a [(Epoch, f64)],
    cursor: usize,
}

impl<'a> PrevSeries<'a> {
    pub(crate) fn new(series: Option<&'a [(Epoch, f64)]>) -> PrevSeries<'a> {
        PrevSeries {
            series: series.unwrap_or(&[]),
            cursor: 0,
        }
    }

    pub(crate) fn lookup(&mut self, t: Epoch) -> Option<f64> {
        while self.cursor < self.series.len() && self.series[self.cursor].0 < t {
            self.cursor += 1;
        }
        match self.series.get(self.cursor) {
            Some(&(epoch, value)) if epoch == t => Some(value),
            _ => None,
        }
    }
}

/// The RFINFER algorithm bound to a likelihood model, an observation index
/// and optional prior weights.
pub struct RfInfer<'a> {
    pub(crate) model: &'a LikelihoodModel,
    pub(crate) obs: &'a Observations,
    pub(crate) prior: &'a PriorWeights,
    pub(crate) config: RfInferConfig,
}

impl<'a> RfInfer<'a> {
    /// Create an inference run with no prior state.
    pub fn new(model: &'a LikelihoodModel, obs: &'a Observations) -> RfInfer<'a> {
        static EMPTY: once_empty::Lazy = once_empty::Lazy;
        RfInfer {
            model,
            obs,
            prior: EMPTY.get(),
            config: RfInferConfig::default(),
        }
    }

    /// Create an inference run with prior weights imported from another site.
    pub fn with_prior(
        model: &'a LikelihoodModel,
        obs: &'a Observations,
        prior: &'a PriorWeights,
    ) -> RfInfer<'a> {
        RfInfer {
            model,
            obs,
            prior,
            config: RfInferConfig::default(),
        }
    }

    /// Override the configuration (builder style).
    pub fn with_config(mut self, config: RfInferConfig) -> RfInfer<'a> {
        self.config = config;
        self
    }

    /// Run EM to convergence and return the inferred containment, locations
    /// and evidence (a full recompute over the observation index).
    pub fn run(&self) -> InferenceOutcome {
        self.run_impl(None, None).0
    }

    /// [`Self::run`] with caller-owned dense scratch buffers (the interning
    /// arena, flat weight/epoch arenas and the reader-set loglik table),
    /// reused across runs so the steady state allocates almost nothing. A
    /// no-op difference when `RfInferConfig::dense` is off.
    pub fn run_with_scratch(&self, scratch: &mut crate::dense::DenseScratch) -> InferenceOutcome {
        self.run_impl(None, Some(scratch)).0
    }

    /// Run EM incrementally against a cross-run [`EvidenceCache`].
    ///
    /// The EM control flow is identical to [`RfInfer::run`] — same candidate
    /// pruning, same initial assignment, same iteration trajectory — but the
    /// per-epoch container posteriors and point-evidence values are reused
    /// from `cache` wherever `dirty` proves their exact inputs (the relevant
    /// tags' observations at that epoch, and the container's member set)
    /// unchanged since the previous run. Because only bit-identical
    /// intermediate values are ever substituted, the returned outcome is
    /// **bit-identical** to what a full recompute over the same observation
    /// index would produce.
    ///
    /// On return the cache holds this run's posterior variants and evidence
    /// series, ready for the next run.
    pub fn run_incremental(
        &self,
        cache: &mut EvidenceCache,
        dirty: &DirtySet,
    ) -> (InferenceOutcome, InferenceStats) {
        self.run_impl(Some((cache, dirty)), None)
    }

    /// [`Self::run_incremental`] with caller-owned dense scratch buffers —
    /// what [`crate::InferenceEngine`] uses so consecutive periodic runs
    /// share one arena.
    pub fn run_incremental_with_scratch(
        &self,
        cache: &mut EvidenceCache,
        dirty: &DirtySet,
        scratch: &mut crate::dense::DenseScratch,
    ) -> (InferenceOutcome, InferenceStats) {
        self.run_impl(Some((cache, dirty)), Some(scratch))
    }

    fn run_impl(
        &self,
        incr: Option<(&mut EvidenceCache, &DirtySet)>,
        scratch: Option<&mut crate::dense::DenseScratch>,
    ) -> (InferenceOutcome, InferenceStats) {
        if self.config.dense {
            return match scratch {
                Some(scratch) => crate::dense::run_dense(self, incr, scratch),
                None => {
                    let mut scratch = crate::dense::DenseScratch::default();
                    crate::dense::run_dense(self, incr, &mut scratch)
                }
            };
        }
        self.run_tree(incr)
    }

    /// The reference solver: the EM over `BTreeMap`-keyed state, exactly as
    /// it ran before dense interning existed. Kept verbatim (modulo the
    /// epoch-sorted posterior slices shared with the dense path) as the
    /// ground truth the dense solver is equivalence-tested against.
    fn run_tree(
        &self,
        mut incr: Option<(&mut EvidenceCache, &DirtySet)>,
    ) -> (InferenceOutcome, InferenceStats) {
        let mut stats = InferenceStats::default();
        // Take the previous run's cache contents; the map is refilled with
        // this run's variants before returning.
        let mut prev_containers: BTreeMap<TagId, Vec<CachedVariant>> = BTreeMap::new();
        let mut dirty: Option<&DirtySet> = None;
        if let Some((cache, d)) = incr.as_mut() {
            prev_containers = std::mem::take(&mut cache.containers);
            dirty = Some(*d);
            stats.dirty_tags = d.num_tags();
        }

        let objects = self.obs.objects();
        let all_containers = self.obs.containers();

        // Candidate pruning: the containers most frequently co-located with
        // each object, plus any container we have prior information about.
        // One scratch buffer serves the count ranking of every object.
        let mut colocation_scratch: Vec<(TagId, usize)> = Vec::new();
        let mut candidates: BTreeMap<TagId, Vec<TagId>> = BTreeMap::new();
        for &o in &objects {
            let mut cands = if self.config.candidate_pruning {
                self.obs.candidate_containers_with(
                    o,
                    self.config.candidate_limit,
                    &mut colocation_scratch,
                )
            } else {
                all_containers.clone()
            };
            for c in self.prior.containers_for(o) {
                if !cands.contains(&c) {
                    cands.push(c);
                }
            }
            candidates.insert(o, cands);
        }

        // Initial assignment: the strongest prior if one exists, otherwise
        // the most frequently co-located candidate.
        let mut assignment: BTreeMap<TagId, TagId> = BTreeMap::new();
        for (&o, cands) in &candidates {
            if cands.is_empty() {
                continue;
            }
            let by_prior = cands
                .iter()
                .map(|&c| (c, self.prior.get(o, c)))
                .filter(|&(_, w)| w != 0.0)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let initial = by_prior.map(|(c, _)| c).unwrap_or(cands[0]);
            assignment.insert(o, initial);
        }

        // Which epochs each container's posterior is needed at: every epoch
        // at which an object that lists it as a candidate was observed, plus
        // the container's own observation epochs.
        let relevant_containers: BTreeSet<TagId> = candidates
            .values()
            .flat_map(|cs| cs.iter().copied())
            .chain(all_containers.iter().copied())
            .collect();
        let mut needed_epochs: BTreeMap<TagId, Vec<Epoch>> = BTreeMap::new();
        for &c in &relevant_containers {
            let own: Vec<Epoch> = self.obs.obs_for(c).iter().map(|o| o.epoch).collect();
            needed_epochs.insert(c, own);
        }
        for (&o, cands) in &candidates {
            let epochs: Vec<Epoch> = self.obs.obs_for(o).iter().map(|x| x.epoch).collect();
            for &c in cands {
                needed_epochs
                    .entry(c)
                    .or_default()
                    .extend(epochs.iter().copied());
            }
        }
        // Sorted + deduplicated: the same ascending epoch walk a set gives,
        // built with vector constants.
        for list in needed_epochs.values_mut() {
            list.sort_unstable();
            list.dedup();
        }

        // EM loop. `current` holds, per container, the variant in force —
        // the posteriors of the member set of the latest E-step that touched
        // it, plus the evidence series computed against them.
        let incremental = dirty.is_some();
        let mut current: BTreeMap<TagId, Variant> = BTreeMap::new();
        let mut retired: BTreeMap<TagId, Vec<CachedVariant>> = BTreeMap::new();
        let mut weights: BTreeMap<TagId, BTreeMap<TagId, f64>> = BTreeMap::new();
        let mut iterations = 0;
        for iter in 0..self.config.max_iterations.max(1) {
            iterations = iter + 1;
            // E-step (Eq. 4): posterior over each relevant container's
            // location at every needed epoch, smoothing over its currently
            // assigned members.
            for &c in &relevant_containers {
                let members: Vec<TagId> = assignment
                    .iter()
                    .filter(|(_, cc)| **cc == c)
                    .map(|(o, _)| *o)
                    .collect();
                if let Some(variant) = current.get(&c) {
                    if self.config.memoization && variant.members == members {
                        continue;
                    }
                }
                // A superseded variant is retired, not dropped: a later
                // iteration may flip the assignment back, and the next run's
                // early iterations often revisit the same member sets.
                if let Some(old) = current.remove(&c) {
                    retired.entry(c).or_default().push(old.into_cached());
                }
                // Cross-run reuse: a cached posterior is valid at an epoch
                // when it was computed over the same member set and neither
                // the container's nor any member's observations changed at
                // that epoch — identical inputs, identical bits.
                let matched = prev_containers.get_mut(&c).and_then(|variants| {
                    variants
                        .iter()
                        .position(|v| v.members == members)
                        .map(|i| variants.swap_remove(i))
                });
                // Inflate the columnar cache rows back into per-epoch
                // posteriors; each row's bits are copied verbatim, so every
                // downstream reuse decision sees the exact cached values.
                let (prev_per_epoch, prev_evidence): (Vec<(Epoch, Posterior)>, _) = match matched {
                    Some(v) => (
                        v.rows()
                            .map(|(t, row)| (t, Posterior::from_probs(row.to_vec())))
                            .collect(),
                        v.evidence,
                    ),
                    None => (Vec::new(), BTreeMap::new()),
                };
                // Changes after the cached horizon cannot invalidate
                // anything (the cache has no entries there), so clamp the
                // union to it.
                let invalid: BTreeSet<Epoch> = match dirty {
                    Some(d) if !prev_per_epoch.is_empty() => d.union_for_until(
                        std::iter::once(c).chain(members.iter().copied()),
                        prev_per_epoch.last().map(|&(t, _)| t),
                    ),
                    _ => BTreeSet::new(),
                };
                let needed = needed_epochs.get(&c);
                // Whole-variant fast path: the previous run's variant covers
                // exactly the needed epochs and none of them is dirty — take
                // its posterior series wholesale instead of moving entries
                // one by one.
                let fully_reused = !prev_per_epoch.is_empty()
                    && needed.is_some_and(|s| {
                        prev_per_epoch.len() == s.len()
                            && prev_per_epoch.iter().map(|(t, _)| t).eq(s.iter())
                    })
                    && invalid
                        .iter()
                        .all(|t| prev_per_epoch.binary_search_by_key(t, |e| e.0).is_err());
                if fully_reused {
                    stats.posteriors_reused += prev_per_epoch.len();
                    let reused_epochs: Vec<Epoch> =
                        prev_per_epoch.iter().map(|&(t, _)| t).collect();
                    current.insert(
                        c,
                        Variant {
                            members,
                            updated_iter: iter,
                            per_epoch: prev_per_epoch,
                            reused: reused_epochs,
                            fully_reused: true,
                            prev_evidence,
                            evidence: BTreeMap::new(),
                        },
                    );
                    continue;
                }
                // Per-epoch path: walk the (sorted) needed epochs in
                // lockstep with the previous variant's entries and the
                // invalid set; both output collections are bulk-built from
                // already-sorted entries.
                let mut entries: Vec<(Epoch, Posterior)> = Vec::new();
                let mut reused_vec: Vec<Epoch> = Vec::new();
                let mut prev_iter = prev_per_epoch.into_iter().peekable();
                let mut invalid_iter = invalid.iter().peekable();
                let mut member_readers: Vec<Option<&[LocationId]>> = Vec::new();
                for &t in needed.into_iter().flatten() {
                    while prev_iter.peek().is_some_and(|(pt, _)| *pt < t) {
                        prev_iter.next();
                    }
                    while invalid_iter.peek().is_some_and(|it| **it < t) {
                        invalid_iter.next();
                    }
                    let hit = if invalid_iter.peek().is_some_and(|it| **it == t) {
                        None
                    } else if prev_iter.peek().is_some_and(|(pt, _)| *pt == t) {
                        prev_iter.next().map(|(_, q)| q)
                    } else {
                        None
                    };
                    let q = match hit {
                        Some(q) => {
                            stats.posteriors_reused += 1;
                            reused_vec.push(t);
                            q
                        }
                        None => {
                            stats.posteriors_computed += 1;
                            let container_readers = self.obs.readers_at(c, t);
                            member_readers.clear();
                            member_readers
                                .extend(members.iter().map(|&m| self.obs.readers_at(m, t)));
                            container_posterior(self.model, container_readers, &member_readers)
                        }
                    };
                    entries.push((t, q));
                }
                // `needed` is sorted, so `entries` is already epoch-sorted.
                let per_epoch = entries;
                let reused_epochs = reused_vec;
                current.insert(
                    c,
                    Variant {
                        members,
                        updated_iter: iter,
                        per_epoch,
                        reused: reused_epochs,
                        fully_reused: false,
                        prev_evidence,
                        evidence: BTreeMap::new(),
                    },
                );
            }

            // M-step (Eq. 5): co-location weights and the new assignment.
            // In incremental mode each variant remembers the evidence series
            // computed against its posteriors, so an EM iteration that left a
            // container's variant untouched re-sums the series instead of
            // re-deriving every expectation, and a variant matched across
            // runs reuses the previous run's values wherever the posterior
            // was reused and the object's observations are clean.
            let mut new_assignment: BTreeMap<TagId, TagId> = BTreeMap::new();
            for (&o, cands) in &candidates {
                // Stable-object fast path: if this iteration's E-step left
                // every candidate's variant untouched, the weights computed
                // last iteration are bit-identical — re-derive only the
                // argmax.
                if incremental && iter > 0 {
                    let untouched = cands
                        .iter()
                        .all(|c| current.get(c).is_none_or(|v| v.updated_iter < iter));
                    if untouched {
                        if let Some(per_container) = weights.get(&o) {
                            if let Some((&best, _)) = per_container
                                .iter()
                                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                            {
                                new_assignment.insert(o, best);
                            }
                            continue;
                        }
                    }
                }
                let o_dirty = dirty.and_then(|d| d.epochs_of(o));
                let mut per_container = BTreeMap::new();
                for &c in cands {
                    let mut w = self.prior.get(o, c);
                    if let Some(variant) = current.get_mut(&c) {
                        if let Some(series) = variant.evidence.get(&o) {
                            // Same variant as an earlier iteration: identical
                            // inputs, identical series. Summation order is
                            // unchanged, so the weight is bit-identical too.
                            stats.evidence_reused += series.len();
                            for &(_, e) in series {
                                w += e;
                            }
                        } else if incremental {
                            // Whole-series fast path: every posterior of this
                            // variant came out of the cache and the object's
                            // observations are untouched, so the previous
                            // run's series transfers wholesale. (A tag marked
                            // dirty without epochs — an imported prior — is
                            // still clean here: priors enter `w` fresh above,
                            // never through the series.)
                            let o_clean = o_dirty.is_none_or(|s| s.is_empty());
                            let moved = (variant.fully_reused && o_clean)
                                .then(|| variant.prev_evidence.remove(&o))
                                .flatten();
                            if let Some(series) = moved {
                                stats.evidence_reused += series.len();
                                for &(_, e) in &series {
                                    w += e;
                                }
                                variant.evidence.insert(o, series);
                            } else {
                                // Per-epoch path: walk the object's (sorted)
                                // observations in lockstep with the variant's
                                // sorted posterior series, reuse set and dirty
                                // set, so no per-epoch tree lookups remain.
                                let mut prev = PrevSeries::new(
                                    variant.prev_evidence.get(&o).map(|v| v.as_slice()),
                                );
                                let obs = self.obs.obs_for(o);
                                let mut series = Vec::with_capacity(obs.len());
                                let mut q_iter = variant.per_epoch.iter().peekable();
                                let mut reused_iter = variant.reused.iter().peekable();
                                let mut dirty_iter = o_dirty.map(|s| s.iter().peekable());
                                for obs_at in obs {
                                    let t = obs_at.epoch;
                                    while q_iter.peek().is_some_and(|(qt, _)| *qt < t) {
                                        q_iter.next();
                                    }
                                    let Some(entry) = q_iter.peek() else {
                                        break;
                                    };
                                    let (qt, q) = (entry.0, &entry.1);
                                    if qt != t {
                                        continue;
                                    }
                                    while reused_iter.peek().is_some_and(|rt| **rt < t) {
                                        reused_iter.next();
                                    }
                                    let posterior_reused =
                                        reused_iter.peek().is_some_and(|rt| **rt == t);
                                    let o_dirty_here = dirty_iter.as_mut().is_some_and(|it| {
                                        while it.peek().is_some_and(|dt| **dt < t) {
                                            it.next();
                                        }
                                        it.peek().is_some_and(|dt| **dt == t)
                                    });
                                    let reusable = posterior_reused && !o_dirty_here;
                                    let e = match reusable.then(|| prev.lookup(t)).flatten() {
                                        Some(e) => {
                                            stats.evidence_reused += 1;
                                            e
                                        }
                                        None => {
                                            stats.evidence_computed += 1;
                                            q.expect(|a| self.model.tag_loglik(&obs_at.readers, a))
                                        }
                                    };
                                    series.push((t, e));
                                    w += e;
                                }
                                variant.evidence.insert(o, series);
                            }
                        } else {
                            // Full recompute: the reference path, kept free
                            // of cache bookkeeping.
                            for obs_at in self.obs.obs_for(o) {
                                if let Ok(i) = variant
                                    .per_epoch
                                    .binary_search_by_key(&obs_at.epoch, |e| e.0)
                                {
                                    let q = &variant.per_epoch[i].1;
                                    stats.evidence_computed += 1;
                                    w += q.expect(|a| self.model.tag_loglik(&obs_at.readers, a));
                                }
                            }
                        }
                    }
                    per_container.insert(c, w);
                }
                if let Some((&best, _)) = per_container
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                {
                    new_assignment.insert(o, best);
                }
                weights.insert(o, per_container);
            }

            let converged = new_assignment == assignment;
            assignment = new_assignment;
            if converged {
                break;
            }
        }

        let outcome = self.build_outcome(
            &candidates,
            &assignment,
            &weights,
            &current,
            iterations,
            incremental,
            &mut stats,
        );

        // Refill the cache for the next run: the final variant of every
        // container first, then recently retired ones (most recent first),
        // deduplicated by member set and capped.
        if let Some((cache, _)) = incr {
            let mut containers = BTreeMap::new();
            for (c, variant) in current {
                let mut variants = vec![variant.into_cached()];
                for candidate in retired.remove(&c).into_iter().flatten().rev() {
                    if variants.len() >= MAX_CACHED_VARIANTS {
                        break;
                    }
                    if variants.iter().all(|v| v.members != candidate.members) {
                        variants.push(candidate);
                    }
                }
                containers.insert(c, variants);
            }
            cache.containers = containers;
        }
        (outcome, stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn build_outcome(
        &self,
        candidates: &BTreeMap<TagId, Vec<TagId>>,
        assignment: &BTreeMap<TagId, TagId>,
        weights: &BTreeMap<TagId, BTreeMap<TagId, f64>>,
        current: &BTreeMap<TagId, Variant>,
        iterations: usize,
        incremental: bool,
        stats: &mut InferenceStats,
    ) -> InferenceOutcome {
        // Point evidence per (object, candidate) from the final posteriors.
        // In incremental mode the final M-step iteration already computed
        // (and stored) every series against exactly these posteriors, so the
        // builder clones them instead of re-deriving each expectation.
        let mut objects = BTreeMap::new();
        for (&o, cands) in candidates {
            let mut point_evidence = BTreeMap::new();
            for &c in cands {
                let mut points = Vec::new();
                if let Some(variant) = current.get(&c) {
                    match variant.evidence.get(&o) {
                        Some(series) if incremental => {
                            stats.evidence_reused += series.len();
                            points = series.clone();
                        }
                        _ => {
                            for obs_at in self.obs.obs_for(o) {
                                let t = obs_at.epoch;
                                if let Ok(i) = variant.per_epoch.binary_search_by_key(&t, |e| e.0) {
                                    let q = &variant.per_epoch[i].1;
                                    stats.evidence_computed += 1;
                                    let e = q.expect(|a| self.model.tag_loglik(&obs_at.readers, a));
                                    points.push((t, e));
                                }
                            }
                        }
                    }
                }
                point_evidence.insert(c, points);
            }
            objects.insert(
                o,
                ObjectEvidence {
                    candidates: cands.clone(),
                    weights: weights.get(&o).cloned().unwrap_or_default(),
                    point_evidence,
                    assigned: assignment.get(&o).copied(),
                },
            );
        }

        // Location estimates: containers from their posteriors — but only at
        // *informative* epochs, i.e. epochs at which the container itself or
        // one of its assigned members was observed. Posteriors computed at
        // other epochs (they exist because some object merely lists the
        // container as a candidate) carry no location information and would
        // pollute the estimates. Objects with no assigned container fall
        // back to their own readings.
        let mut tag_locations: BTreeMap<TagId, Vec<(Epoch, LocationId)>> = BTreeMap::new();
        for (c, variant) in current {
            let members: Vec<TagId> = assignment
                .iter()
                .filter(|(_, cc)| **cc == *c)
                .map(|(o, _)| *o)
                .collect();
            let informative = |t: Epoch| {
                self.obs.readers_at(*c, t).is_some()
                    || members.iter().any(|m| self.obs.readers_at(*m, t).is_some())
            };
            let locs: Vec<(Epoch, LocationId)> = variant
                .per_epoch
                .iter()
                .filter(|(t, _)| informative(*t))
                .map(|(t, q)| (*t, q.map_location()))
                .collect();
            if !locs.is_empty() {
                tag_locations.insert(*c, locs);
            }
        }
        for &o in candidates.keys() {
            if assignment.contains_key(&o) {
                continue;
            }
            let locs: Vec<(Epoch, LocationId)> = self
                .obs
                .obs_for(o)
                .iter()
                .map(|obs_at| {
                    let q = container_posterior(self.model, Some(&obs_at.readers), &[]);
                    (obs_at.epoch, q.map_location())
                })
                .collect();
            if !locs.is_empty() {
                tag_locations.insert(o, locs);
            }
        }

        let mut containment = ContainmentMap::new();
        for (o, c) in assignment {
            containment.set(*o, *c);
        }

        InferenceOutcome {
            containment,
            objects,
            tag_locations,
            iterations,
            num_locations: self.model.num_locations(),
        }
    }
}

/// A tiny helper that hands out a `'static` empty [`PriorWeights`] so that
/// [`RfInfer::new`] does not force callers to keep one alive.
mod once_empty {
    use super::PriorWeights;
    use std::sync::OnceLock;

    pub struct Lazy;

    impl Lazy {
        pub fn get(&self) -> &'static PriorWeights {
            static EMPTY: OnceLock<PriorWeights> = OnceLock::new();
            EMPTY.get_or_init(PriorWeights::empty)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_types::{RawReading, ReadRateTable, ReaderId, ReadingBatch};

    /// Build observations where `item(1)` truly travels with `case(1)`
    /// through locations 0 -> 1 -> 2, while `case(2)` is co-located only at
    /// location 0 and `case(3)` never is. Readings are deterministic (no
    /// noise) to make assertions exact.
    fn co_travel_obs() -> Observations {
        let mut readings = Vec::new();
        let path = [(0u32, 0u16), (1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (6, 2)];
        for &(t, loc) in &path {
            readings.push(RawReading::new(Epoch(t), TagId::item(1), ReaderId(loc)));
            readings.push(RawReading::new(Epoch(t), TagId::case(1), ReaderId(loc)));
        }
        // case 2 stays at location 0 the whole time
        for t in 0..7u32 {
            readings.push(RawReading::new(Epoch(t), TagId::case(2), ReaderId(0)));
        }
        // case 3 stays at location 2
        for t in 0..7u32 {
            readings.push(RawReading::new(Epoch(t), TagId::case(3), ReaderId(2)));
        }
        Observations::from_batch(&ReadingBatch::from_readings(readings))
    }

    fn model(n: usize) -> LikelihoodModel {
        LikelihoodModel::new(ReadRateTable::diagonal(n, 0.8, 1e-4))
    }

    #[test]
    fn rfinfer_recovers_true_containment_and_location() {
        let obs = co_travel_obs();
        let model = model(3);
        let outcome = RfInfer::new(&model, &obs).run();
        assert_eq!(outcome.container_of(TagId::item(1)), Some(TagId::case(1)));
        // the real container has strictly larger weight than both decoys
        let w1 = outcome.weight(TagId::item(1), TagId::case(1)).unwrap();
        let w2 = outcome.weight(TagId::item(1), TagId::case(2)).unwrap();
        assert!(w1 > w2);
        // locations follow the path
        assert_eq!(
            outcome.location_of(TagId::case(1), Epoch(0)),
            Some(LocationId(0))
        );
        assert_eq!(
            outcome.location_of(TagId::case(1), Epoch(4)),
            Some(LocationId(1))
        );
        assert_eq!(
            outcome.location_of(TagId::item(1), Epoch(6)),
            Some(LocationId(2))
        );
        assert!(outcome.iterations >= 1);
        assert_eq!(outcome.num_locations, 3);
    }

    #[test]
    fn smoothing_over_containment_fills_in_missed_container_readings() {
        // The container is *never* read at location 1, but its object is;
        // the container's location at those epochs must still be 1.
        let mut readings = Vec::new();
        for t in 0..4u32 {
            readings.push(RawReading::new(Epoch(t), TagId::item(1), ReaderId(0)));
            readings.push(RawReading::new(Epoch(t), TagId::case(1), ReaderId(0)));
        }
        for t in 4..8u32 {
            readings.push(RawReading::new(Epoch(t), TagId::item(1), ReaderId(1)));
            // case 1 missed at location 1
        }
        let obs = Observations::from_batch(&ReadingBatch::from_readings(readings));
        let model = model(2);
        let outcome = RfInfer::new(&model, &obs).run();
        assert_eq!(outcome.container_of(TagId::item(1)), Some(TagId::case(1)));
        assert_eq!(
            outcome.location_of(TagId::case(1), Epoch(6)),
            Some(LocationId(1))
        );
        assert_eq!(
            outcome.location_of(TagId::item(1), Epoch(6)),
            Some(LocationId(1))
        );
    }

    #[test]
    fn prior_weights_bias_the_assignment() {
        // Locally the object is read together with case 2, while case 1 sits
        // at a different location; a large prior weight (accumulated at a
        // previous site) can still keep case 1, but a tiny one cannot.
        let mut readings = Vec::new();
        for t in 0..3u32 {
            readings.push(RawReading::new(Epoch(t), TagId::item(1), ReaderId(0)));
            readings.push(RawReading::new(Epoch(t), TagId::case(2), ReaderId(0)));
            readings.push(RawReading::new(Epoch(t), TagId::case(1), ReaderId(1)));
        }
        let obs = Observations::from_batch(&ReadingBatch::from_readings(readings));
        let model = model(2);

        let no_prior = RfInfer::new(&model, &obs).run();
        assert_eq!(no_prior.container_of(TagId::item(1)), Some(TagId::case(2)));

        let mut prior = PriorWeights::empty();
        prior.set(TagId::item(1), TagId::case(1), 1000.0);
        let with_prior = RfInfer::with_prior(&model, &obs, &prior).run();
        assert_eq!(
            with_prior.container_of(TagId::item(1)),
            Some(TagId::case(1))
        );
        // but with only a tiny prior the local evidence wins
        let mut weak = PriorWeights::empty();
        weak.set(TagId::item(1), TagId::case(1), 0.1);
        let weak_outcome = RfInfer::with_prior(&model, &obs, &weak).run();
        assert_eq!(
            weak_outcome.container_of(TagId::item(1)),
            Some(TagId::case(2))
        );
    }

    #[test]
    fn pruning_and_memoization_do_not_change_the_answer() {
        let obs = co_travel_obs();
        let model = model(3);
        let base = RfInfer::new(&model, &obs)
            .with_config(RfInferConfig {
                candidate_pruning: false,
                memoization: false,
                ..Default::default()
            })
            .run();
        let optimized = RfInfer::new(&model, &obs).run();
        assert_eq!(
            base.container_of(TagId::item(1)),
            optimized.container_of(TagId::item(1))
        );
        assert_eq!(
            base.location_of(TagId::case(1), Epoch(3)),
            optimized.location_of(TagId::case(1), Epoch(3))
        );
    }

    #[test]
    fn point_evidence_favours_the_real_container_in_the_belt_region() {
        let obs = co_travel_obs();
        let model = model(3);
        let outcome = RfInfer::new(&model, &obs).run();
        let evidence = &outcome.objects[&TagId::item(1)];
        // At epoch 3 (the object is at location 1, away from both decoys) the
        // real container's point evidence exceeds the decoy's.
        let real = &evidence.point_evidence[&TagId::case(1)];
        let decoy = &evidence.point_evidence[&TagId::case(2)];
        let real_at3 = real.iter().find(|(t, _)| *t == Epoch(3)).unwrap().1;
        let decoy_at3 = decoy.iter().find(|(t, _)| *t == Epoch(3)).unwrap().1;
        assert!(real_at3 > decoy_at3 + 1.0);
        // Cumulative evidence is the prefix sum of point evidence.
        let cum = evidence.cumulative_evidence(TagId::case(1));
        assert_eq!(cum.len(), real.len());
        let total: f64 = real.iter().map(|(_, e)| e).sum();
        assert!((cum.last().unwrap().1 - total).abs() < 1e-9);
        assert!(evidence.weight_margin().unwrap() > 0.0);
    }

    #[test]
    fn object_with_no_candidate_container_gets_fallback_location() {
        let readings = vec![
            RawReading::new(Epoch(0), TagId::item(7), ReaderId(1)),
            RawReading::new(Epoch(1), TagId::item(7), ReaderId(1)),
        ];
        let obs = Observations::from_batch(&ReadingBatch::from_readings(readings));
        let model = model(2);
        let outcome = RfInfer::new(&model, &obs).run();
        assert_eq!(outcome.container_of(TagId::item(7)), None);
        assert_eq!(
            outcome.location_of(TagId::item(7), Epoch(1)),
            Some(LocationId(1))
        );
        let events = outcome.events_at(Epoch(1));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].container, None);
        assert_eq!(events[0].location, LocationId(1));
    }

    #[test]
    fn events_at_reports_location_and_container() {
        let obs = co_travel_obs();
        let model = model(3);
        let outcome = RfInfer::new(&model, &obs).run();
        let events = outcome.events_at(Epoch(5));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].tag, TagId::item(1));
        assert_eq!(events[0].container, Some(TagId::case(1)));
        assert_eq!(events[0].location, LocationId(2));
    }

    #[test]
    fn incremental_run_is_bit_identical_and_reuses_the_cache() {
        let model = model(3);
        let mut dirty = DirtySet::new();
        let mut obs = Observations::new();
        let feed = |obs: &mut Observations, dirty: &mut DirtySet, t: u32, loc: u16| {
            for tag in [TagId::item(1), TagId::case(1)] {
                let reading = RawReading::new(Epoch(t), tag, ReaderId(loc));
                if obs.insert(reading) {
                    dirty.record(tag, Epoch(t));
                }
            }
        };
        for t in 0..6u32 {
            feed(&mut obs, &mut dirty, t, 0);
        }
        let mut cache = EvidenceCache::new();
        let first = std::mem::take(&mut dirty);
        let (out1, stats1) = RfInfer::new(&model, &obs).run_incremental(&mut cache, &first);
        assert_eq!(out1, RfInfer::new(&model, &obs).run(), "first run == full");
        assert_eq!(
            stats1.posteriors_reused, 0,
            "cold cache has nothing to reuse"
        );
        assert!(cache.cached_posteriors() > 0);

        // New readings arrive; only they should be recomputed.
        for t in 6..9u32 {
            feed(&mut obs, &mut dirty, t, 1);
        }
        let second = std::mem::take(&mut dirty);
        let (out2, stats2) = RfInfer::new(&model, &obs).run_incremental(&mut cache, &second);
        assert_eq!(out2, RfInfer::new(&model, &obs).run(), "second run == full");
        assert!(
            stats2.posteriors_reused > 0,
            "old epochs come from the cache"
        );
        assert!(stats2.evidence_reused > 0);
        assert!(stats2.posteriors_computed > 0, "new epochs are computed");

        // A third run with nothing new reuses everything.
        let (out3, stats3) =
            RfInfer::new(&model, &obs).run_incremental(&mut cache, &DirtySet::new());
        assert_eq!(out3, out2);
        assert_eq!(stats3.posteriors_computed, 0);
        assert_eq!(stats3.evidence_computed, 0);
    }

    #[test]
    fn dirty_set_records_marks_and_unions() {
        let mut d = DirtySet::new();
        assert!(d.is_empty());
        d.record(TagId::item(1), Epoch(3));
        d.record_all(TagId::item(1), [Epoch(5), Epoch(7)]);
        d.record_all(TagId::item(2), Vec::<Epoch>::new());
        d.mark(TagId::case(9));
        assert_eq!(d.num_tags(), 2, "empty batches create no entry; marks do");
        assert_eq!(d.epochs_of(TagId::item(1)).unwrap().len(), 3);
        assert!(d.epochs_of(TagId::case(9)).unwrap().is_empty());
        assert!(d.epochs_of(TagId::item(2)).is_none());
        let union = d.union_for([TagId::item(1), TagId::case(9), TagId::item(5)]);
        assert_eq!(union.len(), 3);
        let clamped = d.union_for_until([TagId::item(1)], Some(Epoch(5)));
        assert_eq!(clamped.len(), 2, "changes past the cutoff are ignored");
        d.clear();
        assert!(d.is_empty());
        let empty = EvidenceCache::new();
        assert_eq!(empty.cached_posteriors(), 0);
    }

    #[test]
    fn prior_weight_collection_behaves() {
        let mut p = PriorWeights::empty();
        assert!(p.is_empty());
        p.set(TagId::item(1), TagId::case(1), 2.0);
        p.add(TagId::item(1), TagId::case(1), 3.0);
        p.add(TagId::item(1), TagId::case(2), -1.0);
        assert_eq!(p.get(TagId::item(1), TagId::case(1)), 5.0);
        assert_eq!(p.get(TagId::item(1), TagId::case(9)), 0.0);
        assert_eq!(p.containers_for(TagId::item(1)).len(), 2);
        assert_eq!(p.objects().count(), 1);
        let mut q = PriorWeights::empty();
        q.set(TagId::item(1), TagId::case(1), 1.0);
        q.set(TagId::item(2), TagId::case(3), 4.0);
        p.merge(&q);
        assert_eq!(p.get(TagId::item(1), TagId::case(1)), 6.0);
        assert_eq!(p.get(TagId::item(2), TagId::case(3)), 4.0);
    }
}
