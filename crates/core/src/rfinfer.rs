//! RFINFER — the paper's EM algorithm for joint containment and location
//! inference (Section 3.2, Algorithm 1), including the optimizations of
//! Appendix A.3 (candidate pruning, memoization, sparse likelihood
//! evaluation) and support for prior co-location weights imported from a
//! previous site (the collapsed inference state of Section 4.1).

use crate::likelihood::LikelihoodModel;
use crate::observations::Observations;
use crate::posterior::{container_posterior, Posterior};
use rfid_types::{ContainmentMap, Epoch, LocationId, ObjectEvent, TagId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs of the RFINFER algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RfInferConfig {
    /// Maximum number of candidate containers considered per object
    /// (candidate pruning, Appendix A.3). Ignored when
    /// `candidate_pruning` is false.
    pub candidate_limit: usize,
    /// Maximum number of EM iterations; the algorithm usually converges in
    /// just a few.
    pub max_iterations: usize,
    /// Whether to restrict each object's candidate containers to the most
    /// frequently co-located ones.
    pub candidate_pruning: bool,
    /// Whether to reuse a container's posterior from the previous iteration
    /// when its member set did not change (the memoization optimization;
    /// introduces no error).
    pub memoization: bool,
}

impl Default for RfInferConfig {
    fn default() -> RfInferConfig {
        RfInferConfig {
            candidate_limit: 5,
            max_iterations: 10,
            candidate_pruning: true,
            memoization: true,
        }
    }
}

/// Prior co-location weights carried over from previous sites (the collapsed
/// inference state): for an object, a map from candidate container to the
/// accumulated weight `w_co` computed elsewhere. The M-step simply adds these
/// to the locally computed weights.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PriorWeights {
    map: BTreeMap<TagId, BTreeMap<TagId, f64>>,
}

impl PriorWeights {
    /// No prior information.
    pub fn empty() -> PriorWeights {
        PriorWeights::default()
    }

    /// Set the prior weight of `(object, container)`.
    pub fn set(&mut self, object: TagId, container: TagId, weight: f64) {
        self.map
            .entry(object)
            .or_default()
            .insert(container, weight);
    }

    /// Add to the prior weight of `(object, container)`.
    pub fn add(&mut self, object: TagId, container: TagId, weight: f64) {
        *self
            .map
            .entry(object)
            .or_default()
            .entry(container)
            .or_insert(0.0) += weight;
    }

    /// The prior weight of `(object, container)`, zero if absent.
    pub fn get(&self, object: TagId, container: TagId) -> f64 {
        self.map
            .get(&object)
            .and_then(|m| m.get(&container))
            .copied()
            .unwrap_or(0.0)
    }

    /// Containers with prior information for the given object.
    pub fn containers_for(&self, object: TagId) -> Vec<TagId> {
        self.map
            .get(&object)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Objects with prior information.
    pub fn objects(&self) -> impl Iterator<Item = TagId> + '_ {
        self.map.keys().copied()
    }

    /// Whether no prior information is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Merge another set of priors into this one (weights add up).
    pub fn merge(&mut self, other: &PriorWeights) {
        for (o, m) in &other.map {
            for (c, w) in m {
                self.add(*o, *c, *w);
            }
        }
    }
}

/// Everything the M-step learned about one object.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectEvidence {
    /// Candidate containers considered for this object (pruned set).
    pub candidates: Vec<TagId>,
    /// Total co-location weight `w_co` per candidate (Eq. 5), including any
    /// prior weight.
    pub weights: BTreeMap<TagId, f64>,
    /// Point evidence `e_co(t)` (Eq. 7) per candidate, at every epoch the
    /// object was observed, in epoch order.
    pub point_evidence: BTreeMap<TagId, Vec<(Epoch, f64)>>,
    /// The container chosen by the M-step (argmax weight), if any candidate
    /// existed.
    pub assigned: Option<TagId>,
}

impl ObjectEvidence {
    /// Cumulative evidence `E_co(t)` for one candidate: the running sum of
    /// point evidence up to and including each epoch.
    pub fn cumulative_evidence(&self, container: TagId) -> Vec<(Epoch, f64)> {
        let mut total = 0.0;
        self.point_evidence
            .get(&container)
            .map(|points| {
                points
                    .iter()
                    .map(|&(t, e)| {
                        total += e;
                        (t, total)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The best and second-best candidate weights, if at least two candidates
    /// exist. Used by history truncation to decide whether the evidence is
    /// decisive.
    pub fn weight_margin(&self) -> Option<f64> {
        let mut ws: Vec<f64> = self.weights.values().copied().collect();
        if ws.len() < 2 {
            return None;
        }
        ws.sort_by(|a, b| b.partial_cmp(a).unwrap());
        Some(ws[0] - ws[1])
    }
}

/// The result of one RFINFER run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceOutcome {
    /// Inferred containment: each object mapped to its most likely container.
    pub containment: ContainmentMap,
    /// Per-object evidence (weights, point evidence, candidates).
    pub objects: BTreeMap<TagId, ObjectEvidence>,
    /// MAP location estimates per tag and epoch. For containers these come
    /// from the E-step posterior; for objects without an assigned container
    /// they come from the object's own readings.
    pub tag_locations: BTreeMap<TagId, Vec<(Epoch, LocationId)>>,
    /// Number of EM iterations executed before convergence.
    pub iterations: usize,
    /// Number of discrete locations in the model.
    pub num_locations: usize,
}

impl InferenceOutcome {
    /// The location estimate for `tag` at epoch `t`: the estimate at the
    /// nearest epoch for which a posterior was computed. Objects inherit the
    /// location of their inferred container (smoothing over containment).
    pub fn location_of(&self, tag: TagId, t: Epoch) -> Option<LocationId> {
        let lookup = |key: TagId| -> Option<LocationId> {
            let locs = self.tag_locations.get(&key)?;
            if locs.is_empty() {
                return None;
            }
            let idx = locs.partition_point(|&(e, _)| e <= t);
            let candidate = if idx == 0 { &locs[0] } else { &locs[idx - 1] };
            // prefer the nearest estimate in time
            let best = if idx < locs.len() {
                let after = &locs[idx];
                if after.0.since(t) < t.since(candidate.0) {
                    after
                } else {
                    candidate
                }
            } else {
                candidate
            };
            Some(best.1)
        };
        if tag.is_object() {
            if let Some(container) = self.containment.container_of(tag) {
                if let Some(loc) = lookup(container) {
                    return Some(loc);
                }
            }
        }
        lookup(tag)
    }

    /// The inferred container of an object.
    pub fn container_of(&self, object: TagId) -> Option<TagId> {
        self.containment.container_of(object)
    }

    /// The co-location weight of an (object, container) pair, if the pair was
    /// considered.
    pub fn weight(&self, object: TagId, container: TagId) -> Option<f64> {
        self.objects
            .get(&object)
            .and_then(|e| e.weights.get(&container))
            .copied()
    }

    /// Build enriched object events `(time, tag, location, container)` at the
    /// given epoch for every object with a location estimate.
    pub fn events_at(&self, t: Epoch) -> Vec<ObjectEvent> {
        let mut events = Vec::new();
        for object in self.objects.keys() {
            if let Some(loc) = self.location_of(*object, t) {
                events.push(ObjectEvent::new(
                    t,
                    *object,
                    loc,
                    self.containment.container_of(*object),
                ));
            }
        }
        events
    }
}

/// The RFINFER algorithm bound to a likelihood model, an observation index
/// and optional prior weights.
pub struct RfInfer<'a> {
    model: &'a LikelihoodModel,
    obs: &'a Observations,
    prior: &'a PriorWeights,
    config: RfInferConfig,
}

impl<'a> RfInfer<'a> {
    /// Create an inference run with no prior state.
    pub fn new(model: &'a LikelihoodModel, obs: &'a Observations) -> RfInfer<'a> {
        static EMPTY: once_empty::Lazy = once_empty::Lazy;
        RfInfer {
            model,
            obs,
            prior: EMPTY.get(),
            config: RfInferConfig::default(),
        }
    }

    /// Create an inference run with prior weights imported from another site.
    pub fn with_prior(
        model: &'a LikelihoodModel,
        obs: &'a Observations,
        prior: &'a PriorWeights,
    ) -> RfInfer<'a> {
        RfInfer {
            model,
            obs,
            prior,
            config: RfInferConfig::default(),
        }
    }

    /// Override the configuration (builder style).
    pub fn with_config(mut self, config: RfInferConfig) -> RfInfer<'a> {
        self.config = config;
        self
    }

    /// Run EM to convergence and return the inferred containment, locations
    /// and evidence.
    pub fn run(&self) -> InferenceOutcome {
        let objects = self.obs.objects();
        let all_containers = self.obs.containers();

        // Candidate pruning: the containers most frequently co-located with
        // each object, plus any container we have prior information about.
        let mut candidates: BTreeMap<TagId, Vec<TagId>> = BTreeMap::new();
        for &o in &objects {
            let mut cands = if self.config.candidate_pruning {
                self.obs
                    .candidate_containers(o, self.config.candidate_limit)
            } else {
                all_containers.clone()
            };
            for c in self.prior.containers_for(o) {
                if !cands.contains(&c) {
                    cands.push(c);
                }
            }
            candidates.insert(o, cands);
        }

        // Initial assignment: the strongest prior if one exists, otherwise
        // the most frequently co-located candidate.
        let mut assignment: BTreeMap<TagId, TagId> = BTreeMap::new();
        for (&o, cands) in &candidates {
            if cands.is_empty() {
                continue;
            }
            let by_prior = cands
                .iter()
                .map(|&c| (c, self.prior.get(o, c)))
                .filter(|&(_, w)| w != 0.0)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let initial = by_prior.map(|(c, _)| c).unwrap_or(cands[0]);
            assignment.insert(o, initial);
        }

        // Which epochs each container's posterior is needed at: every epoch
        // at which an object that lists it as a candidate was observed, plus
        // the container's own observation epochs.
        let relevant_containers: BTreeSet<TagId> = candidates
            .values()
            .flat_map(|cs| cs.iter().copied())
            .chain(all_containers.iter().copied())
            .collect();
        let mut needed_epochs: BTreeMap<TagId, BTreeSet<Epoch>> = BTreeMap::new();
        for &c in &relevant_containers {
            let own: BTreeSet<Epoch> = self.obs.obs_for(c).iter().map(|o| o.epoch).collect();
            needed_epochs.insert(c, own);
        }
        for (&o, cands) in &candidates {
            let epochs: Vec<Epoch> = self.obs.obs_for(o).iter().map(|x| x.epoch).collect();
            for &c in cands {
                needed_epochs
                    .entry(c)
                    .or_default()
                    .extend(epochs.iter().copied());
            }
        }

        // EM loop.
        let mut posteriors: BTreeMap<TagId, BTreeMap<Epoch, Posterior>> = BTreeMap::new();
        let mut members_prev: BTreeMap<TagId, Vec<TagId>> = BTreeMap::new();
        let mut weights: BTreeMap<TagId, BTreeMap<TagId, f64>> = BTreeMap::new();
        let mut iterations = 0;
        for iter in 0..self.config.max_iterations.max(1) {
            iterations = iter + 1;
            // E-step (Eq. 4): posterior over each relevant container's
            // location at every needed epoch, smoothing over its currently
            // assigned members.
            for &c in &relevant_containers {
                let members: Vec<TagId> = assignment
                    .iter()
                    .filter(|(_, cc)| **cc == c)
                    .map(|(o, _)| *o)
                    .collect();
                let unchanged = members_prev.get(&c).map(|m| *m == members).unwrap_or(false);
                if self.config.memoization && unchanged && posteriors.contains_key(&c) {
                    continue;
                }
                let mut per_epoch = BTreeMap::new();
                for &t in needed_epochs.get(&c).into_iter().flatten() {
                    let container_readers = self.obs.readers_at(c, t);
                    let member_readers: Vec<Option<&[LocationId]>> =
                        members.iter().map(|&m| self.obs.readers_at(m, t)).collect();
                    per_epoch.insert(
                        t,
                        container_posterior(self.model, container_readers, &member_readers),
                    );
                }
                posteriors.insert(c, per_epoch);
                members_prev.insert(c, members);
            }

            // M-step (Eq. 5): co-location weights and the new assignment.
            let mut new_assignment: BTreeMap<TagId, TagId> = BTreeMap::new();
            for (&o, cands) in &candidates {
                let mut per_container = BTreeMap::new();
                for &c in cands {
                    let mut w = self.prior.get(o, c);
                    if let Some(posterior_map) = posteriors.get(&c) {
                        for obs_at in self.obs.obs_for(o) {
                            if let Some(q) = posterior_map.get(&obs_at.epoch) {
                                w += q.expect(|a| self.model.tag_loglik(&obs_at.readers, a));
                            }
                        }
                    }
                    per_container.insert(c, w);
                }
                if let Some((&best, _)) = per_container
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                {
                    new_assignment.insert(o, best);
                }
                weights.insert(o, per_container);
            }

            let converged = new_assignment == assignment;
            assignment = new_assignment;
            if converged {
                break;
            }
        }

        self.build_outcome(candidates, assignment, weights, posteriors, iterations)
    }

    fn build_outcome(
        &self,
        candidates: BTreeMap<TagId, Vec<TagId>>,
        assignment: BTreeMap<TagId, TagId>,
        weights: BTreeMap<TagId, BTreeMap<TagId, f64>>,
        posteriors: BTreeMap<TagId, BTreeMap<Epoch, Posterior>>,
        iterations: usize,
    ) -> InferenceOutcome {
        // Point evidence per (object, candidate) from the final posteriors.
        let mut objects = BTreeMap::new();
        for (&o, cands) in &candidates {
            let mut point_evidence = BTreeMap::new();
            for &c in cands {
                let mut points = Vec::new();
                if let Some(posterior_map) = posteriors.get(&c) {
                    for obs_at in self.obs.obs_for(o) {
                        if let Some(q) = posterior_map.get(&obs_at.epoch) {
                            let e = q.expect(|a| self.model.tag_loglik(&obs_at.readers, a));
                            points.push((obs_at.epoch, e));
                        }
                    }
                }
                point_evidence.insert(c, points);
            }
            objects.insert(
                o,
                ObjectEvidence {
                    candidates: cands.clone(),
                    weights: weights.get(&o).cloned().unwrap_or_default(),
                    point_evidence,
                    assigned: assignment.get(&o).copied(),
                },
            );
        }

        // Location estimates: containers from their posteriors — but only at
        // *informative* epochs, i.e. epochs at which the container itself or
        // one of its assigned members was observed. Posteriors computed at
        // other epochs (they exist because some object merely lists the
        // container as a candidate) carry no location information and would
        // pollute the estimates. Objects with no assigned container fall
        // back to their own readings.
        let mut tag_locations: BTreeMap<TagId, Vec<(Epoch, LocationId)>> = BTreeMap::new();
        for (c, per_epoch) in &posteriors {
            let members: Vec<TagId> = assignment
                .iter()
                .filter(|(_, cc)| **cc == *c)
                .map(|(o, _)| *o)
                .collect();
            let informative = |t: Epoch| {
                self.obs.readers_at(*c, t).is_some()
                    || members.iter().any(|m| self.obs.readers_at(*m, t).is_some())
            };
            let locs: Vec<(Epoch, LocationId)> = per_epoch
                .iter()
                .filter(|(t, _)| informative(**t))
                .map(|(t, q)| (*t, q.map_location()))
                .collect();
            if !locs.is_empty() {
                tag_locations.insert(*c, locs);
            }
        }
        for &o in candidates.keys() {
            if assignment.contains_key(&o) {
                continue;
            }
            let locs: Vec<(Epoch, LocationId)> = self
                .obs
                .obs_for(o)
                .iter()
                .map(|obs_at| {
                    let q = container_posterior(self.model, Some(&obs_at.readers), &[]);
                    (obs_at.epoch, q.map_location())
                })
                .collect();
            if !locs.is_empty() {
                tag_locations.insert(o, locs);
            }
        }

        let mut containment = ContainmentMap::new();
        for (o, c) in &assignment {
            containment.set(*o, *c);
        }

        InferenceOutcome {
            containment,
            objects,
            tag_locations,
            iterations,
            num_locations: self.model.num_locations(),
        }
    }
}

/// A tiny helper that hands out a `'static` empty [`PriorWeights`] so that
/// [`RfInfer::new`] does not force callers to keep one alive.
mod once_empty {
    use super::PriorWeights;
    use std::sync::OnceLock;

    pub struct Lazy;

    impl Lazy {
        pub fn get(&self) -> &'static PriorWeights {
            static EMPTY: OnceLock<PriorWeights> = OnceLock::new();
            EMPTY.get_or_init(PriorWeights::empty)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_types::{RawReading, ReadRateTable, ReaderId, ReadingBatch};

    /// Build observations where `item(1)` truly travels with `case(1)`
    /// through locations 0 -> 1 -> 2, while `case(2)` is co-located only at
    /// location 0 and `case(3)` never is. Readings are deterministic (no
    /// noise) to make assertions exact.
    fn co_travel_obs() -> Observations {
        let mut readings = Vec::new();
        let path = [(0u32, 0u16), (1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (6, 2)];
        for &(t, loc) in &path {
            readings.push(RawReading::new(Epoch(t), TagId::item(1), ReaderId(loc)));
            readings.push(RawReading::new(Epoch(t), TagId::case(1), ReaderId(loc)));
        }
        // case 2 stays at location 0 the whole time
        for t in 0..7u32 {
            readings.push(RawReading::new(Epoch(t), TagId::case(2), ReaderId(0)));
        }
        // case 3 stays at location 2
        for t in 0..7u32 {
            readings.push(RawReading::new(Epoch(t), TagId::case(3), ReaderId(2)));
        }
        Observations::from_batch(&ReadingBatch::from_readings(readings))
    }

    fn model(n: usize) -> LikelihoodModel {
        LikelihoodModel::new(ReadRateTable::diagonal(n, 0.8, 1e-4))
    }

    #[test]
    fn rfinfer_recovers_true_containment_and_location() {
        let obs = co_travel_obs();
        let model = model(3);
        let outcome = RfInfer::new(&model, &obs).run();
        assert_eq!(outcome.container_of(TagId::item(1)), Some(TagId::case(1)));
        // the real container has strictly larger weight than both decoys
        let w1 = outcome.weight(TagId::item(1), TagId::case(1)).unwrap();
        let w2 = outcome.weight(TagId::item(1), TagId::case(2)).unwrap();
        assert!(w1 > w2);
        // locations follow the path
        assert_eq!(
            outcome.location_of(TagId::case(1), Epoch(0)),
            Some(LocationId(0))
        );
        assert_eq!(
            outcome.location_of(TagId::case(1), Epoch(4)),
            Some(LocationId(1))
        );
        assert_eq!(
            outcome.location_of(TagId::item(1), Epoch(6)),
            Some(LocationId(2))
        );
        assert!(outcome.iterations >= 1);
        assert_eq!(outcome.num_locations, 3);
    }

    #[test]
    fn smoothing_over_containment_fills_in_missed_container_readings() {
        // The container is *never* read at location 1, but its object is;
        // the container's location at those epochs must still be 1.
        let mut readings = Vec::new();
        for t in 0..4u32 {
            readings.push(RawReading::new(Epoch(t), TagId::item(1), ReaderId(0)));
            readings.push(RawReading::new(Epoch(t), TagId::case(1), ReaderId(0)));
        }
        for t in 4..8u32 {
            readings.push(RawReading::new(Epoch(t), TagId::item(1), ReaderId(1)));
            // case 1 missed at location 1
        }
        let obs = Observations::from_batch(&ReadingBatch::from_readings(readings));
        let model = model(2);
        let outcome = RfInfer::new(&model, &obs).run();
        assert_eq!(outcome.container_of(TagId::item(1)), Some(TagId::case(1)));
        assert_eq!(
            outcome.location_of(TagId::case(1), Epoch(6)),
            Some(LocationId(1))
        );
        assert_eq!(
            outcome.location_of(TagId::item(1), Epoch(6)),
            Some(LocationId(1))
        );
    }

    #[test]
    fn prior_weights_bias_the_assignment() {
        // Locally the object is read together with case 2, while case 1 sits
        // at a different location; a large prior weight (accumulated at a
        // previous site) can still keep case 1, but a tiny one cannot.
        let mut readings = Vec::new();
        for t in 0..3u32 {
            readings.push(RawReading::new(Epoch(t), TagId::item(1), ReaderId(0)));
            readings.push(RawReading::new(Epoch(t), TagId::case(2), ReaderId(0)));
            readings.push(RawReading::new(Epoch(t), TagId::case(1), ReaderId(1)));
        }
        let obs = Observations::from_batch(&ReadingBatch::from_readings(readings));
        let model = model(2);

        let no_prior = RfInfer::new(&model, &obs).run();
        assert_eq!(no_prior.container_of(TagId::item(1)), Some(TagId::case(2)));

        let mut prior = PriorWeights::empty();
        prior.set(TagId::item(1), TagId::case(1), 1000.0);
        let with_prior = RfInfer::with_prior(&model, &obs, &prior).run();
        assert_eq!(
            with_prior.container_of(TagId::item(1)),
            Some(TagId::case(1))
        );
        // but with only a tiny prior the local evidence wins
        let mut weak = PriorWeights::empty();
        weak.set(TagId::item(1), TagId::case(1), 0.1);
        let weak_outcome = RfInfer::with_prior(&model, &obs, &weak).run();
        assert_eq!(
            weak_outcome.container_of(TagId::item(1)),
            Some(TagId::case(2))
        );
    }

    #[test]
    fn pruning_and_memoization_do_not_change_the_answer() {
        let obs = co_travel_obs();
        let model = model(3);
        let base = RfInfer::new(&model, &obs)
            .with_config(RfInferConfig {
                candidate_pruning: false,
                memoization: false,
                ..Default::default()
            })
            .run();
        let optimized = RfInfer::new(&model, &obs).run();
        assert_eq!(
            base.container_of(TagId::item(1)),
            optimized.container_of(TagId::item(1))
        );
        assert_eq!(
            base.location_of(TagId::case(1), Epoch(3)),
            optimized.location_of(TagId::case(1), Epoch(3))
        );
    }

    #[test]
    fn point_evidence_favours_the_real_container_in_the_belt_region() {
        let obs = co_travel_obs();
        let model = model(3);
        let outcome = RfInfer::new(&model, &obs).run();
        let evidence = &outcome.objects[&TagId::item(1)];
        // At epoch 3 (the object is at location 1, away from both decoys) the
        // real container's point evidence exceeds the decoy's.
        let real = &evidence.point_evidence[&TagId::case(1)];
        let decoy = &evidence.point_evidence[&TagId::case(2)];
        let real_at3 = real.iter().find(|(t, _)| *t == Epoch(3)).unwrap().1;
        let decoy_at3 = decoy.iter().find(|(t, _)| *t == Epoch(3)).unwrap().1;
        assert!(real_at3 > decoy_at3 + 1.0);
        // Cumulative evidence is the prefix sum of point evidence.
        let cum = evidence.cumulative_evidence(TagId::case(1));
        assert_eq!(cum.len(), real.len());
        let total: f64 = real.iter().map(|(_, e)| e).sum();
        assert!((cum.last().unwrap().1 - total).abs() < 1e-9);
        assert!(evidence.weight_margin().unwrap() > 0.0);
    }

    #[test]
    fn object_with_no_candidate_container_gets_fallback_location() {
        let readings = vec![
            RawReading::new(Epoch(0), TagId::item(7), ReaderId(1)),
            RawReading::new(Epoch(1), TagId::item(7), ReaderId(1)),
        ];
        let obs = Observations::from_batch(&ReadingBatch::from_readings(readings));
        let model = model(2);
        let outcome = RfInfer::new(&model, &obs).run();
        assert_eq!(outcome.container_of(TagId::item(7)), None);
        assert_eq!(
            outcome.location_of(TagId::item(7), Epoch(1)),
            Some(LocationId(1))
        );
        let events = outcome.events_at(Epoch(1));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].container, None);
        assert_eq!(events[0].location, LocationId(1));
    }

    #[test]
    fn events_at_reports_location_and_container() {
        let obs = co_travel_obs();
        let model = model(3);
        let outcome = RfInfer::new(&model, &obs).run();
        let events = outcome.events_at(Epoch(5));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].tag, TagId::item(1));
        assert_eq!(events[0].container, Some(TagId::case(1)));
        assert_eq!(events[0].location, LocationId(2));
    }

    #[test]
    fn prior_weight_collection_behaves() {
        let mut p = PriorWeights::empty();
        assert!(p.is_empty());
        p.set(TagId::item(1), TagId::case(1), 2.0);
        p.add(TagId::item(1), TagId::case(1), 3.0);
        p.add(TagId::item(1), TagId::case(2), -1.0);
        assert_eq!(p.get(TagId::item(1), TagId::case(1)), 5.0);
        assert_eq!(p.get(TagId::item(1), TagId::case(9)), 0.0);
        assert_eq!(p.containers_for(TagId::item(1)).len(), 2);
        assert_eq!(p.objects().count(), 1);
        let mut q = PriorWeights::empty();
        q.set(TagId::item(1), TagId::case(1), 1.0);
        q.set(TagId::item(2), TagId::case(3), 4.0);
        p.merge(&q);
        assert_eq!(p.get(TagId::item(1), TagId::case(1)), 6.0);
        assert_eq!(p.get(TagId::item(2), TagId::case(3)), 4.0);
    }
}
