//! Configuration of the streaming inference engine.

use crate::rfinfer::RfInferConfig;
use crate::truncate::TruncationPolicy;
use serde::{Deserialize, Serialize};

/// How the change-point detection threshold δ is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdPolicy {
    /// Use a fixed threshold value.
    Fixed(f64),
    /// Calibrate offline by sampling hypothetical observation sequences from
    /// the model (Section 3.3); calibration happens once, lazily, before the
    /// first inference run.
    Calibrated {
        /// Number of sampled sequences.
        samples: usize,
        /// Length of each sequence in epochs.
        epochs: usize,
    },
}

impl Default for ThresholdPolicy {
    fn default() -> ThresholdPolicy {
        ThresholdPolicy::Calibrated {
            samples: 60,
            epochs: 60,
        }
    }
}

/// Configuration of change-point detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ChangeDetectionConfig {
    /// Threshold selection policy.
    pub threshold: ThresholdPolicy,
}

/// Configuration of the streaming [`InferenceEngine`](crate::InferenceEngine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Seconds between two inference runs (the paper's default is 300 s).
    pub period_secs: u32,
    /// Length of the recent history `H̄` retained in addition to critical
    /// regions (the paper's default is 600 s).
    pub recent_history_secs: u32,
    /// History-truncation policy applied after every inference run.
    pub truncation: TruncationPolicy,
    /// RFINFER tuning knobs.
    pub rfinfer: RfInferConfig,
    /// Change-point detection; `None` disables it (stable-containment
    /// deployments).
    pub change_detection: Option<ChangeDetectionConfig>,
    /// Whether periodic runs reuse the cross-run evidence cache
    /// ([`RfInfer::run_incremental`](crate::RfInfer::run_incremental))
    /// instead of recomputing from scratch. Either way the outcome is
    /// bit-identical; incremental runs are just faster. On by default.
    pub incremental: bool,
    /// RNG seed used for threshold calibration.
    pub seed: u64,
}

impl Default for InferenceConfig {
    fn default() -> InferenceConfig {
        InferenceConfig {
            period_secs: 300,
            recent_history_secs: 600,
            truncation: TruncationPolicy::default(),
            rfinfer: RfInferConfig::default(),
            change_detection: Some(ChangeDetectionConfig::default()),
            incremental: true,
            seed: 23,
        }
    }
}

impl InferenceConfig {
    /// Builder-style setter for the inference period.
    pub fn with_period(mut self, secs: u32) -> Self {
        self.period_secs = secs;
        self
    }

    /// Builder-style setter for the recent-history length `H̄`.
    pub fn with_recent_history(mut self, secs: u32) -> Self {
        self.recent_history_secs = secs;
        self
    }

    /// Builder-style setter for the truncation policy.
    pub fn with_truncation(mut self, policy: TruncationPolicy) -> Self {
        self.truncation = policy;
        self
    }

    /// Disable change-point detection.
    pub fn without_change_detection(mut self) -> Self {
        self.change_detection = None;
        self
    }

    /// Enable or disable incremental (cached-evidence) inference runs.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Select the solver: dense-interned columnar EM (`true`, the default)
    /// or the `BTreeMap`-keyed reference solver (`false`). Both are
    /// bit-identical; the tree solver exists as the equivalence-testing and
    /// benchmarking baseline.
    pub fn with_dense(mut self, dense: bool) -> Self {
        self.rfinfer.dense = dense;
        self
    }

    /// Enable or disable the dense solver's chunk-of-8 vector kernels.
    /// Outcomes are bit-identical either way; `false` selects the scalar
    /// reference loops the equivalence tests compare against.
    pub fn with_vector_kernels(mut self, on: bool) -> Self {
        self.rfinfer.vector_kernels = on;
        self
    }

    /// Opt into the reassociating `fast_math` kernels (multi-accumulator
    /// sums/dots). **Not** bit-identical to the reference summation order;
    /// off by default and excluded from the equivalence guarantees.
    pub fn with_fast_math(mut self, on: bool) -> Self {
        self.rfinfer.fast_math = on;
        self
    }

    /// Use a fixed change-point threshold.
    pub fn with_fixed_threshold(mut self, delta: f64) -> Self {
        self.change_detection = Some(ChangeDetectionConfig {
            threshold: ThresholdPolicy::Fixed(delta),
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = InferenceConfig::default();
        assert_eq!(c.period_secs, 300);
        assert_eq!(c.recent_history_secs, 600);
        assert!(c.incremental, "incremental runs are the default");
        assert!(!c.clone().with_incremental(false).incremental);
        assert!(c.change_detection.is_some());
        assert!(matches!(
            c.truncation,
            TruncationPolicy::CriticalRegion { .. }
        ));
    }

    #[test]
    fn builders_compose() {
        let c = InferenceConfig::default()
            .with_period(120)
            .with_recent_history(500)
            .with_truncation(TruncationPolicy::Full)
            .with_fixed_threshold(40.0);
        assert_eq!(c.period_secs, 120);
        assert_eq!(c.recent_history_secs, 500);
        assert_eq!(c.truncation, TruncationPolicy::Full);
        assert_eq!(
            c.change_detection.unwrap().threshold,
            ThresholdPolicy::Fixed(40.0)
        );
        let off = c.without_change_detection();
        assert!(off.change_detection.is_none());
    }
}
