//! # rfid-core
//!
//! RFINFER — probabilistic location and containment inference over noisy RFID
//! streams, reproducing the inference module of *"Distributed Inference and
//! Query Processing for RFID Tracking and Monitoring"* (Cao, Sutton, Diao,
//! Shenoy; PVLDB 4(5), 2011).
//!
//! The inference module translates raw noisy RFID readings
//! `(time, tag, reader)` into high-level events
//! `(time, tag, location, container)`. Its key idea is *smoothing over
//! containment relations* rather than over time: whenever any object of a
//! container is read, the container (and with it all of its other objects)
//! is localized, and conversely the repeated co-location of an object with a
//! container is evidence for the containment relation itself.
//!
//! ## Crate layout
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`observations`] | §3.1 | sparse index over raw readings, co-location counting, candidate pruning |
//! | [`likelihood`]   | §3.1, Eq. 1 | per-tag observation likelihoods under the read-rate model `pi(r, a)` |
//! | [`posterior`]    | §3.2, Eq. 4 | the E-step posterior over a container's location |
//! | [`rfinfer`]      | §3.2, Alg. 1 | the EM algorithm, co-location weights (Eq. 5), point evidence (Eq. 7) |
//! | [`dense`]        | App. A.3 | the default dense-interned columnar EM solver (bit-identical to the reference) |
//! | [`changepoint`]  | §3.3, App. A.2 | GLR change-point statistic and offline threshold calibration |
//! | [`truncate`]     | §4.1 | critical-region history truncation and the simpler window/full policies |
//! | [`state`]        | §4.1 | collapsed / critical-region migration state |
//! | [`engine`]       | §3–4 | the streaming engine a site runs: periodic inference, change detection, truncation, state migration |
//!
//! ## Quick example
//!
//! ```
//! use rfid_core::{InferenceConfig, InferenceEngine};
//! use rfid_types::{Epoch, RawReading, ReadRateTable, ReaderId, TagId};
//!
//! // Two locations, readers detect co-located tags 80% of the time.
//! let rates = ReadRateTable::diagonal(2, 0.8, 1e-4);
//! let mut engine = InferenceEngine::new(
//!     InferenceConfig::default().with_period(10).without_change_detection(),
//!     rates,
//! );
//!
//! // An item and its case are repeatedly read together at location 0.
//! for t in 0..10 {
//!     engine.observe(RawReading::new(Epoch(t), TagId::item(1), ReaderId(0)));
//!     engine.observe(RawReading::new(Epoch(t), TagId::case(1), ReaderId(0)));
//! }
//! engine.run_inference(Epoch(10));
//! assert_eq!(engine.container_of(TagId::item(1)), Some(TagId::case(1)));
//! ```

#![warn(missing_docs)]
// The one crate allowed to contain `unsafe` (the AVX2 dense kernels): every
// unsafe operation must be spelled out inside its own block, and every block
// justified — enforced here by rustc/clippy and repo-wide by `rfid-lint`'s
// `undocumented-unsafe` rule (`docs/INVARIANTS.md`).
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(clippy::undocumented_unsafe_blocks)]

pub mod changepoint;
pub mod config;
pub mod dense;
pub mod engine;
pub mod likelihood;
pub mod observations;
pub mod posterior;
pub mod rfinfer;
pub mod state;
pub mod truncate;

pub use changepoint::{change_statistic, detect_changes, DetectedChange, ThresholdCalibrator};
pub use config::{ChangeDetectionConfig, InferenceConfig, ThresholdPolicy};
pub use dense::DenseScratch;
pub use engine::{EngineSnapshot, ImportSummary, InferenceEngine, InferenceReport};
pub use likelihood::{LikelihoodModel, ReaderSetTable};
pub use observations::{ObsAt, Observations};
pub use posterior::{container_posterior, container_posterior_rows, Posterior};
pub use rfinfer::{
    CachedVariant, DirtySet, EvidenceCache, InferenceOutcome, InferenceStats, ObjectEvidence,
    PriorWeights, RfInfer, RfInferConfig,
};
pub use state::{CollapsedState, MigrationState, ReadingsState};
pub use truncate::{
    critical_region, retention_plan, CriticalRegion, MemoryBudget, MemoryStats, RetentionPlan,
    TruncationPolicy,
};
