//! History truncation (Section 4.1): the Critical Region method and the
//! simpler alternatives it is compared against in Figures 5(a), 5(b) and
//! 6(b).
//!
//! The critical-region search slides a small window over an object's
//! observation history and looks for the period in which the point evidence
//! of the best candidate container exceeds the second best by a clear margin
//! — the observations most informative about the true containment (e.g. the
//! conveyor-belt scan in Figure 4). After inference, only the readings inside
//! the critical region and a short recent history `H̄` need to be retained.

use crate::rfinfer::{InferenceOutcome, ObjectEvidence};
use rfid_types::{Epoch, TagId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which history-truncation method to use between inference runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TruncationPolicy {
    /// Keep the entire history ("All" in Figure 5(a)).
    Full,
    /// Keep only the most recent `window_secs` of readings ("W1200").
    Window {
        /// Length of the retained window in seconds.
        window_secs: u32,
    },
    /// Keep each object's critical region plus the recent history ("CR").
    CriticalRegion {
        /// Length of the sliding window used to search for the critical
        /// region, in seconds.
        window_secs: u32,
        /// Minimum margin (best minus second-best windowed evidence) for a
        /// window to qualify as a critical region.
        margin: f64,
    },
}

impl Default for TruncationPolicy {
    fn default() -> TruncationPolicy {
        TruncationPolicy::CriticalRegion {
            window_secs: 60,
            margin: 3.0,
        }
    }
}

/// The critical region found for one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalRegion {
    /// Inclusive start of the region.
    pub start: Epoch,
    /// Inclusive end of the region.
    pub end: Epoch,
}

impl CriticalRegion {
    /// Whether an epoch lies inside the region.
    pub fn contains(&self, t: Epoch) -> bool {
        t >= self.start && t <= self.end
    }

    /// Length of the region in seconds.
    pub fn len_secs(&self) -> u32 {
        self.end.since(self.start)
    }
}

/// Search one object's point evidence for its critical region: the most
/// recent sliding window `[t - window, t]` in which the best candidate's
/// summed point evidence beats the second best by at least `margin`.
/// Objects with fewer than two candidates have no critical region (there is
/// nothing to disambiguate).
pub fn critical_region(
    evidence: &ObjectEvidence,
    window_secs: u32,
    margin: f64,
) -> Option<CriticalRegion> {
    if evidence.point_evidence.len() < 2 {
        return None;
    }
    // The object's observation epochs (same for every candidate series).
    let epochs: Vec<Epoch> = evidence
        .point_evidence
        .values()
        .next()
        .map(|v| v.iter().map(|&(t, _)| t).collect())
        .unwrap_or_default();
    if epochs.is_empty() {
        return None;
    }
    let candidates: Vec<&Vec<(Epoch, f64)>> = evidence.point_evidence.values().collect();

    // The most recent qualifying window wins, so slide the window BACKWARDS
    // from the latest end epoch and stop at the first qualifying one — the
    // same region a forward scan would keep ("overwrite with the most
    // recent"), found without evaluating the windows before it. The cursors
    // stay monotone (they only ever decrease), every evaluated window's sum
    // is the same ascending-epoch sequential sum the forward scan computes,
    // and the margin test only needs the two largest sums, so the selected
    // region is bit-identical to the naive filter's.
    let mut cursors: Vec<(usize, usize)> = candidates
        .iter()
        .map(|series| (series.len(), series.len()))
        .collect();
    let mut sums: Vec<f64> = Vec::with_capacity(candidates.len());
    for &end in epochs.iter().rev() {
        let start = end.minus(window_secs);
        // Sum each candidate's point evidence inside [start, end].
        sums.clear();
        for (series, (lo, hi)) in candidates.iter().zip(cursors.iter_mut()) {
            while *hi > 0 && series[*hi - 1].0 > end {
                *hi -= 1;
            }
            while *lo > 0 && series[*lo - 1].0 >= start {
                *lo -= 1;
            }
            let sum: f64 = series[*lo..*hi].iter().map(|&(_, e)| e).sum();
            sums.push(sum);
        }
        // Largest and second-largest sum — what the descending sort's first
        // two entries were, with the same NaN strictness.
        let mut top = f64::NEG_INFINITY;
        let mut second = f64::NEG_INFINITY;
        for &sum in &sums {
            match sum.partial_cmp(&top).expect("NaN evidence sum") {
                std::cmp::Ordering::Greater => {
                    second = top;
                    top = sum;
                }
                _ => {
                    if sum > second {
                        second = sum;
                    }
                }
            }
        }
        if sums.len() >= 2 && top - second >= margin {
            return Some(CriticalRegion { start, end });
        }
    }
    None
}

/// The retention plan produced by a truncation policy: per tag, the inclusive
/// epoch ranges worth keeping for the next inference run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RetentionPlan {
    /// Ranges to keep per tag. Tags not listed keep only the recent history.
    pub per_tag: BTreeMap<TagId, Vec<(Epoch, Epoch)>>,
    /// Inclusive start of the recent history every tag keeps.
    pub recent_from: Epoch,
}

impl RetentionPlan {
    /// The ranges to retain for one tag: its critical-region ranges (if any)
    /// plus the shared recent history, merged into disjoint ascending
    /// inclusive ranges — the result never contains an empty range and no
    /// two ranges overlap or touch.
    pub fn ranges_for(&self, tag: TagId, now: Epoch) -> Vec<(Epoch, Epoch)> {
        let mut ranges = self.per_tag.get(&tag).cloned().unwrap_or_default();
        ranges.push((self.recent_from.min(now), now));
        ranges.sort_unstable();
        let mut merged: Vec<(Epoch, Epoch)> = Vec::with_capacity(ranges.len());
        for &(lo, hi) in ranges.iter() {
            match merged.last_mut() {
                Some(last) if lo <= last.1.plus(1) => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        merged
    }
}

/// Build a retention plan from an inference outcome.
///
/// * `Full` keeps everything (the plan covers `[0, now]`).
/// * `Window` keeps only `[now - window, now]` for every tag.
/// * `CriticalRegion` keeps, per object, its critical region (and the same
///   region for its candidate containers) plus the recent history
///   `[now - recent_secs, now]`.
pub fn retention_plan(
    policy: TruncationPolicy,
    outcome: &InferenceOutcome,
    now: Epoch,
    recent_secs: u32,
) -> RetentionPlan {
    match policy {
        TruncationPolicy::Full => RetentionPlan {
            per_tag: BTreeMap::new(),
            recent_from: Epoch::ZERO,
        },
        TruncationPolicy::Window { window_secs } => RetentionPlan {
            per_tag: BTreeMap::new(),
            recent_from: now.minus(window_secs),
        },
        TruncationPolicy::CriticalRegion {
            window_secs,
            margin,
        } => {
            let mut per_tag: BTreeMap<TagId, Vec<(Epoch, Epoch)>> = BTreeMap::new();
            for (&object, evidence) in &outcome.objects {
                if let Some(cr) = critical_region(evidence, window_secs, margin) {
                    per_tag.entry(object).or_default().push((cr.start, cr.end));
                    // The same readings of the candidate containers are what
                    // makes the region informative — keep them too.
                    for &c in &evidence.candidates {
                        per_tag.entry(c).or_default().push((cr.start, cr.end));
                    }
                }
            }
            // Merge overlapping ranges per tag to keep the plan small.
            for ranges in per_tag.values_mut() {
                ranges.sort_unstable();
                let mut merged: Vec<(Epoch, Epoch)> = Vec::with_capacity(ranges.len());
                for &(lo, hi) in ranges.iter() {
                    match merged.last_mut() {
                        Some(last) if lo <= last.1.plus(1) => last.1 = last.1.max(hi),
                        _ => merged.push((lo, hi)),
                    }
                }
                *ranges = merged;
            }
            RetentionPlan {
                per_tag,
                recent_from: now.minus(recent_secs),
            }
        }
    }
}

/// A per-site bound on retained inference memory, enforced between epochs by
/// `InferenceEngine::enforce_budget`: when the observation store exceeds
/// `max_observations`, old history beyond the [`TruncationPolicy`] is
/// compacted into summary weights (the collapsed priors already produced by
/// the inference) and cold evidence-cache entries are evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryBudget {
    /// Maximum number of retained `(tag, epoch)` observation entries before
    /// compaction kicks in. `usize::MAX` disables compaction entirely.
    pub max_observations: usize,
}

impl MemoryBudget {
    /// A budget that never forces compaction.
    pub fn unbounded() -> MemoryBudget {
        MemoryBudget {
            max_observations: usize::MAX,
        }
    }

    /// A budget capped at `max_observations` retained observation entries.
    pub fn capped(max_observations: usize) -> MemoryBudget {
        MemoryBudget { max_observations }
    }

    /// Whether the budget can never force compaction.
    pub fn is_unbounded(&self) -> bool {
        self.max_observations == usize::MAX
    }
}

impl Default for MemoryBudget {
    fn default() -> MemoryBudget {
        MemoryBudget::unbounded()
    }
}

/// Memory-pressure counters of one site (or, merged, a whole run). Persisted
/// through `SiteCheckpoint` so crash-restore replays converge on the same
/// values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Largest observation-store size ever seen (in `(tag, epoch)` entries).
    pub high_water: u64,
    /// Budget-driven compaction passes that removed at least one entry.
    pub compactions: u64,
    /// Observation entries removed by budget-driven compaction.
    pub compacted_observations: u64,
    /// Cold evidence-cache containers evicted under memory pressure.
    pub evicted_cache_entries: u64,
}

impl MemoryStats {
    /// Fold `other` into `self`: high-water marks take the max, event
    /// counters add.
    pub fn merge(&mut self, other: &MemoryStats) {
        self.high_water = self.high_water.max(other.high_water);
        self.compactions += other.compactions;
        self.compacted_observations += other.compacted_observations;
        self.evicted_cache_entries += other.evicted_cache_entries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Synthetic evidence: the real container is clearly better only during
    /// epochs 100..=110 (the "belt"), exactly like Figure 4(b).
    fn belt_evidence() -> ObjectEvidence {
        let real = TagId::case(0);
        let decoy = TagId::case(1);
        let mut real_points = Vec::new();
        let mut decoy_points = Vec::new();
        for t in (0..200u32).step_by(5) {
            let e_real = -1.0;
            let e_decoy = if (100..=110).contains(&t) {
                -12.0
            } else {
                -1.2
            };
            real_points.push((Epoch(t), e_real));
            decoy_points.push((Epoch(t), e_decoy));
        }
        ObjectEvidence {
            candidates: vec![real, decoy],
            weights: BTreeMap::from([(real, -40.0), (decoy, -60.0)]),
            point_evidence: BTreeMap::from([(real, real_points), (decoy, decoy_points)]),
            assigned: Some(real),
        }
    }

    #[test]
    fn critical_region_covers_the_informative_period() {
        let cr = critical_region(&belt_evidence(), 20, 5.0).expect("region found");
        // The region must overlap the informative belt period 100..=110
        // (most-recent-window semantics may place it at the tail of it).
        assert!(
            cr.start <= Epoch(110) && cr.end >= Epoch(100),
            "region {cr:?} should overlap the belt period"
        );
        assert!(cr.len_secs() <= 20);
        assert!(cr.end <= Epoch(130));
    }

    #[test]
    fn no_region_without_margin_or_candidates() {
        // Margin too large: no window qualifies.
        assert!(critical_region(&belt_evidence(), 20, 1e6).is_none());
        // Single candidate: nothing to disambiguate.
        let single = ObjectEvidence {
            candidates: vec![TagId::case(0)],
            weights: BTreeMap::new(),
            point_evidence: BTreeMap::from([(TagId::case(0), vec![(Epoch(0), -1.0)])]),
            assigned: Some(TagId::case(0)),
        };
        assert!(critical_region(&single, 20, 1.0).is_none());
    }

    #[test]
    fn most_recent_qualifying_window_wins() {
        // Two informative periods; the later one should be returned.
        let real = TagId::case(0);
        let decoy = TagId::case(1);
        let mut real_points = Vec::new();
        let mut decoy_points = Vec::new();
        for t in (0..300u32).step_by(5) {
            let informative = (50..=60).contains(&t) || (200..=210).contains(&t);
            real_points.push((Epoch(t), -1.0));
            decoy_points.push((Epoch(t), if informative { -15.0 } else { -1.1 }));
        }
        let evidence = ObjectEvidence {
            candidates: vec![real, decoy],
            weights: BTreeMap::new(),
            point_evidence: BTreeMap::from([(real, real_points), (decoy, decoy_points)]),
            assigned: Some(real),
        };
        let cr = critical_region(&evidence, 20, 5.0).unwrap();
        assert!(
            cr.end >= Epoch(200),
            "the most recent region should win: {cr:?}"
        );
    }

    #[test]
    fn retention_plans_reflect_the_policy() {
        let outcome = InferenceOutcome {
            containment: Default::default(),
            objects: BTreeMap::from([(TagId::item(0), belt_evidence())]),
            tag_locations: BTreeMap::new(),
            iterations: 1,
            num_locations: 4,
        };
        let now = Epoch(200);

        let full = retention_plan(TruncationPolicy::Full, &outcome, now, 600);
        assert_eq!(full.recent_from, Epoch::ZERO);
        assert_eq!(
            full.ranges_for(TagId::item(0), now),
            vec![(Epoch::ZERO, now)]
        );

        let window = retention_plan(
            TruncationPolicy::Window { window_secs: 50 },
            &outcome,
            now,
            600,
        );
        assert_eq!(window.recent_from, Epoch(150));
        assert!(window.per_tag.is_empty());

        let cr = retention_plan(TruncationPolicy::default(), &outcome, now, 30);
        assert_eq!(cr.recent_from, Epoch(170));
        let ranges = cr.ranges_for(TagId::item(0), now);
        // the critical region and the recent history are both covered...
        assert!(ranges
            .iter()
            .any(|&(lo, hi)| lo <= Epoch(110) && hi >= Epoch(100)));
        assert!(ranges.iter().any(|&(_, hi)| hi == now));
        // ...by disjoint, non-touching ranges (touching ones merge)
        for pair in ranges.windows(2) {
            assert!(pair[1].0 .0 > pair[0].1 .0 + 1, "disjoint: {ranges:?}");
        }
        // candidate containers keep the same region
        assert!(cr.per_tag.contains_key(&TagId::case(0)));
        assert!(cr.per_tag.contains_key(&TagId::case(1)));
        // tags without a critical region only keep the recent history
        assert_eq!(cr.ranges_for(TagId::item(99), now), vec![(Epoch(170), now)]);
    }

    #[test]
    fn overlapping_ranges_are_merged() {
        // Two objects sharing a candidate container with overlapping regions.
        let mut objects = BTreeMap::new();
        objects.insert(TagId::item(0), belt_evidence());
        let mut shifted = belt_evidence();
        // shift the second object's informative window slightly
        for series in shifted.point_evidence.values_mut() {
            for point in series.iter_mut() {
                point.0 = point.0.plus(10);
            }
        }
        objects.insert(TagId::item(1), shifted);
        let outcome = InferenceOutcome {
            containment: Default::default(),
            objects,
            tag_locations: BTreeMap::new(),
            iterations: 1,
            num_locations: 4,
        };
        let plan = retention_plan(TruncationPolicy::default(), &outcome, Epoch(250), 10);
        let case_ranges = &plan.per_tag[&TagId::case(0)];
        assert_eq!(
            case_ranges.len(),
            1,
            "overlapping regions merge: {case_ranges:?}"
        );
    }
}
