//! Chunk-of-8 `f64` kernels behind the dense EM's vector path.
//!
//! Every kernel here obeys one design rule, which is what lets the vector
//! path stay **bit-identical to the scalar reference without an opt-in**:
//! lanes run *across locations or across candidates*, never across the terms
//! of a single accumulator. Elementwise operations (row adds, the
//! subtract-max before `exp`, the divide-by-sum) are embarrassingly lane
//! parallel; the set-max of the log-sum-exp trick is order-independent (see
//! [`max_log_weights`]); and the batched dot products of [`dot_batch`] give
//! each candidate its own lane whose summation order over locations is
//! exactly the scalar [`Posterior::expect_row`](crate::Posterior::expect_row)
//! order. Anything that would
//! reassociate a single running sum — splitting one dot product or one
//! normalization sum into partial accumulators — lives in the `*_fast`
//! kernels and is only reachable through the opt-in
//! [`RfInferConfig::fast_math`](crate::RfInferConfig::fast_math) flag.
//!
//! The portable kernels are written as fixed-width chunk loops that rustc
//! autovectorizes on stable. On x86-64 an explicit AVX2 path (plain
//! `_mm256_add_pd`/`_mm256_div_pd` — never FMA, which would skip the
//! intermediate rounding and change results) is selected at runtime via
//! `is_x86_feature_detected!` and can be force-disabled by setting the
//! `RFID_DISABLE_AVX2` environment variable, which is how CI keeps the
//! portable fallback tested on AVX2 hardware.

use std::sync::OnceLock;

/// Lane width of the portable chunk loops.
pub const LANES: usize = 8;

/// Whether the explicit AVX2 path is compiled in, supported by this CPU and
/// not force-disabled via the `RFID_DISABLE_AVX2` environment variable.
/// Resolved once per process.
pub fn avx2_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        if std::env::var_os("RFID_DISABLE_AVX2").is_some() {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

// ---------------------------------------------------------------------------
// Elementwise row kernels (lane = location)
// ---------------------------------------------------------------------------

/// `dst[i] += src[i]` for every lane. Elementwise, so lane order is
/// irrelevant: bit-identical to the scalar loop for all inputs.
pub fn add_assign_rows(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_enabled() {
        // SAFETY: gated on runtime AVX2 detection.
        unsafe { add_assign_rows_avx2(dst, src) };
        return;
    }
    add_assign_rows_portable(dst, src);
}

pub(crate) fn add_assign_rows_portable(dst: &mut [f64], src: &[f64]) {
    let n = dst.len().min(src.len());
    let (dc, dr) = dst[..n].split_at_mut(n - n % LANES);
    let (sc, sr) = src[..n].split_at(n - n % LANES);
    for (d8, s8) in dc.chunks_exact_mut(LANES).zip(sc.chunks_exact(LANES)) {
        for l in 0..LANES {
            d8[l] += s8[l];
        }
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d += s;
    }
}

/// AVX2 arm of [`add_assign_rows`].
///
/// # Safety
/// The caller must ensure the `avx2` target feature is available at runtime
/// (checked by `avx2_enabled()` at every call site).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn add_assign_rows_avx2(dst: &mut [f64], src: &[f64]) {
    use std::arch::x86_64::*;
    let n = dst.len().min(src.len());
    let mut i = 0usize;
    // SAFETY: every load/store stays in bounds — `i + 4 <= n` with
    // `n <= dst.len()` and `n <= src.len()` — and `f64` has no validity
    // invariants an unaligned load could break.
    unsafe {
        while i + 4 <= n {
            let d = _mm256_loadu_pd(dst.as_ptr().add(i));
            let s = _mm256_loadu_pd(src.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_add_pd(d, s));
            i += 4;
        }
    }
    while i < n {
        dst[i] += src[i];
        i += 1;
    }
}

/// `dst[i] = (dst[i] - max).exp()` for every lane. The subtraction is
/// elementwise (vectorizable); `exp` stays the scalar libm call per lane —
/// a polynomial SIMD `exp` differs in ULPs, which would break bit-identity.
pub fn sub_exp_rows(dst: &mut [f64], max: f64) {
    for lw in dst {
        *lw = (*lw - max).exp();
    }
}

/// `dst[i] /= divisor` for every lane. Must stay a true division — folding
/// it into a reciprocal multiply rounds differently.
pub fn div_assign_rows(dst: &mut [f64], divisor: f64) {
    #[cfg(target_arch = "x86_64")]
    if avx2_enabled() {
        // SAFETY: gated on runtime AVX2 detection.
        unsafe { div_assign_rows_avx2(dst, divisor) };
        return;
    }
    div_assign_rows_portable(dst, divisor);
}

pub(crate) fn div_assign_rows_portable(dst: &mut [f64], divisor: f64) {
    let n = dst.len();
    let (chunks, rest) = dst.split_at_mut(n - n % LANES);
    for d8 in chunks.chunks_exact_mut(LANES) {
        for d in d8 {
            *d /= divisor;
        }
    }
    for d in rest {
        *d /= divisor;
    }
}

/// AVX2 arm of [`div_assign_rows`].
///
/// # Safety
/// The caller must ensure the `avx2` target feature is available at runtime
/// (checked by `avx2_enabled()` at every call site).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn div_assign_rows_avx2(dst: &mut [f64], divisor: f64) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let mut i = 0usize;
    // SAFETY: every load/store stays in bounds (`i + 4 <= n == dst.len()`),
    // and `f64` has no validity invariants an unaligned load could break.
    unsafe {
        let dv = _mm256_set1_pd(divisor);
        while i + 4 <= n {
            let d = _mm256_loadu_pd(dst.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_div_pd(d, dv));
            i += 4;
        }
    }
    while i < n {
        dst[i] /= divisor;
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Log-sum-exp normalization (the from_log_weights kernel)
// ---------------------------------------------------------------------------

/// Chunked maximum of a log-weight row, `NEG_INFINITY` when empty.
///
/// Bit-identical to the scalar `fold(NEG_INFINITY, f64::max)` for every
/// input: `f64::max` is associative and commutative over non-NaN values, a
/// NaN operand never survives against any non-NaN (including the
/// `NEG_INFINITY` each lane starts from), and a `-0.0`/`+0.0` ambiguity is
/// harmless downstream because the maximum only ever feeds a subtraction
/// whose result then runs through `exp` (and `exp(-0.0) == exp(0.0) == 1`).
pub fn max_log_weights(xs: &[f64]) -> f64 {
    let n = xs.len();
    let (chunks, rest) = xs.split_at(n - n % LANES);
    let mut lanes = [f64::NEG_INFINITY; LANES];
    for x8 in chunks.chunks_exact(LANES) {
        for l in 0..LANES {
            lanes[l] = lanes[l].max(x8[l]);
        }
    }
    // LINT-ALLOW(float-exactness): reduces the lane maxima; `f64::max` is order-independent for every reachable input (see the doc comment's argument)
    let mut max = lanes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for &x in rest {
        max = max.max(x);
    }
    max
}

/// Normalize a row of unnormalized log-weights into probabilities in place:
/// the vector-path equivalent of
/// [`Posterior::from_log_weights`](crate::Posterior::from_log_weights),
/// bit-identical to it for every input. Chunked max, scalar libm `exp` per
/// lane, *sequential* sum (a single accumulator is never split), vectorized
/// divide; degenerate rows (total mass zero) fall back to uniform.
pub fn exp_normalize(row: &mut [f64]) {
    assert!(!row.is_empty(), "need at least one location");
    let max = max_log_weights(row);
    sub_exp_rows(row, max);
    let sum: f64 = row.iter().sum();
    if sum > 0.0 {
        div_assign_rows(row, sum);
    } else {
        let uniform = 1.0 / row.len() as f64;
        row.iter_mut().for_each(|p| *p = uniform);
    }
}

// ---------------------------------------------------------------------------
// Batched dot products (lane = candidate)
// ---------------------------------------------------------------------------

/// One point-evidence dot product, in the scalar reference order — the
/// summation order every lane of [`dot_batch`] replicates.
pub fn dot(q: &[f64], row: &[f64]) -> f64 {
    q.iter().zip(row).map(|(q, v)| q * v).sum()
}

/// Up to [`LANES`] independent dot products evaluated in lockstep:
/// `out[l] = dot(qs[l], rows[l])`.
///
/// This is the lane-per-candidate kernel of the M-step: each lane keeps its
/// own accumulator and walks locations in exactly the scalar [`dot`] order,
/// so every output is bit-identical to calling [`dot`] per lane — the lanes
/// only break the single serial multiply-add dependency chain (the dominant
/// cost of evidence evaluation) into `LANES` independent ones.
pub fn dot_batch(qs: &[&[f64]], rows: &[&[f64]], out: &mut [f64]) {
    debug_assert_eq!(qs.len(), rows.len());
    debug_assert!(out.len() >= qs.len());
    let mut lane = 0usize;
    while lane + LANES <= qs.len() {
        let q8: &[&[f64]] = &qs[lane..lane + LANES];
        let r8: &[&[f64]] = &rows[lane..lane + LANES];
        let n = q8[0].len();
        // `Iterator::sum::<f64>()` folds from `-0.0`; start every lane there
        // so zero-sign behaviour matches the scalar dot bitwise.
        let mut acc = [-0.0f64; LANES];
        if q8.iter().all(|q| q.len() == n) && r8.iter().all(|r| r.len() >= n) {
            for a in 0..n {
                for l in 0..LANES {
                    // LINT-ALLOW(float-exactness): each lane owns one whole dot product in scalar term order; no single sum is ever split across lanes
                    acc[l] += q8[l][a] * r8[l][a];
                }
            }
            out[lane..lane + LANES].copy_from_slice(&acc);
        } else {
            for l in 0..LANES {
                out[lane + l] = dot(q8[l], r8[l]);
            }
        }
        lane += LANES;
    }
    for l in lane..qs.len() {
        out[l] = dot(qs[l], rows[l]);
    }
}

/// Up to [`LANES`] dot products against one **shared** row:
/// `out[l] = dot(qs[l], row)`.
///
/// The transposed M-step evaluates every active candidate's point evidence
/// at one epoch against the same object loglik row; sharing the row halves
/// the loads per lane (the row stays hot while the lane posteriors stream).
/// Each lane keeps its own accumulator in the scalar [`dot`] order, so every
/// output is bit-identical to calling [`dot`] per lane.
pub fn dot_many_shared(qs: &[&[f64]], row: &[f64], out: &mut [f64]) {
    debug_assert!(out.len() >= qs.len());
    let n = row.len();
    if qs.iter().all(|q| q.len() == n) {
        for (l, q) in qs.iter().enumerate() {
            // `Iterator::sum::<f64>()` folds from `-0.0`; start there so
            // zero-sign behaviour matches the scalar dot bitwise.
            let mut acc = -0.0f64;
            for a in 0..n {
                acc += q[a] * row[a];
            }
            out[l] = acc;
        }
    } else {
        for (l, q) in qs.iter().enumerate() {
            out[l] = dot(q, row);
        }
    }
}

// ---------------------------------------------------------------------------
// Argmax (lane = candidate)
// ---------------------------------------------------------------------------

/// Index of the maximum weight with **later ties winning** (`w >= best`),
/// `None` on an empty slice — the argmax rule of the reference M-step.
///
/// Chunks are only a fast *filter*: a chunk is skipped when no lane compares
/// `>=` the running best (every lane `< best`, and a NaN lane compares false
/// exactly as it would in the scalar scan), otherwise the chunk is rescanned
/// scalar from its first lane with the running best carried in. The selected
/// index is therefore identical to the scalar scan for every input,
/// including NaN weights and a NaN running best.
pub fn argmax_ties_last(ws: &[f64]) -> Option<usize> {
    if ws.is_empty() {
        return None;
    }
    let mut best = ws[0];
    let mut best_at = 0usize;
    let mut i = 1usize;
    while i < ws.len() {
        let end = (i + LANES).min(ws.len());
        let chunk = &ws[i..end];
        // A lane can only move the running best if it compares >= to the
        // best at chunk entry: the best is non-decreasing inside a chunk
        // (and a NaN best rejects every comparison, scalar and here alike).
        if chunk.iter().any(|&w| w >= best) {
            for (off, &w) in chunk.iter().enumerate() {
                if w >= best {
                    best = w;
                    best_at = i + off;
                }
            }
        }
        i = end;
    }
    Some(best_at)
}

// ---------------------------------------------------------------------------
// Reassociating kernels (opt-in via RfInferConfig::fast_math only)
// ---------------------------------------------------------------------------

/// Sum with [`LANES`] partial accumulators. **Reassociates** the addition
/// order, so the result differs from the sequential sum in the last ULPs —
/// only used when `fast_math` is enabled, and excluded from the equivalence
/// tests.
// EXACTNESS: reassociating (fast_math only)
pub fn sum_fast(xs: &[f64]) -> f64 {
    let n = xs.len();
    let (chunks, rest) = xs.split_at(n - n % LANES);
    let mut lanes = [0.0f64; LANES];
    for x8 in chunks.chunks_exact(LANES) {
        for l in 0..LANES {
            lanes[l] += x8[l];
        }
    }
    lanes.iter().sum::<f64>() + rest.iter().sum::<f64>()
}

/// Dot product with [`LANES`] partial accumulators — the `fast_math`
/// counterpart of [`dot`]. **Reassociates**; see [`sum_fast`].
// EXACTNESS: reassociating (fast_math only)
pub fn dot_fast(q: &[f64], row: &[f64]) -> f64 {
    let n = q.len().min(row.len());
    let (qc, qr) = q[..n].split_at(n - n % LANES);
    let (rc, rr) = row[..n].split_at(n - n % LANES);
    let mut lanes = [0.0f64; LANES];
    for (q8, r8) in qc.chunks_exact(LANES).zip(rc.chunks_exact(LANES)) {
        for l in 0..LANES {
            lanes[l] += q8[l] * r8[l];
        }
    }
    lanes.iter().sum::<f64>() + qr.iter().zip(rr).map(|(q, v)| q * v).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test rows exercising every remainder-lane shape (`0..=17`) and the
    /// pathological values the posterior path can produce: `-inf` rows,
    /// NaN-adjacent mixes and `-1e6`-offset log weights.
    fn cases() -> Vec<Vec<f64>> {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for n in 0..=17usize {
            // Deterministic pseudo-random log weights with sign structure.
            let base: Vec<f64> = (0..n)
                .map(|i| -((i * 37 % 23) as f64) * 1.37 - 0.01 * i as f64)
                .collect();
            rows.push(base.clone());
            // All -inf.
            rows.push(vec![f64::NEG_INFINITY; n]);
            // -inf interleaved with finite lanes.
            rows.push(
                base.iter()
                    .enumerate()
                    .map(|(i, &x)| if i % 3 == 0 { f64::NEG_INFINITY } else { x })
                    .collect(),
            );
            // Deeply offset log weights (posterior.rs's -1e6 regime).
            rows.push(base.iter().map(|&x| x - 1e6).collect());
            // NaN-adjacent: NaN lanes scattered through finite weights.
            rows.push(
                base.iter()
                    .enumerate()
                    .map(|(i, &x)| if i % 4 == 1 { f64::NAN } else { x })
                    .collect(),
            );
            // Tiny magnitudes around the subnormal boundary.
            rows.push(base.iter().map(|&x| x * 1e-308).collect());
            // Signed-zero mixes: the -0.0/+0.0 pair compares equal but is
            // bitwise distinct, so any kernel that reorders a max or seeds an
            // accumulator from the wrong zero shows up here.
            rows.push(
                (0..n)
                    .map(|i| if i % 2 == 0 { -0.0 } else { 0.0 })
                    .collect(),
            );
            // Signed zeros against -inf and NaN lanes.
            rows.push(
                (0..n)
                    .map(|i| match i % 4 {
                        0 => -0.0,
                        1 => f64::NEG_INFINITY,
                        2 => 0.0,
                        _ => f64::NAN,
                    })
                    .collect(),
            );
        }
        rows
    }

    fn scalar_max(xs: &[f64]) -> f64 {
        xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Scalar reference of the normalization, copied from
    /// `Posterior::from_log_weights`.
    fn scalar_normalize(row: &mut [f64]) {
        let max = scalar_max(row);
        for lw in row.iter_mut() {
            *lw = (*lw - max).exp();
        }
        let sum: f64 = row.iter().sum();
        if sum > 0.0 {
            for p in row.iter_mut() {
                *p /= sum;
            }
        } else {
            let uniform = 1.0 / row.len() as f64;
            row.iter_mut().for_each(|p| *p = uniform);
        }
    }

    #[test]
    fn max_matches_scalar_fold_bitwise() {
        for case in cases() {
            let got = max_log_weights(&case);
            let want = scalar_max(&case);
            assert_eq!(got.to_bits(), want.to_bits(), "case {case:?}");
        }
    }

    #[test]
    fn add_assign_matches_scalar_bitwise() {
        for case in cases() {
            let src: Vec<f64> = case.iter().map(|&x| x * 0.5 - 1.0).collect();
            let mut got = case.clone();
            add_assign_rows(&mut got, &src);
            let mut portable = case.clone();
            add_assign_rows_portable(&mut portable, &src);
            let mut want = case.clone();
            for (d, s) in want.iter_mut().zip(&src) {
                *d += s;
            }
            for i in 0..want.len() {
                assert_eq!(got[i].to_bits(), want[i].to_bits(), "case {case:?}");
                assert_eq!(portable[i].to_bits(), want[i].to_bits(), "case {case:?}");
            }
        }
    }

    #[test]
    fn div_assign_matches_scalar_bitwise() {
        for case in cases() {
            for divisor in [3.0f64, 1e-12, 7.77e300] {
                let mut got = case.clone();
                div_assign_rows(&mut got, divisor);
                let mut portable = case.clone();
                div_assign_rows_portable(&mut portable, divisor);
                let mut want = case.clone();
                for d in want.iter_mut() {
                    *d /= divisor;
                }
                for i in 0..want.len() {
                    assert_eq!(got[i].to_bits(), want[i].to_bits(), "case {case:?}");
                    assert_eq!(portable[i].to_bits(), want[i].to_bits(), "case {case:?}");
                }
            }
        }
    }

    #[test]
    fn exp_normalize_matches_from_log_weights_bitwise() {
        for case in cases() {
            if case.is_empty() {
                continue;
            }
            let mut got = case.clone();
            exp_normalize(&mut got);
            let mut want = case.clone();
            scalar_normalize(&mut want);
            for i in 0..want.len() {
                assert_eq!(
                    got[i].to_bits(),
                    want[i].to_bits(),
                    "lane {i} of case {case:?}"
                );
            }
        }
    }

    /// The copied `scalar_normalize` above could drift from the shipping
    /// reference without failing anything; pin the kernel (and the copy) to
    /// the real `posterior::normalize_log_weights`, bit for bit, on every
    /// case including the signed-zero and NaN mixes.
    #[test]
    fn exp_normalize_matches_real_posterior_reference_bitwise() {
        for case in cases() {
            if case.is_empty() {
                continue;
            }
            let mut got = case.clone();
            exp_normalize(&mut got);
            let mut want = case.clone();
            crate::posterior::normalize_log_weights(&mut want);
            let mut copy = case.clone();
            scalar_normalize(&mut copy);
            for i in 0..want.len() {
                assert_eq!(
                    got[i].to_bits(),
                    want[i].to_bits(),
                    "kernel vs posterior reference, lane {i} of case {case:?}"
                );
                assert_eq!(
                    copy[i].to_bits(),
                    want[i].to_bits(),
                    "copied test reference drifted from posterior::normalize_log_weights, lane {i} of case {case:?}"
                );
            }
        }
    }

    #[test]
    fn dot_batch_matches_scalar_dots_bitwise() {
        let rows = cases();
        // Build lane batches of every width 0..=17 from consecutive cases of
        // equal length, paired with a second operand derived from each.
        for width in 0..=17usize {
            for n in [0usize, 1, 7, 8, 9, 16, 17] {
                let qs_owned: Vec<Vec<f64>> = (0..width)
                    .map(|l| {
                        (0..n)
                            .map(|i| ((i + l * 11) % 13) as f64 * 0.7 - 3.0)
                            .collect()
                    })
                    .collect();
                let rows_owned: Vec<Vec<f64>> = (0..width)
                    .map(|l| (0..n).map(|i| -(((i * 5 + l) % 19) as f64) * 1.1).collect())
                    .collect();
                let qs: Vec<&[f64]> = qs_owned.iter().map(|v| v.as_slice()).collect();
                let vrows: Vec<&[f64]> = rows_owned.iter().map(|v| v.as_slice()).collect();
                let mut out = vec![0.0f64; width];
                dot_batch(&qs, &vrows, &mut out);
                for l in 0..width {
                    let want = dot(qs[l], vrows[l]);
                    assert_eq!(out[l].to_bits(), want.to_bits(), "lane {l} width {width}");
                }
            }
        }
        // Pathological lanes: -inf and NaN-adjacent operands.
        for case in rows.iter().filter(|c| !c.is_empty()) {
            let q: Vec<f64> = case.iter().map(|&x| (x * 0.01).exp()).collect();
            let qs = [q.as_slice(), q.as_slice()];
            let vrows = [case.as_slice(), case.as_slice()];
            let mut out = [0.0f64; 2];
            dot_batch(&qs, &vrows, &mut out);
            let want = dot(&q, case);
            assert_eq!(out[0].to_bits(), want.to_bits());
            assert_eq!(out[1].to_bits(), want.to_bits());
        }
    }

    #[test]
    fn dot_many_shared_matches_scalar_dots_bitwise() {
        for width in 0..=17usize {
            for n in [0usize, 1, 7, 8, 9, 16, 17] {
                let row: Vec<f64> = (0..n).map(|i| -(((i * 5) % 19) as f64) * 1.1).collect();
                let qs_owned: Vec<Vec<f64>> = (0..width)
                    .map(|l| {
                        (0..n)
                            .map(|i| ((i + l * 11) % 13) as f64 * 0.7 - 3.0)
                            .collect()
                    })
                    .collect();
                let qs: Vec<&[f64]> = qs_owned.iter().map(|v| v.as_slice()).collect();
                let mut out = vec![0.0f64; width];
                dot_many_shared(&qs, &row, &mut out);
                for l in 0..width {
                    let want = dot(qs[l], &row);
                    assert_eq!(out[l].to_bits(), want.to_bits(), "lane {l} width {width}");
                }
            }
        }
        // Pathological shared rows (-inf, NaN-scattered, -1e6 offsets) and a
        // length-mismatched lane falling back to the scalar dot.
        for case in cases().iter().filter(|c| !c.is_empty()) {
            let q: Vec<f64> = case.iter().map(|&x| (x * 0.01).exp()).collect();
            let short = &q[..q.len() - 1];
            let qs = [q.as_slice(), short, q.as_slice()];
            let mut out = [0.0f64; 3];
            dot_many_shared(&qs, case, &mut out);
            for (l, q) in qs.iter().enumerate() {
                assert_eq!(out[l].to_bits(), dot(q, case).to_bits(), "lane {l}");
            }
        }
    }

    #[test]
    fn argmax_matches_scalar_scan_for_all_inputs() {
        fn scalar_argmax(ws: &[f64]) -> Option<usize> {
            let mut best: Option<(usize, f64)> = None;
            for (i, &w) in ws.iter().enumerate() {
                if best.is_none_or(|(_, bw)| w >= bw) {
                    best = Some((i, w));
                }
            }
            best.map(|(i, _)| i)
        }
        for case in cases() {
            assert_eq!(argmax_ties_last(&case), scalar_argmax(&case), "{case:?}");
        }
        // Ties must pick the later lane, across chunk boundaries too.
        let mut tied = vec![1.0f64; 17];
        tied[3] = 5.0;
        tied[12] = 5.0;
        assert_eq!(argmax_ties_last(&tied), Some(12));
        // NaN running best sticks, exactly like the scalar scan.
        let nan_first = [f64::NAN, 3.0, 7.0];
        assert_eq!(argmax_ties_last(&nan_first), Some(0));
        // A NaN after a finite best never wins and never blocks later lanes.
        let nan_mid: Vec<f64> = (0..17)
            .map(|i| if i == 9 { f64::NAN } else { i as f64 })
            .collect();
        assert_eq!(argmax_ties_last(&nan_mid), Some(16));
    }

    #[test]
    fn fast_kernels_stay_close_but_are_not_required_to_match() {
        // The fast kernels reassociate: assert they agree to float tolerance
        // (their contract) without pinning bits.
        for n in [0usize, 1, 7, 8, 9, 16, 17, 100] {
            let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let ys: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
            let seq_sum: f64 = xs.iter().sum();
            assert!((sum_fast(&xs) - seq_sum).abs() <= 1e-9 * (1.0 + seq_sum.abs()));
            let seq_dot = dot(&xs, &ys);
            assert!((dot_fast(&xs, &ys) - seq_dot).abs() <= 1e-9 * (1.0 + seq_dot.abs()));
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_paths_match_portable_bitwise_when_supported() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for case in cases() {
            let src: Vec<f64> = case.iter().map(|&x| x * 0.9 + 0.1).collect();
            let mut a = case.clone();
            let mut b = case.clone();
            // SAFETY: feature checked above.
            unsafe { add_assign_rows_avx2(&mut a, &src) };
            add_assign_rows_portable(&mut b, &src);
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            let mut a = case.clone();
            let mut b = case.clone();
            // SAFETY: feature checked above.
            unsafe { div_assign_rows_avx2(&mut a, 3.7) };
            div_assign_rows_portable(&mut b, 3.7);
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
