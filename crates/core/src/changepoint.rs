//! Change-point detection for containment relationships (Section 3.3,
//! Appendix A.2).
//!
//! For every object the detector compares two hypotheses over the observed
//! window `[0, T]`:
//!
//! * **null** — the object stayed in one (best) container the whole time;
//!   its score is `L(C_{0:T}) = max_c E_co(T)`;
//! * **change at t'** — the object was in one container before `t'` and a
//!   (possibly different) container from `t'` on; its score is
//!   `max_{t'} [ max_c E_co(t') + max_{c'} (E_{c'o}(T) − E_{c'o}(t')) ]`.
//!
//! The generalized-likelihood-ratio statistic `Δ_o(T)` is the difference
//! between the best change hypothesis and the null hypothesis (the paper's
//! Eq. 6 up to sign — see DESIGN.md), and a change is flagged when it exceeds
//! a threshold δ. δ is calibrated offline by sampling observation sequences
//! from the model itself (which by construction contain no change point) and
//! taking the largest statistic seen — any larger value observed online is
//! then unlikely to be a false positive.

use crate::likelihood::LikelihoodModel;
use crate::rfinfer::ObjectEvidence;
use rand::Rng;
use rfid_types::{Epoch, LocationId, TagId};
use serde::{Deserialize, Serialize};

/// A detected containment change for one object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectedChange {
    /// The object whose containment changed.
    pub object: TagId,
    /// The epoch at which the change most likely happened.
    pub change_at: Epoch,
    /// The best container before the change.
    pub old_container: Option<TagId>,
    /// The best container after the change.
    pub new_container: Option<TagId>,
    /// The value of the GLR statistic that triggered the detection.
    pub statistic: f64,
}

/// The change-point statistic for one object, with the split that achieves
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeStatistic {
    /// `Δ_o(T)`: best split score minus best single-container score.
    pub delta: f64,
    /// The split epoch achieving the maximum (observations strictly before it
    /// belong to the prefix).
    pub split_at: Epoch,
    /// Best container on the prefix.
    pub prefix_container: Option<TagId>,
    /// Best container on the suffix.
    pub suffix_container: Option<TagId>,
}

/// Compute the change-point statistic for one object from the point evidence
/// produced by RFINFER. Returns `None` when the object has fewer than two
/// candidate containers or fewer than two observations (no split possible).
pub fn change_statistic(evidence: &ObjectEvidence) -> Option<ChangeStatistic> {
    let candidates: Vec<TagId> = evidence.point_evidence.keys().copied().collect();
    if candidates.is_empty() {
        return None;
    }
    // All candidates share the same observation epochs (the object's).
    let epochs: Vec<Epoch> = evidence
        .point_evidence
        .values()
        .next()
        .map(|v| v.iter().map(|&(t, _)| t).collect())
        .unwrap_or_default();
    let n = epochs.len();
    if n < 2 {
        return None;
    }

    // Prefix sums of point evidence per candidate: prefix[c][k] = sum of the
    // first k observations' evidence.
    let mut prefix: Vec<Vec<f64>> = Vec::with_capacity(candidates.len());
    for c in &candidates {
        let points = &evidence.point_evidence[c];
        let mut sums = Vec::with_capacity(n + 1);
        let mut acc = 0.0;
        sums.push(0.0);
        for &(_, e) in points {
            acc += e;
            sums.push(acc);
        }
        // A candidate may (rarely) miss some epochs if its posterior was not
        // computed there; pad so indexing stays consistent.
        while sums.len() < n + 1 {
            sums.push(acc);
        }
        prefix.push(sums);
    }

    let best_total = (0..candidates.len())
        .map(|ci| (ci, prefix[ci][n]))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();

    // Best split: for every split index k in 1..n, best prefix candidate +
    // best suffix candidate.
    let mut best = ChangeStatistic {
        delta: f64::NEG_INFINITY,
        split_at: epochs[0],
        prefix_container: None,
        suffix_container: None,
    };
    for k in 1..n {
        let (pre_ci, pre_score) = (0..candidates.len())
            .map(|ci| (ci, prefix[ci][k]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let (suf_ci, suf_score) = (0..candidates.len())
            .map(|ci| (ci, prefix[ci][n] - prefix[ci][k]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let delta = pre_score + suf_score - best_total.1;
        if delta > best.delta {
            best = ChangeStatistic {
                delta,
                split_at: epochs[k],
                prefix_container: Some(candidates[pre_ci]),
                suffix_container: Some(candidates[suf_ci]),
            };
        }
    }
    Some(best)
}

/// Run change-point detection over every object of an inference outcome.
/// Objects whose statistic exceeds `threshold` are reported, each with the
/// suffix container as its new containment estimate.
pub fn detect_changes(
    objects: &std::collections::BTreeMap<TagId, ObjectEvidence>,
    threshold: f64,
) -> Vec<DetectedChange> {
    let mut changes = Vec::new();
    for (&object, evidence) in objects {
        if let Some(stat) = change_statistic(evidence) {
            if stat.delta >= threshold && stat.prefix_container != stat.suffix_container {
                changes.push(DetectedChange {
                    object,
                    change_at: stat.split_at,
                    old_container: stat.prefix_container,
                    new_container: stat.suffix_container,
                    statistic: stat.delta,
                });
            }
        }
    }
    changes
}

/// Offline calibration of the detection threshold δ (Section 3.3).
///
/// Hypothetical observation sequences are sampled from the generative model
/// of Section 3.1 itself: every container's location is drawn uniformly from
/// the set of reader locations at every epoch, one object travels with its
/// (fixed) true container, and every reader independently detects every tag
/// according to the read-rate table. None of these sequences contains a
/// change point, so any change statistic they produce is pure noise; δ is the
/// largest statistic observed across `samples` replicates (plus a small
/// safety margin).
pub struct ThresholdCalibrator {
    /// Number of hypothetical sequences to sample.
    pub samples: usize,
    /// Number of observation epochs per sequence.
    pub epochs: usize,
    /// Number of decoy containers per sequence.
    pub num_decoys: usize,
    /// Multiplicative safety margin applied to the maximum observed
    /// statistic.
    pub margin: f64,
}

impl Default for ThresholdCalibrator {
    fn default() -> ThresholdCalibrator {
        ThresholdCalibrator {
            samples: 80,
            epochs: 150,
            num_decoys: 4,
            margin: 2.5,
        }
    }
}

impl ThresholdCalibrator {
    /// Calibrate δ for the given likelihood model.
    pub fn calibrate<R: Rng>(&self, model: &LikelihoodModel, rng: &mut R) -> f64 {
        use crate::observations::Observations;
        use crate::rfinfer::RfInfer;
        use rfid_types::{RawReading, ReadingBatch};

        let num_locations = model.num_locations().max(2);
        let locations: Vec<LocationId> = (0..num_locations as u16).map(LocationId).collect();
        // The reader (other than the co-located one) most likely to detect a
        // tag at `a` — i.e. the overlapping neighbour, if the deployment has
        // reader overlap.
        let neighbour = |a: LocationId| -> LocationId {
            locations
                .iter()
                .copied()
                .filter(|&r| r != a)
                .max_by(|&x, &y| {
                    model
                        .rates()
                        .rate(x, a)
                        .partial_cmp(&model.rates().rate(y, a))
                        .unwrap()
                })
                .unwrap_or(a)
        };
        let mut worst: f64 = 0.0;
        for sample in 0..self.samples.max(1) {
            let object = TagId::item(1_000_000 + sample as u64);
            let real = TagId::case(1_000_000);
            let decoys: Vec<TagId> = (0..self.num_decoys)
                .map(|d| TagId::case(1_000_001 + d as u64))
                .collect();
            let mut readings = Vec::new();
            // A representative no-change world: the object and its container
            // travel from loc_a to loc_b halfway through; decoy containers
            // sit at loc_a (co-located early), at loc_b (co-located late), and
            // at the readers overlapping those locations — the configurations
            // that generate the largest no-change statistics in a real
            // deployment.
            let loc_a = locations[rng.gen_range(0..locations.len())];
            let loc_b = locations[rng.gen_range(0..locations.len())];
            let decoy_locations = [loc_a, loc_b, neighbour(loc_b), neighbour(loc_a)];
            let half = self.epochs / 2;
            for t in 0..self.epochs {
                let epoch = Epoch(t as u32);
                let real_loc = if t < half { loc_a } else { loc_b };
                let mut tags_at: Vec<(TagId, LocationId)> =
                    vec![(object, real_loc), (real, real_loc)];
                for (i, decoy) in decoys.iter().enumerate() {
                    let at = decoy_locations
                        .get(i)
                        .copied()
                        .unwrap_or_else(|| locations[rng.gen_range(0..locations.len())]);
                    tags_at.push((*decoy, at));
                }
                // Sample readings from pi(r, a), skipping readers whose
                // detection probability is negligible (background).
                for (tag, at) in tags_at {
                    for &reader in &locations {
                        let p = model.rates().rate(reader, at);
                        if p > 1e-3 && rng.gen_bool(p) {
                            readings.push(RawReading::new(epoch, tag, reader.reader()));
                        }
                    }
                }
            }
            if readings.is_empty() {
                continue;
            }
            let obs = Observations::from_batch(&ReadingBatch::from_readings(readings));
            let outcome = RfInfer::new(model, &obs).run();
            if let Some(evidence) = outcome.objects.get(&object) {
                if let Some(stat) = change_statistic(evidence) {
                    worst = worst.max(stat.delta);
                }
            }
        }
        (worst * self.margin).max(1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observations::Observations;
    use crate::rfinfer::RfInfer;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rfid_types::{RawReading, ReadRateTable, ReaderId, ReadingBatch};
    use std::collections::BTreeMap;

    fn model(n: usize) -> LikelihoodModel {
        LikelihoodModel::new(ReadRateTable::diagonal(n, 0.8, 1e-4))
    }

    /// Deterministic observations where item 1 travels with case 1 for the
    /// first ten epochs and then with case 2 (which is at a different
    /// location) for the next ten.
    fn obs_with_change() -> Observations {
        let mut readings = Vec::new();
        for t in 0..10u32 {
            readings.push(RawReading::new(Epoch(t), TagId::item(1), ReaderId(0)));
            readings.push(RawReading::new(Epoch(t), TagId::case(1), ReaderId(0)));
            readings.push(RawReading::new(Epoch(t), TagId::case(2), ReaderId(1)));
        }
        for t in 10..20u32 {
            readings.push(RawReading::new(Epoch(t), TagId::item(1), ReaderId(1)));
            readings.push(RawReading::new(Epoch(t), TagId::case(1), ReaderId(0)));
            readings.push(RawReading::new(Epoch(t), TagId::case(2), ReaderId(1)));
        }
        Observations::from_batch(&ReadingBatch::from_readings(readings))
    }

    fn obs_without_change() -> Observations {
        let mut readings = Vec::new();
        for t in 0..20u32 {
            readings.push(RawReading::new(Epoch(t), TagId::item(1), ReaderId(0)));
            readings.push(RawReading::new(Epoch(t), TagId::case(1), ReaderId(0)));
            readings.push(RawReading::new(Epoch(t), TagId::case(2), ReaderId(1)));
        }
        Observations::from_batch(&ReadingBatch::from_readings(readings))
    }

    #[test]
    fn statistic_is_large_when_containment_changed() {
        let m = model(2);
        let outcome = RfInfer::new(&m, &obs_with_change()).run();
        let stat = change_statistic(&outcome.objects[&TagId::item(1)]).unwrap();
        assert!(
            stat.delta > 10.0,
            "clear change should score high, got {}",
            stat.delta
        );
        assert_eq!(stat.prefix_container, Some(TagId::case(1)));
        assert_eq!(stat.suffix_container, Some(TagId::case(2)));
        assert_eq!(stat.split_at, Epoch(10));
    }

    #[test]
    fn statistic_is_small_without_a_change() {
        let m = model(2);
        let outcome = RfInfer::new(&m, &obs_without_change()).run();
        let stat = change_statistic(&outcome.objects[&TagId::item(1)]).unwrap();
        assert!(
            stat.delta.abs() < 1.0,
            "no change: statistic stays near zero, got {}",
            stat.delta
        );
    }

    #[test]
    fn detect_changes_applies_the_threshold() {
        let m = model(2);
        let with = RfInfer::new(&m, &obs_with_change()).run();
        let without = RfInfer::new(&m, &obs_without_change()).run();
        let threshold = 5.0;
        let found = detect_changes(&with.objects, threshold);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].object, TagId::item(1));
        assert_eq!(found[0].new_container, Some(TagId::case(2)));
        assert!(found[0].statistic >= threshold);
        assert!(detect_changes(&without.objects, threshold).is_empty());
    }

    #[test]
    fn statistic_requires_candidates_and_multiple_observations() {
        let empty = ObjectEvidence {
            candidates: vec![],
            weights: BTreeMap::new(),
            point_evidence: BTreeMap::new(),
            assigned: None,
        };
        assert!(change_statistic(&empty).is_none());
        let single = ObjectEvidence {
            candidates: vec![TagId::case(1)],
            weights: BTreeMap::new(),
            point_evidence: BTreeMap::from([(TagId::case(1), vec![(Epoch(0), -1.0)])]),
            assigned: Some(TagId::case(1)),
        };
        assert!(change_statistic(&single).is_none());
    }

    #[test]
    fn calibrated_threshold_separates_change_from_no_change() {
        let m = model(4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let delta = ThresholdCalibrator {
            samples: 30,
            epochs: 40,
            ..Default::default()
        }
        .calibrate(&m, &mut rng);
        assert!(delta > 0.0);
        // A genuine change scores above the calibrated threshold...
        let with = RfInfer::new(&m, &obs_with_change()).run();
        let stat = change_statistic(&with.objects[&TagId::item(1)]).unwrap();
        assert!(stat.delta > delta);
        // ...and a stable object scores below it.
        let without = RfInfer::new(&m, &obs_without_change()).run();
        let stat = change_statistic(&without.objects[&TagId::item(1)]).unwrap();
        assert!(stat.delta < delta);
    }

    #[test]
    fn calibration_is_deterministic_given_the_rng_seed() {
        let m = model(3);
        let a = ThresholdCalibrator::default().calibrate(&m, &mut ChaCha8Rng::seed_from_u64(9));
        let b = ThresholdCalibrator::default().calibrate(&m, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
