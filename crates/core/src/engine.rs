//! The streaming inference engine: the component a site runs continuously.
//!
//! The engine accumulates raw readings, periodically (every
//! [`InferenceConfig::period_secs`]) runs RFINFER over the retained history
//! (critical regions + recent history `H̄` + new readings), applies
//! change-point detection, truncates the stored history according to the
//! configured policy, and exposes the resulting containment and location
//! estimates plus the enriched event stream. It also exports and imports the
//! per-object migration state used by the distributed layer.

use crate::changepoint::{detect_changes, DetectedChange, ThresholdCalibrator};
use crate::config::{InferenceConfig, ThresholdPolicy};
use crate::dense::DenseScratch;
use crate::likelihood::LikelihoodModel;
use crate::observations::Observations;
use crate::rfinfer::{
    DirtySet, EvidenceCache, InferenceOutcome, InferenceStats, PriorWeights, RfInfer,
};
use crate::state::{CollapsedState, MigrationState, ReadingsState};
use crate::truncate::{retention_plan, MemoryBudget, MemoryStats, RetentionPlan};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_types::{
    ContainmentMap, Epoch, LocationId, ObjectEvent, RawReading, ReadRateTable, ReadingBatch, TagId,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The complete durable state of an [`InferenceEngine`], produced by
/// [`InferenceEngine::snapshot`] and consumed by
/// [`InferenceEngine::restore`].
///
/// A snapshot captures everything the engine accumulated at runtime — the
/// observation store, imported prior weights, the containment estimate, the
/// detected-change log, the last outcome and its epoch, the calibrated
/// threshold, the dirty-set journal and the cross-run evidence cache. It
/// deliberately excludes the configuration and likelihood model (a restore
/// target is constructed with those) and the dense-solver scratch arenas
/// (capacity-only; rebuilt lazily with no effect on results).
///
/// `restore(snapshot)` after `snapshot()` round-trips bitwise: every
/// subsequent inference run produces results identical to an engine that was
/// never snapshotted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// The sparse observation store.
    pub store: Observations,
    /// Prior co-location weights imported from other sites.
    pub prior: PriorWeights,
    /// The current (change-point refined) containment estimate.
    pub containment: ContainmentMap,
    /// All containment changes detected so far.
    pub detected: Vec<DetectedChange>,
    /// The outcome of the most recent inference run, if any.
    pub last_outcome: Option<InferenceOutcome>,
    /// The epoch of the most recent inference run.
    pub last_inference_at: Option<Epoch>,
    /// The cached change-point threshold, if calibration has happened.
    pub threshold: Option<f64>,
    /// The dirty-set journal of store changes since the last run.
    pub dirty: DirtySet,
    /// The cross-run posterior/evidence cache.
    pub cache: EvidenceCache,
}

/// What an [`InferenceEngine::import_late_state`] call actually merged —
/// the receipt a distributed driver uses to account a degraded-mode
/// reconciliation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportSummary {
    /// The object whose state was merged; `None` when the migration carried
    /// nothing ([`MigrationState::None`]).
    pub object: Option<TagId>,
    /// Collapsed co-location weights merged into the prior.
    pub weights: usize,
    /// Critical-region readings re-observed into the store.
    pub readings: usize,
}

impl ImportSummary {
    /// Whether anything at all was merged.
    pub fn merged(&self) -> bool {
        self.object.is_some()
    }
}

/// The report produced by one inference run.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    /// The epoch at which inference ran.
    pub at: Epoch,
    /// The RFINFER outcome (containment, locations, evidence), shared with
    /// the engine's own retained copy — cloning the report never deep-copies
    /// the outcome.
    pub outcome: Arc<InferenceOutcome>,
    /// Containment changes detected during this run.
    pub changes: Vec<DetectedChange>,
    /// Number of (tag, epoch) observations retained after truncation.
    pub retained_observations: usize,
    /// Wall-clock time spent in this run.
    pub duration: Duration,
    /// Dirty-set size and cache-reuse counters of this run.
    pub stats: InferenceStats,
}

/// Streaming inference engine for one site.
///
/// # Example
///
/// Feed co-located readings, run inference, read off containment:
///
/// ```
/// use rfid_core::{InferenceConfig, InferenceEngine};
/// use rfid_types::{Epoch, RawReading, ReadRateTable, ReaderId, TagId};
///
/// let mut engine = InferenceEngine::new(
///     InferenceConfig::default().with_period(10).without_change_detection(),
///     ReadRateTable::diagonal(2, 0.8, 1e-4),
/// );
/// for t in 0..10 {
///     engine.observe(RawReading::new(Epoch(t), TagId::item(1), ReaderId(0)));
///     engine.observe(RawReading::new(Epoch(t), TagId::case(1), ReaderId(0)));
/// }
/// engine.run_inference(Epoch(10));
/// assert_eq!(engine.container_of(TagId::item(1)), Some(TagId::case(1)));
/// // The default configuration runs incrementally: a second run with no new
/// // readings reuses every cached posterior.
/// let report = engine.run_inference(Epoch(20));
/// assert_eq!(report.stats.posteriors_computed, 0);
/// ```
pub struct InferenceEngine {
    config: InferenceConfig,
    model: LikelihoodModel,
    store: Observations,
    prior: PriorWeights,
    containment: ContainmentMap,
    detected: Vec<DetectedChange>,
    last_outcome: Option<Arc<InferenceOutcome>>,
    last_inference_at: Option<Epoch>,
    threshold: Option<f64>,
    /// Journal of (tag, epoch) store changes since the last run.
    dirty: DirtySet,
    /// Cross-run posterior/evidence cache for incremental runs.
    cache: EvidenceCache,
    /// Reusable dense-solver buffers (interning arena, flat EM columns,
    /// reader-set loglik table), kept across runs so the streaming steady
    /// state reuses capacity instead of reallocating.
    scratch: DenseScratch,
}

impl InferenceEngine {
    /// Create an engine for a site whose readers have the given read-rate
    /// table.
    pub fn new(config: InferenceConfig, rates: ReadRateTable) -> InferenceEngine {
        InferenceEngine {
            config,
            model: LikelihoodModel::new(rates),
            store: Observations::new(),
            prior: PriorWeights::empty(),
            containment: ContainmentMap::new(),
            detected: Vec::new(),
            last_outcome: None,
            last_inference_at: None,
            threshold: None,
            dirty: DirtySet::new(),
            cache: EvidenceCache::new(),
            scratch: DenseScratch::default(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &InferenceConfig {
        &self.config
    }

    /// Feed one raw reading into the engine.
    pub fn observe(&mut self, reading: RawReading) {
        if self.store.insert(reading) {
            self.dirty.record(reading.tag, reading.time);
        }
    }

    /// Feed a batch of raw readings into the engine.
    pub fn observe_batch(&mut self, batch: &ReadingBatch) {
        for r in batch.readings_unordered() {
            self.observe(*r);
        }
    }

    /// Whether an inference run is due at the given epoch.
    pub fn due(&self, now: Epoch) -> bool {
        match self.last_inference_at {
            None => !self.store.is_empty(),
            Some(last) => now.since(last) >= self.config.period_secs,
        }
    }

    /// Run inference if it is due; returns the report if a run happened.
    pub fn step(&mut self, now: Epoch) -> Option<InferenceReport> {
        if self.due(now) {
            Some(self.run_inference(now))
        } else {
            None
        }
    }

    /// Run RFINFER (plus change-point detection and history truncation) now.
    ///
    /// With [`InferenceConfig::incremental`] set (the default) the run reuses
    /// the cross-run evidence cache for every tag the dirty journal proves
    /// unchanged; otherwise it recomputes from scratch. The two modes produce
    /// bit-identical reports (up to wall-clock and reuse counters).
    pub fn run_inference(&mut self, now: Epoch) -> InferenceReport {
        // LINT-ALLOW(no-wall-clock): feeds only InferenceStats::elapsed, which never branches inference; logical time is the `now: Epoch` argument
        let started = Instant::now();
        // Calibrate the change threshold up front (it is lazy and needs
        // `&mut self`; everything after this runs on disjoint borrows).
        let threshold = if self.config.change_detection.is_some() {
            self.calibrate_threshold()
        } else {
            f64::INFINITY
        };
        let rfinfer = self.config.rfinfer.clone();
        let (mut outcome, stats) = if self.config.incremental {
            let dirty = std::mem::take(&mut self.dirty);
            RfInfer::with_prior(&self.model, &self.store, &self.prior)
                .with_config(rfinfer)
                .run_incremental_with_scratch(&mut self.cache, &dirty, &mut self.scratch)
        } else {
            // Keep the journal and cache empty so a later switch to
            // incremental mode starts from a clean slate instead of a stale
            // one.
            self.dirty.clear();
            self.cache.clear();
            let outcome = RfInfer::with_prior(&self.model, &self.store, &self.prior)
                .with_config(rfinfer)
                .run_with_scratch(&mut self.scratch);
            (outcome, InferenceStats::default())
        };

        // Containment estimates: the M-step assignment for every object this
        // run examined. Objects the run did not see (e.g. an estimate
        // imported from another site for an object with no local readings
        // yet) keep their previous containment rather than being wiped.
        for (&object, evidence) in &outcome.objects {
            match evidence.assigned {
                Some(container) => self.containment.set(object, container),
                None => {
                    self.containment.remove(object);
                }
            }
        }

        // ...refined by change-point detection (Section 3.3 / Appendix A.2).
        let mut changes = Vec::new();
        if self.config.change_detection.is_some() {
            changes = detect_changes(&outcome.objects, threshold);
            for change in &changes {
                if let Some(new_container) = change.new_container {
                    self.containment.set(change.object, new_container);
                } else {
                    self.containment.remove(change.object);
                }
                // Per Appendix A.2: after a change at t', the strength of
                // co-location becomes the suffix sum of point evidence, and
                // data before the change point is disregarded in subsequent
                // runs so the same change is not flagged twice.
                if let Some(evidence) = outcome.objects.get_mut(&change.object) {
                    for (c, series) in &evidence.point_evidence {
                        let suffix: f64 = series
                            .iter()
                            .filter(|(t, _)| *t >= change.change_at)
                            .map(|(_, e)| e)
                            .sum();
                        evidence.weights.insert(*c, suffix);
                    }
                    evidence.assigned = change.new_container;
                }
                let removed = self
                    .store
                    .retain_ranges_for(change.object, &[(change.change_at, now)]);
                self.dirty.record_all(change.object, removed);
            }
            self.detected.extend(changes.iter().cloned());
        }

        // History truncation for the next run. Removed epochs go into the
        // dirty journal so the next incremental run invalidates exactly the
        // cache entries whose inputs they were.
        let plan = retention_plan(
            self.config.truncation,
            &outcome,
            now,
            self.config.recent_history_secs,
        );
        let tags: Vec<TagId> = self.store.tags().collect();
        for tag in tags {
            let ranges = plan.ranges_for(tag, now);
            let removed = self.store.retain_ranges_for(tag, &ranges);
            self.dirty.record_all(tag, removed);
        }

        // Share the outcome instead of cloning it: the engine and the report
        // hold the same Arc.
        let outcome = Arc::new(outcome);
        self.last_outcome = Some(Arc::clone(&outcome));
        self.last_inference_at = Some(now);
        InferenceReport {
            at: now,
            outcome,
            changes,
            retained_observations: self.store.len(),
            duration: started.elapsed(),
            stats,
        }
    }

    /// The current containment estimate (after change-point refinement).
    pub fn containment(&self) -> &ContainmentMap {
        &self.containment
    }

    /// The inferred container of one object.
    pub fn container_of(&self, object: TagId) -> Option<TagId> {
        self.containment.container_of(object)
    }

    /// The current location estimate of a tag at epoch `t`.
    pub fn location_of(&self, tag: TagId, t: Epoch) -> Option<LocationId> {
        let outcome = self.last_outcome.as_ref()?;
        if tag.is_object() {
            if let Some(container) = self.containment.container_of(tag) {
                if let Some(loc) = outcome.location_of(container, t) {
                    return Some(loc);
                }
            }
        }
        outcome.location_of(tag, t)
    }

    /// Enriched object events at epoch `t`, reflecting the engine's current
    /// (change-point refined) containment.
    pub fn events_at(&self, t: Epoch) -> Vec<ObjectEvent> {
        let Some(outcome) = self.last_outcome.as_ref() else {
            return Vec::new();
        };
        outcome
            .objects
            .keys()
            .filter_map(|&object| {
                self.location_of(object, t).map(|loc| {
                    ObjectEvent::new(t, object, loc, self.containment.container_of(object))
                })
            })
            .collect()
    }

    /// All containment changes detected so far.
    pub fn detected_changes(&self) -> &[DetectedChange] {
        &self.detected
    }

    /// The outcome of the most recent inference run.
    pub fn last_outcome(&self) -> Option<&InferenceOutcome> {
        self.last_outcome.as_deref()
    }

    /// A shared handle to the most recent outcome (no deep copy).
    pub fn last_outcome_shared(&self) -> Option<Arc<InferenceOutcome>> {
        self.last_outcome.clone()
    }

    /// The epoch of the most recent inference run, if one has happened — the
    /// scheduling anchor the distributed driver's per-site workers use to
    /// space out departure-forced runs and to skip a redundant final refresh.
    pub fn last_inference_at(&self) -> Option<Epoch> {
        self.last_inference_at
    }

    /// Number of (tag, epoch) observations currently stored.
    pub fn stored_observations(&self) -> usize {
        self.store.len()
    }

    /// The change-point threshold in force, if it has been computed — a pure
    /// read. `None` means the lazy calibration has not happened yet; call
    /// [`Self::calibrate_threshold`] to force it.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold
    }

    /// Compute (once) and cache the change-point threshold, calibrating it
    /// offline if the policy asks for calibration, and return it. Subsequent
    /// calls — and [`Self::threshold`] reads — return the cached value.
    pub fn calibrate_threshold(&mut self) -> f64 {
        if let Some(existing) = self.threshold {
            return existing;
        }
        let value = match self.config.change_detection.map(|c| c.threshold) {
            Some(ThresholdPolicy::Fixed(delta)) => delta,
            Some(ThresholdPolicy::Calibrated { samples, epochs }) => {
                let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
                ThresholdCalibrator {
                    samples,
                    epochs,
                    ..Default::default()
                }
                .calibrate(&self.model, &mut rng)
            }
            None => f64::INFINITY,
        };
        self.threshold = Some(value);
        value
    }

    /// Export the collapsed inference state of one object (Section 4.1,
    /// *Collapsing Inference State*).
    ///
    /// Weights are exported *relative to the best candidate* (the maximum is
    /// subtracted), so that at the receiving site candidates first seen there
    /// — which start with weight zero — compete fairly with the best-known
    /// container from this site, while this site's rejected decoys keep their
    /// penalty. See DESIGN.md §6 for the rationale of this refinement.
    pub fn export_collapsed(&self, object: TagId) -> CollapsedState {
        let mut weights = self
            .last_outcome
            .as_ref()
            .and_then(|o| o.objects.get(&object))
            .map(|e| e.weights.clone())
            .unwrap_or_default();
        let max = weights.values().copied().fold(f64::NEG_INFINITY, f64::max);
        if max.is_finite() {
            for w in weights.values_mut() {
                *w -= max;
            }
        }
        CollapsedState {
            object,
            weights,
            container: self.containment.container_of(object),
        }
    }

    /// Export the critical-region inference state of one object: its retained
    /// readings plus those of its candidate containers (Section 4.1,
    /// *Truncating History*).
    pub fn export_readings(&self, object: TagId) -> ReadingsState {
        let mut tags = vec![object];
        if let Some(outcome) = &self.last_outcome {
            if let Some(evidence) = outcome.objects.get(&object) {
                tags.extend(evidence.candidates.iter().copied());
            }
        }
        let mut readings = Vec::new();
        for tag in tags {
            for obs in self.store.obs_for(tag) {
                for reader in &obs.readers {
                    readings.push(RawReading::new(obs.epoch, tag, reader.reader()));
                }
            }
        }
        ReadingsState {
            object,
            readings,
            container: self.containment.container_of(object),
        }
    }

    /// Import migration state for an object arriving from another site,
    /// marking the affected tags dirty for the next incremental run.
    pub fn import_state(&mut self, state: MigrationState) {
        self.import_late_state(state);
    }

    /// Import migration state that may arrive *after* the object itself —
    /// the reconciliation path of a reliable transport whose delivery was
    /// delayed past the physical arrival. The engine has typically already
    /// cold-started the object from its local readings; the late state merges
    /// through exactly the same dirty-set journal as an on-time import, so
    /// the next incremental run folds it in bit-identically to a full
    /// recompute. Returns what was merged, so the caller can account the
    /// reconciliation.
    pub fn import_late_state(&mut self, state: MigrationState) -> ImportSummary {
        match state {
            MigrationState::None => ImportSummary::default(),
            MigrationState::Collapsed(collapsed) => {
                if let Some(container) = collapsed.container {
                    self.containment.set(collapsed.object, container);
                }
                self.prior.merge(&collapsed.to_prior());
                // Priors are re-applied from scratch every run, so no cached
                // per-epoch value needs invalidation — but the object counts
                // as dirty.
                self.dirty.mark(collapsed.object);
                ImportSummary {
                    object: Some(collapsed.object),
                    weights: collapsed.weights.len(),
                    readings: 0,
                }
            }
            MigrationState::Readings(readings) => {
                if let Some(container) = readings.container {
                    self.containment.set(readings.object, container);
                }
                self.dirty.mark(readings.object);
                let count = readings.readings.len();
                for r in readings.readings {
                    self.observe(r);
                }
                ImportSummary {
                    object: Some(readings.object),
                    weights: 0,
                    readings: count,
                }
            }
        }
    }

    /// Forget everything about a tag (used when an object permanently leaves
    /// a site and its state has been shipped elsewhere).
    pub fn forget(&mut self, tag: TagId) {
        let removed = self.store.retain_ranges_for(tag, &[]);
        self.dirty.record_all(tag, removed);
    }

    /// Enforce a per-site memory budget on the retained history.
    ///
    /// Updates `stats.high_water` with the current store size, then — only
    /// when the store exceeds `budget` — compacts: the retained window
    /// (starting at the configured recent history) halves until the store
    /// fits, removed epochs go through the dirty journal like any other
    /// truncation, and each object that lost history has its current summary
    /// weights folded into the prior first (the same collapsed state a
    /// migration ships), so its belief degrades to summary-weight semantics
    /// instead of being forgotten. Evidence-cache entries whose container no
    /// longer has retained observations are evicted afterwards. The whole
    /// pass is a pure function of engine state, so sequential, parallel and
    /// crash-replayed executions compact identically; with an unbounded
    /// budget it only tracks the high-water mark and changes nothing.
    pub fn enforce_budget(&mut self, budget: MemoryBudget, now: Epoch, stats: &mut MemoryStats) {
        stats.high_water = stats.high_water.max(self.store.len() as u64);
        if budget.is_unbounded() || self.store.len() <= budget.max_observations {
            return;
        }
        // Fold beliefs into the prior before the history that produced them
        // is dropped. `export_collapsed` reads the last outcome, not the
        // store, so the weights are the same ones a migration would carry.
        // Objects keeping their full history are left untouched — folding is
        // additive, so it must happen at most once per compaction pass.
        let mut removed_total: u64 = 0;
        let mut folded = std::collections::BTreeSet::new();
        let mut window = self.config.recent_history_secs;
        loop {
            let plan = RetentionPlan {
                per_tag: std::collections::BTreeMap::new(),
                recent_from: now.minus(window),
            };
            let tags: Vec<TagId> = self.store.tags().collect();
            for tag in tags {
                let ranges = plan.ranges_for(tag, now);
                let removed = self.store.retain_ranges_for(tag, &ranges);
                if !removed.is_empty() && tag.is_object() && folded.insert(tag) {
                    let collapsed = self.export_collapsed(tag);
                    if !collapsed.weights.is_empty() {
                        self.prior.merge(&collapsed.to_prior());
                    }
                    self.dirty.mark(tag);
                }
                removed_total += removed.len() as u64;
                self.dirty.record_all(tag, removed);
            }
            if self.store.len() <= budget.max_observations || window == 0 {
                break;
            }
            window /= 2;
        }
        if removed_total > 0 {
            stats.compactions += 1;
            stats.compacted_observations += removed_total;
        }
        stats.evicted_cache_entries += self.cache.evict_cold(&self.store) as u64;
    }

    /// Capture the engine's complete durable state — see [`EngineSnapshot`]
    /// for what is (and is not) included.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            store: self.store.clone(),
            prior: self.prior.clone(),
            containment: self.containment.clone(),
            detected: self.detected.clone(),
            last_outcome: self.last_outcome.as_deref().cloned(),
            last_inference_at: self.last_inference_at,
            threshold: self.threshold,
            dirty: self.dirty.clone(),
            cache: self.cache.clone(),
        }
    }

    /// Replace the engine's runtime state with a snapshot previously taken
    /// by [`Self::snapshot`] (on this engine or on any engine constructed
    /// with the same configuration and read-rate table). The dense-solver
    /// scratch is reset — it holds no results, only capacity — so restored
    /// runs are bit-identical to uninterrupted ones.
    pub fn restore(&mut self, snapshot: EngineSnapshot) {
        self.store = snapshot.store;
        self.prior = snapshot.prior;
        self.containment = snapshot.containment;
        self.detected = snapshot.detected;
        self.last_outcome = snapshot.last_outcome.map(Arc::new);
        self.last_inference_at = snapshot.last_inference_at;
        self.threshold = snapshot.threshold;
        self.dirty = snapshot.dirty;
        self.cache = snapshot.cache;
        self.scratch = DenseScratch::default();
    }
}

// The distributed layer runs one engine per site on worker threads; keep the
// engine (and everything it owns) `Send` by construction so a dependency
// change that silently introduces a non-`Send` member fails to compile here
// rather than deep inside the thread spawn.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<InferenceEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truncate::TruncationPolicy;
    use rfid_types::ReaderId;

    fn rates() -> ReadRateTable {
        ReadRateTable::diagonal(3, 0.8, 1e-4)
    }

    fn feed_co_travel(engine: &mut InferenceEngine, from: u32, to: u32, loc: u16) {
        for t in from..to {
            engine.observe(RawReading::new(Epoch(t), TagId::item(1), ReaderId(loc)));
            engine.observe(RawReading::new(Epoch(t), TagId::case(1), ReaderId(loc)));
            engine.observe(RawReading::new(
                Epoch(t),
                TagId::case(2),
                ReaderId((loc + 1) % 3),
            ));
        }
    }

    #[test]
    fn engine_runs_when_due_and_reports_containment() {
        let config = InferenceConfig::default()
            .with_period(10)
            .without_change_detection();
        let mut engine = InferenceEngine::new(config, rates());
        assert!(!engine.due(Epoch(0)), "no data yet");
        assert_eq!(engine.last_inference_at(), None);
        feed_co_travel(&mut engine, 0, 10, 0);
        assert!(engine.due(Epoch(10)));
        let report = engine.step(Epoch(10)).expect("inference due");
        assert_eq!(engine.last_inference_at(), Some(Epoch(10)));
        assert_eq!(engine.container_of(TagId::item(1)), Some(TagId::case(1)));
        assert_eq!(report.at, Epoch(10));
        assert!(report.duration.as_nanos() > 0);
        assert!(
            !engine.due(Epoch(15)),
            "not due again until the period elapses"
        );
        assert!(engine.due(Epoch(20)));
        assert_eq!(
            engine.location_of(TagId::item(1), Epoch(5)),
            Some(LocationId(0))
        );
        assert_eq!(engine.events_at(Epoch(5)).len(), 1);
    }

    #[test]
    fn change_point_detection_updates_containment() {
        let config = InferenceConfig::default()
            .with_period(10)
            .with_fixed_threshold(5.0)
            .with_truncation(TruncationPolicy::Full);
        let mut engine = InferenceEngine::new(config, rates());
        // First period: item travels with case 1 at location 0, case 2 at 1.
        feed_co_travel(&mut engine, 0, 20, 0);
        engine.run_inference(Epoch(20));
        assert_eq!(engine.container_of(TagId::item(1)), Some(TagId::case(1)));
        // Second period: the item now co-travels with case 2 at location 1.
        for t in 20..40u32 {
            engine.observe(RawReading::new(Epoch(t), TagId::item(1), ReaderId(1)));
            engine.observe(RawReading::new(Epoch(t), TagId::case(1), ReaderId(0)));
            engine.observe(RawReading::new(Epoch(t), TagId::case(2), ReaderId(1)));
        }
        let report = engine.run_inference(Epoch(40));
        assert!(
            !report.changes.is_empty()
                || engine.container_of(TagId::item(1)) == Some(TagId::case(2)),
            "the engine should recognise the containment change"
        );
        assert_eq!(engine.container_of(TagId::item(1)), Some(TagId::case(2)));
        assert_eq!(engine.detected_changes().len(), report.changes.len());
    }

    #[test]
    fn truncation_bounds_stored_history() {
        let config = InferenceConfig::default()
            .with_period(50)
            .with_recent_history(20)
            .without_change_detection();
        let mut engine = InferenceEngine::new(config, rates());
        feed_co_travel(&mut engine, 0, 200, 0);
        let before = engine.stored_observations();
        let report = engine.run_inference(Epoch(200));
        assert!(report.retained_observations < before, "history must shrink");
        assert_eq!(report.retained_observations, engine.stored_observations());
    }

    #[test]
    fn full_policy_keeps_all_history() {
        let config = InferenceConfig::default()
            .with_period(50)
            .with_truncation(TruncationPolicy::Full)
            .without_change_detection();
        let mut engine = InferenceEngine::new(config, rates());
        feed_co_travel(&mut engine, 0, 100, 0);
        let before = engine.stored_observations();
        engine.run_inference(Epoch(100));
        assert_eq!(engine.stored_observations(), before);
    }

    #[test]
    fn export_import_collapsed_state_transfers_belief() {
        let config = InferenceConfig::default()
            .with_period(10)
            .without_change_detection();
        let mut site_a = InferenceEngine::new(config.clone(), rates());
        // At site A the item travels with case 1; case 2 is briefly
        // co-located at the start (so it becomes a candidate) and then
        // diverges, accumulating a heavy penalty.
        for t in 0..30u32 {
            site_a.observe(RawReading::new(Epoch(t), TagId::item(1), ReaderId(0)));
            site_a.observe(RawReading::new(Epoch(t), TagId::case(1), ReaderId(0)));
            let decoy_reader = if t < 3 { 0 } else { 1 };
            site_a.observe(RawReading::new(
                Epoch(t),
                TagId::case(2),
                ReaderId(decoy_reader),
            ));
        }
        site_a.run_inference(Epoch(30));
        let state = site_a.export_collapsed(TagId::item(1));
        assert_eq!(state.container, Some(TagId::case(1)));
        assert!(!state.weights.is_empty());
        assert!(state.wire_bytes() < 200);
        // weights are exported relative to the best candidate
        assert_eq!(state.weights[&TagId::case(1)], 0.0);

        // Site B briefly sees the item co-located with the *old decoy*
        // (case 2); the imported weights keep the original belief because the
        // decoy carries a large penalty from site A.
        let mut site_b = InferenceEngine::new(config.clone(), rates());
        site_b.import_state(MigrationState::Collapsed(state.clone()));
        assert_eq!(site_b.container_of(TagId::item(1)), Some(TagId::case(1)));
        for t in 100..102u32 {
            site_b.observe(RawReading::new(Epoch(t), TagId::item(1), ReaderId(2)));
            site_b.observe(RawReading::new(Epoch(t), TagId::case(2), ReaderId(2)));
        }
        site_b.run_inference(Epoch(102));
        assert_eq!(site_b.container_of(TagId::item(1)), Some(TagId::case(1)));

        // Without the imported state the same local readings point at the
        // decoy — that is exactly the error the "None" strategy makes.
        let mut site_c = InferenceEngine::new(config, rates());
        for t in 100..102u32 {
            site_c.observe(RawReading::new(Epoch(t), TagId::item(1), ReaderId(2)));
            site_c.observe(RawReading::new(Epoch(t), TagId::case(2), ReaderId(2)));
        }
        site_c.run_inference(Epoch(102));
        assert_eq!(site_c.container_of(TagId::item(1)), Some(TagId::case(2)));
    }

    #[test]
    fn export_import_readings_state_reconstructs_history() {
        let config = InferenceConfig::default()
            .with_period(10)
            .with_truncation(TruncationPolicy::Full)
            .without_change_detection();
        let mut site_a = InferenceEngine::new(config.clone(), rates());
        feed_co_travel(&mut site_a, 0, 30, 0);
        site_a.run_inference(Epoch(30));
        let state = site_a.export_readings(TagId::item(1));
        assert!(
            state.readings.len() > 30,
            "object + candidate container readings"
        );

        let mut site_b = InferenceEngine::new(config, rates());
        site_b.import_state(MigrationState::Readings(state));
        let report = site_b.run_inference(Epoch(31));
        assert_eq!(
            report.outcome.container_of(TagId::item(1)),
            Some(TagId::case(1))
        );
    }

    #[test]
    fn late_state_reconciles_into_a_cold_started_engine() {
        // A destination that cold-started an object (its state message was
        // delayed in transit) and later merges the late state must end up
        // bit-identical to a destination that imported the state on time —
        // the dirty-set journal re-runs the affected object either way.
        let config = InferenceConfig::default()
            .with_period(10)
            .without_change_detection();
        let mut origin = InferenceEngine::new(config.clone(), rates());
        for t in 0..30u32 {
            origin.observe(RawReading::new(Epoch(t), TagId::item(1), ReaderId(0)));
            origin.observe(RawReading::new(Epoch(t), TagId::case(1), ReaderId(0)));
            let decoy_reader = if t < 3 { 0 } else { 1 };
            origin.observe(RawReading::new(
                Epoch(t),
                TagId::case(2),
                ReaderId(decoy_reader),
            ));
        }
        origin.run_inference(Epoch(30));
        let state = origin.export_collapsed(TagId::item(1));

        let local = |engine: &mut InferenceEngine| {
            for t in 100..102u32 {
                engine.observe(RawReading::new(Epoch(t), TagId::item(1), ReaderId(2)));
                engine.observe(RawReading::new(Epoch(t), TagId::case(2), ReaderId(2)));
            }
        };

        // On time: state imported before any local evidence.
        let mut on_time = InferenceEngine::new(config.clone(), rates());
        on_time.import_state(MigrationState::Collapsed(state.clone()));
        local(&mut on_time);
        on_time.run_inference(Epoch(110));

        // Degraded: the object arrives first, the engine cold-starts it from
        // local readings (and believes the decoy), then the state gets
        // through and is reconciled.
        let mut degraded = InferenceEngine::new(config, rates());
        local(&mut degraded);
        degraded.run_inference(Epoch(102));
        assert_eq!(
            degraded.container_of(TagId::item(1)),
            Some(TagId::case(2)),
            "cold start believes the local decoy"
        );
        let summary = degraded.import_late_state(MigrationState::Collapsed(state));
        assert!(summary.merged());
        assert_eq!(summary.object, Some(TagId::item(1)));
        assert!(summary.weights > 0);
        assert_eq!(summary.readings, 0);
        degraded.run_inference(Epoch(110));

        assert_eq!(
            degraded.container_of(TagId::item(1)),
            on_time.container_of(TagId::item(1)),
            "reconciliation must converge to the on-time outcome"
        );
        assert_eq!(degraded.container_of(TagId::item(1)), Some(TagId::case(1)));

        // A no-op migration merges nothing.
        assert!(!degraded.import_late_state(MigrationState::None).merged());
    }

    #[test]
    fn forget_drops_a_tag_from_the_store() {
        let config = InferenceConfig::default().without_change_detection();
        let mut engine = InferenceEngine::new(config, rates());
        feed_co_travel(&mut engine, 0, 5, 0);
        let before = engine.stored_observations();
        engine.forget(TagId::item(1));
        assert!(engine.stored_observations() < before);
    }

    /// Restoring a snapshot into a fresh engine and continuing must be
    /// bit-identical to the engine that never stopped: same containment,
    /// same outcome, same reuse counters (the cache travels with the
    /// snapshot).
    #[test]
    fn snapshot_restore_round_trips_bitwise() {
        let config = InferenceConfig::default()
            .with_period(10)
            .with_fixed_threshold(5.0)
            .with_truncation(TruncationPolicy::Full);
        let mut live = InferenceEngine::new(config.clone(), rates());
        feed_co_travel(&mut live, 0, 20, 0);
        live.run_inference(Epoch(20));
        // More readings after the run, so the dirty journal is non-empty at
        // snapshot time.
        feed_co_travel(&mut live, 20, 25, 0);
        let snapshot = live.snapshot();
        assert_eq!(snapshot, live.snapshot(), "snapshot is a pure read");

        let mut restored = InferenceEngine::new(config, rates());
        restored.restore(snapshot);
        assert_eq!(
            restored.container_of(TagId::item(1)),
            live.container_of(TagId::item(1))
        );
        assert_eq!(restored.last_inference_at(), live.last_inference_at());

        // Continue both engines identically; everything must match bitwise.
        for engine in [&mut live, &mut restored] {
            feed_co_travel(engine, 25, 40, 0);
        }
        let live_report = live.run_inference(Epoch(40));
        let restored_report = restored.run_inference(Epoch(40));
        assert_eq!(live_report.outcome, restored_report.outcome);
        assert_eq!(live_report.stats, restored_report.stats);
        assert_eq!(live_report.changes, restored_report.changes);
        assert_eq!(live.snapshot(), restored.snapshot());
    }

    #[test]
    fn fixed_and_calibrated_thresholds_are_produced() {
        let mut fixed = InferenceEngine::new(
            InferenceConfig::default().with_fixed_threshold(42.0),
            rates(),
        );
        assert_eq!(fixed.threshold(), None, "calibration is lazy");
        assert_eq!(fixed.calibrate_threshold(), 42.0);
        assert_eq!(fixed.threshold(), Some(42.0), "read-only getter sees it");
        let mut off = InferenceEngine::new(
            InferenceConfig::default().without_change_detection(),
            rates(),
        );
        assert_eq!(off.calibrate_threshold(), f64::INFINITY);
        let mut calibrated = InferenceEngine::new(InferenceConfig::default(), rates());
        let t = calibrated.calibrate_threshold();
        assert!(t.is_finite() && t > 0.0);
        // cached on the second call
        assert_eq!(calibrated.calibrate_threshold(), t);
        assert_eq!(calibrated.threshold(), Some(t));
    }
}
