//! The E-step of RFINFER: the posterior distribution over a container's
//! location at one epoch (Eq. 4 of the paper).
//!
//! ```text
//! p(l_tc = a | x, y)  ∝  Π_r p(x_trc | a)  ·  Π_{o ∈ c}  Π_r p(y_tro | a)
//! ```
//!
//! i.e. the prior over locations is uniform, and the evidence combines the
//! readings of the container itself with the readings of every object
//! currently believed to be inside it — this is "smoothing over containment".

use crate::likelihood::LikelihoodModel;
use rfid_types::LocationId;
use serde::{Deserialize, Serialize};

/// A normalized distribution over the discrete set of locations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Posterior {
    probs: Vec<f64>,
}

impl Posterior {
    /// Build a posterior from unnormalized log-weights (one per location),
    /// normalizing in place (the input vector becomes the probability
    /// storage — no second allocation).
    ///
    /// Uses the log-sum-exp trick so that very negative log-likelihoods do
    /// not underflow.
    pub fn from_log_weights(mut log_weights: Vec<f64>) -> Posterior {
        normalize_log_weights(&mut log_weights);
        Posterior { probs: log_weights }
    }

    /// Rebuild a posterior from an already-normalized probability row — the
    /// arena layout of the cross-run cache stores rows flat, and inflating
    /// one back into a `Posterior` copies the bits verbatim.
    pub(crate) fn from_probs(probs: Vec<f64>) -> Posterior {
        Posterior { probs }
    }

    /// Vector-path variant of [`Self::from_log_weights`], normalizing
    /// through the chunk-of-8 kernels
    /// ([`kernels::exp_normalize`](crate::dense::kernels::exp_normalize)):
    /// chunked max, scalar libm `exp` per lane, sequential sum, vectorized
    /// divide. Bit-identical to the scalar constructor for every input.
    pub fn from_log_weights_vector(mut log_weights: Vec<f64>) -> Posterior {
        crate::dense::kernels::exp_normalize(&mut log_weights);
        Posterior { probs: log_weights }
    }

    /// [`Self::map_location`] over a borrowed probability row (ascending
    /// location order), without materializing a `Posterior`: the same
    /// later-ties-win `max_by` scan, so the result is identical for any row
    /// a normalization kernel produced. Lets callers that only need the MAP
    /// location normalize into a reusable scratch buffer instead of
    /// allocating per epoch.
    pub fn map_location_of_row(probs: &[f64]) -> LocationId {
        let (idx, _) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty");
        LocationId(idx as u16)
    }

    /// The uniform distribution over `n` locations.
    pub fn uniform(n: usize) -> Posterior {
        Posterior {
            probs: vec![1.0 / n as f64; n],
        }
    }

    /// Probability mass assigned to location `a`.
    pub fn prob(&self, a: LocationId) -> f64 {
        self.probs[a.index()]
    }

    /// Iterate over `(location, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LocationId, f64)> + '_ {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, p)| (LocationId(i as u16), *p))
    }

    /// The maximum a-posteriori location.
    pub fn map_location(&self) -> LocationId {
        let (idx, _) = self
            .probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty");
        LocationId(idx as u16)
    }

    /// The probability row itself, in ascending location order — the lane
    /// layout the dense kernels consume.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether there are no locations (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Expected value of an arbitrary per-location function under this
    /// posterior: `sum_a q(a) f(a)`. This is the inner sum of both the
    /// co-location weight (Eq. 5) and the point evidence (Eq. 7).
    pub fn expect<F: FnMut(LocationId) -> f64>(&self, mut f: F) -> f64 {
        self.iter().map(|(a, q)| q * f(a)).sum()
    }

    /// [`Self::expect`] over a precomputed per-location value row (ascending
    /// location order, the layout of
    /// [`ReaderSetTable::row`](crate::likelihood::ReaderSetTable::row)):
    /// `sum_a q(a) row[a]`, summed in the same order as `expect`, so the
    /// result is bit-identical to evaluating the function per location.
    pub fn expect_row(&self, row: &[f64]) -> f64 {
        expect_row_of(&self.probs, row)
    }
}

/// Normalize a row of unnormalized log-weights in place (the body of
/// [`Posterior::from_log_weights`], usable on a slice of a posterior arena):
/// log-sum-exp shift, scalar `exp` per entry, sequential sum, divide — or the
/// uniform fallback when everything underflowed.
pub fn normalize_log_weights(log_weights: &mut [f64]) {
    assert!(!log_weights.is_empty(), "need at least one location");
    let max = log_weights
        .iter()
        .copied()
        // LINT-ALLOW(float-exactness): this fold IS the scalar reference order that the dense kernels must reproduce; `f64::max` is order-independent here besides
        .fold(f64::NEG_INFINITY, f64::max);
    for lw in log_weights.iter_mut() {
        *lw = (*lw - max).exp();
    }
    let probs = log_weights;
    let sum: f64 = probs.iter().sum();
    if sum > 0.0 {
        for p in probs.iter_mut() {
            *p /= sum;
        }
    } else {
        let uniform = 1.0 / probs.len() as f64;
        probs.iter_mut().for_each(|p| *p = uniform);
    }
}

/// [`Posterior::expect_row`] over a borrowed probability row — the same
/// zipped multiply-accumulate in the same order, so the result is
/// bit-identical for rows taken out of a posterior arena.
pub fn expect_row_of(q: &[f64], row: &[f64]) -> f64 {
    q.iter().zip(row).map(|(q, v)| q * v).sum()
}

/// Compute the E-step posterior for one container at one epoch.
///
/// * `container_readers` — readers that detected the container this epoch
///   (`None` = missed entirely).
/// * `member_readers` — for each object currently assigned to the container,
///   the readers that detected it this epoch (`None` = missed).
pub fn container_posterior(
    model: &LikelihoodModel,
    container_readers: Option<&[LocationId]>,
    member_readers: &[Option<&[LocationId]>],
) -> Posterior {
    let log_weights: Vec<f64> = model
        .locations()
        .map(|a| {
            let mut ll = model.tag_loglik_opt(container_readers, a);
            for member in member_readers {
                ll += model.tag_loglik_opt(*member, a);
            }
            ll
        })
        .collect();
    Posterior::from_log_weights(log_weights)
}

/// [`container_posterior`] over precomputed log-likelihood rows: the base row
/// is the container's loglik row at this epoch (the all-miss row when it was
/// not read), and each member contributes its own row. Per location the
/// addends accumulate in member order — the same sequence of floating-point
/// additions as the per-location loop of [`container_posterior`], so the
/// result is bit-identical.
pub fn container_posterior_rows<'r>(
    base_row: &[f64],
    member_rows: impl Iterator<Item = &'r [f64]>,
) -> Posterior {
    let mut log_weights = base_row.to_vec();
    for row in member_rows {
        for (lw, v) in log_weights.iter_mut().zip(row) {
            *lw += v;
        }
    }
    Posterior::from_log_weights(log_weights)
}

/// Vector-path variant of [`container_posterior_rows`]: the member rows
/// accumulate through the lane-parallel
/// [`kernels::add_assign_rows`](crate::dense::kernels::add_assign_rows)
/// (elementwise, member order preserved per location) and the normalization
/// runs in place through [`Posterior::from_log_weights_vector`]. Bit-identical
/// to the scalar variant for every input.
pub fn container_posterior_rows_vector<'r>(
    base_row: &[f64],
    member_rows: impl Iterator<Item = &'r [f64]>,
) -> Posterior {
    let mut log_weights = base_row.to_vec();
    for row in member_rows {
        crate::dense::kernels::add_assign_rows(&mut log_weights, row);
    }
    Posterior::from_log_weights_vector(log_weights)
}

/// [`container_posterior_rows`] writing its normalized row onto the tail of a
/// posterior arena instead of materializing a `Posterior`: appends the base
/// row, accumulates each member row elementwise in member order, then
/// normalizes the tail in place. The exact operation sequence of the
/// allocating variant, so the stored row is bit-identical.
pub fn container_posterior_row_into<'r>(
    base_row: &[f64],
    member_rows: impl Iterator<Item = &'r [f64]>,
    out: &mut Vec<f64>,
) {
    let start = out.len();
    out.extend_from_slice(base_row);
    let tail = &mut out[start..];
    for row in member_rows {
        for (lw, v) in tail.iter_mut().zip(row) {
            *lw += v;
        }
    }
    normalize_log_weights(tail);
}

/// Vector-path variant of [`container_posterior_row_into`]: member rows
/// accumulate through the lane-parallel
/// [`kernels::add_assign_rows`](crate::dense::kernels::add_assign_rows) and
/// the tail normalizes through
/// [`kernels::exp_normalize`](crate::dense::kernels::exp_normalize).
/// Bit-identical to the scalar variant for every input.
pub fn container_posterior_row_into_vector<'r>(
    base_row: &[f64],
    member_rows: impl Iterator<Item = &'r [f64]>,
    out: &mut Vec<f64>,
) {
    let start = out.len();
    out.extend_from_slice(base_row);
    let tail = &mut out[start..];
    for row in member_rows {
        crate::dense::kernels::add_assign_rows(tail, row);
    }
    crate::dense::kernels::exp_normalize(tail);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_types::ReadRateTable;

    fn model() -> LikelihoodModel {
        LikelihoodModel::new(ReadRateTable::diagonal(4, 0.8, 1e-4))
    }

    #[test]
    fn posterior_normalizes_and_finds_map() {
        let p = Posterior::from_log_weights(vec![-10.0, -1.0, -5.0, -20.0]);
        let total: f64 = p.iter().map(|(_, q)| q).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(p.map_location(), LocationId(1));
        assert!(p.prob(LocationId(1)) > p.prob(LocationId(0)));
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn extreme_log_weights_do_not_underflow() {
        let p = Posterior::from_log_weights(vec![-1e6, -1e6 + 2.0, -1e6 - 50.0]);
        assert!(p.iter().all(|(_, q)| q.is_finite()));
        assert_eq!(p.map_location(), LocationId(1));
    }

    #[test]
    fn uniform_posterior_is_flat() {
        let p = Posterior::uniform(5);
        assert!((p.prob(LocationId(0)) - 0.2).abs() < 1e-12);
        assert!((p.prob(LocationId(4)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn container_reading_dominates_when_members_unread() {
        let m = model();
        let p = container_posterior(&m, Some(&[LocationId(2)]), &[None, None]);
        assert_eq!(p.map_location(), LocationId(2));
        assert!(p.prob(LocationId(2)) > 0.9);
    }

    #[test]
    fn member_readings_locate_an_unread_container() {
        // The key property of smoothing over containment: at t=3 in Figure 1
        // the container is missed, but reading one of its objects places it.
        let m = model();
        let p = container_posterior(
            &m,
            None,
            &[Some(&[LocationId(1)]), None, Some(&[LocationId(1)])],
        );
        assert_eq!(p.map_location(), LocationId(1));
        assert!(p.prob(LocationId(1)) > 0.9);
    }

    #[test]
    fn conflicting_readings_split_the_posterior() {
        let m = model();
        let p = container_posterior(&m, Some(&[LocationId(0)]), &[Some(&[LocationId(3)])]);
        // Equal evidence on both sides: neither location should dominate the
        // other by much, and together they should hold almost all the mass.
        let p0 = p.prob(LocationId(0));
        let p3 = p.prob(LocationId(3));
        assert!((p0 - p3).abs() < 1e-6);
        assert!(p0 + p3 > 0.99);
    }

    #[test]
    fn expectation_weights_by_posterior_mass() {
        let p = Posterior::from_log_weights(vec![0.0, 0.0]);
        let e = p.expect(|a| if a == LocationId(0) { 2.0 } else { 4.0 });
        assert!((e - 3.0).abs() < 1e-12);
        // the row variant is the same sum in the same order
        assert_eq!(p.expect_row(&[2.0, 4.0]), e);
    }

    /// The rows-based posterior is bit-identical to the per-location loop of
    /// `container_posterior`, for every combination of read and missed
    /// container/members.
    #[test]
    fn posterior_from_rows_matches_container_posterior() {
        let m = model();
        let row_of = |readers: Option<&[LocationId]>| -> Vec<f64> {
            m.locations()
                .map(|a| m.tag_loglik_opt(readers, a))
                .collect()
        };
        let sets: Vec<Option<Vec<LocationId>>> = vec![
            None,
            Some(vec![LocationId(1)]),
            Some(vec![LocationId(0), LocationId(2)]),
        ];
        for container in &sets {
            for m1 in &sets {
                for m2 in &sets {
                    let reference = container_posterior(
                        &m,
                        container.as_deref(),
                        &[m1.as_deref(), m2.as_deref()],
                    );
                    let member_rows = [row_of(m1.as_deref()), row_of(m2.as_deref())];
                    let dense = container_posterior_rows(
                        &row_of(container.as_deref()),
                        member_rows.iter().map(|r| r.as_slice()),
                    );
                    assert_eq!(dense, reference);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one location")]
    fn empty_log_weights_panic() {
        let _ = Posterior::from_log_weights(vec![]);
    }
}
