//! Sharded, thread-per-site execution of the federated driver.
//!
//! The paper's architectural point (Section 4) is that federated inference is
//! *embarrassingly per-site*: each site owns its readers, its engine and its
//! query processor, and the only cross-site traffic is the migrating state of
//! dispatched objects. This module makes that independence real in the
//! execution model:
//!
//! ```text
//!            run_parallel (coordinator)
//!   ┌───────────────┬───────────────┬───────────────┐
//!   worker 0        worker 1        worker 2          std::thread::scope
//!   sites 0,3,6…    sites 1,4,7…    sites 2,5,8…      (round-robin shards)
//!   │ ingest        │ ingest        │ ingest          per epoch t:
//!   │ deliver(t)    │ deliver(t)    │ deliver(t)        arrivals
//!   │ depart(t) ──msg──▶ mpsc ◀──msg── depart(t)        dispatches
//!   ├───────────────┴──barrier──────┴───────────────┤  epoch-stride sync
//!   │ drain inbox → zero-transit → step + feed events│  second pass + P4
//!   └───────────────┬───────────────┬───────────────┘
//!            merge_outcomes (comm, alerts, containment, ONS)
//! ```
//!
//! Determinism: each worker drives the same [`SiteState`] methods in the same
//! per-epoch order as the sequential replay; custody is tracked by a local
//! [`OnsTracker`] replica (a pure function of the static transfer schedule);
//! and arrival batches are re-sorted into sequential generation order before
//! import. The per-epoch barrier guarantees every shipment departing at epoch
//! `t` is in its destination's channel before any worker processes the rest
//! of epoch `t`; shipments a racing worker sends from epoch `t+1` early are
//! buffered by arrival epoch, and [`SiteState::deliver`] holds zero-transit
//! shipments back for the post-departure pass of their epoch. The merged
//! [`DistributedOutcome`] is therefore bit-identical to the sequential
//! driver's.

use crate::driver::{
    merge_outcomes, DistributedDriver, DistributedOutcome, FederatedCtx, OnsTracker, ShipmentMsg,
    SiteOutcome, SiteState,
};
use rfid_sim::ChainTrace;
use rfid_types::{Epoch, TagId};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex, PoisonError};

/// A reusable epoch barrier that — unlike `std::sync::Barrier` — can be
/// *poisoned*: when one worker panics, every sibling blocked on (or later
/// reaching) the barrier panics too instead of waiting forever, so the
/// original panic propagates through `std::thread::scope` as a failure
/// rather than deadlocking the run (and CI) at the next epoch boundary.
struct EpochBarrier {
    state: Mutex<BarrierState>,
    condvar: Condvar,
    workers: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl EpochBarrier {
    fn new(workers: usize) -> EpochBarrier {
        EpochBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            condvar: Condvar::new(),
            workers,
        }
    }

    /// Block until every worker arrives, or until the barrier is poisoned —
    /// in which case this panics (after releasing the lock, so the poisoning
    /// thread's own unwind never double-panics).
    fn wait(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !state.poisoned {
            state.arrived += 1;
            if state.arrived == self.workers {
                state.arrived = 0;
                state.generation = state.generation.wrapping_add(1);
                self.condvar.notify_all();
                return;
            }
            let generation = state.generation;
            while state.generation == generation && !state.poisoned {
                state = self
                    .condvar
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        let poisoned = state.poisoned;
        drop(state);
        assert!(
            !poisoned,
            "epoch barrier poisoned: a sibling site worker panicked"
        );
    }

    /// Mark the barrier poisoned and wake every waiter.
    fn poison(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.poisoned = true;
        self.condvar.notify_all();
    }
}

/// Poisons the barrier when its worker unwinds, releasing the siblings.
struct PoisonOnPanic<'a>(&'a EpochBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Run the federated replay with sites sharded round-robin across
/// `config.num_workers` threads (capped at the site count).
pub(crate) fn run_parallel(driver: &DistributedDriver, chain: &ChainTrace) -> DistributedOutcome {
    let num_sites = chain.sites.len();
    let workers = driver.config().num_workers.min(num_sites);
    if workers <= 1 || num_sites <= 1 {
        return driver.run_federated(chain);
    }

    let ctx = FederatedCtx::new(driver, chain);
    let objects = chain.objects();
    let mut senders: Vec<Sender<ShipmentMsg>> = Vec::with_capacity(workers);
    let mut receivers: Vec<Receiver<ShipmentMsg>> = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(rx);
    }
    let barrier = EpochBarrier::new(workers);

    let mut outcomes: Vec<SiteOutcome> = Vec::with_capacity(num_sites);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (w, rx) in receivers.into_iter().enumerate() {
            let txs = senders.clone();
            let (ctx, barrier, objects) = (&ctx, &barrier, objects.as_slice());
            handles.push(
                scope.spawn(move || worker_loop(w, workers, ctx, chain, rx, txs, barrier, objects)),
            );
        }
        // The coordinator's sender clones die here so that every channel
        // closes once its peers finish.
        drop(senders);
        for handle in handles {
            match handle.join() {
                Ok(worker_outcomes) => outcomes.extend(worker_outcomes),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    let mut ons = OnsTracker::new();
    ons.advance(&chain.transfers, Epoch(ctx.horizon));
    merge_outcomes(outcomes, ons.into_ons())
}

/// One worker: drives the epoch loop for its shard of sites, exchanging
/// shipments with the other workers over channels.
#[allow(clippy::too_many_arguments)]
fn worker_loop<'a>(
    worker: usize,
    workers: usize,
    ctx: &FederatedCtx<'_>,
    chain: &'a ChainTrace,
    rx: Receiver<ShipmentMsg>,
    txs: Vec<Sender<ShipmentMsg>>,
    barrier: &EpochBarrier,
    objects: &[TagId],
) -> Vec<SiteOutcome> {
    // If anything below panics, free the siblings blocked on the barrier.
    let _poison_guard = PoisonOnPanic(barrier);
    // Round-robin shard: worker w owns sites w, w+workers, w+2·workers, …
    let mut sites: Vec<SiteState<'a>> = (worker..chain.sites.len())
        .step_by(workers)
        .map(|site| SiteState::new(ctx, chain, site))
        .collect();
    let mut ons = OnsTracker::new();
    let mut outbound: Vec<ShipmentMsg> = Vec::new();

    for t in 0..=ctx.horizon {
        let now = Epoch(t);
        // Scheduled faults first — identical to the sequential replay — then
        // local streams and previously-buffered arrivals, then dispatches.
        for site in sites.iter_mut() {
            site.maybe_crash(ctx, chain, now);
            site.ingest(now);
            site.deliver(now);
        }
        for site in sites.iter_mut() {
            site.depart(ctx, now, &mut outbound);
        }
        for msg in outbound.drain(..) {
            let dest = msg.to.0 as usize % workers;
            txs[dest]
                .send(msg)
                .expect("destination worker outlives the epoch loop");
        }
        // Epoch-stride barrier: after it, every shipment departing at `t`
        // (from any worker) is in its destination worker's channel. A racing
        // worker may already have sent epoch t+1 departures — those carry
        // arrival epochs ≥ t+1, get buffered by arrival epoch, and if they
        // are zero-transit (arrive == depart == t+1) the arrival pass of
        // t+1 holds them back for the post-departure pass, exactly where
        // the sequential replay imports them.
        barrier.wait();
        while let Ok(msg) = rx.try_recv() {
            let local = msg.to.0 as usize / workers;
            sites[local].receive(msg);
        }
        // Zero-transit deliveries, then the periodic step — against the
        // custody replica as of this epoch's dispatches.
        for site in sites.iter_mut() {
            site.deliver_zero_transit(now);
        }
        ons.advance(&chain.transfers, now);
        for site in sites.iter_mut() {
            site.step_and_feed(ctx, now, ons.get());
            // Durability: cut a checkpoint at the policy boundary. The inbox
            // section is filtered to shipments departing ≤ `now`, so a racing
            // sibling's early epoch-(t+1) delivery cannot leak into it and
            // checkpoint bytes match the sequential replay's.
            site.maybe_checkpoint(now);
        }
    }

    let horizon = Epoch(ctx.horizon);
    sites
        .into_iter()
        .map(|mut site| {
            site.finalize(horizon);
            site.into_outcome(objects, ons.get())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn single_worker_barrier_never_blocks() {
        let barrier = EpochBarrier::new(1);
        for _ in 0..3 {
            barrier.wait();
        }
    }

    #[test]
    fn barrier_releases_every_generation() {
        let barrier = EpochBarrier::new(2);
        std::thread::scope(|scope| {
            let peer = scope.spawn(|| {
                for _ in 0..100 {
                    barrier.wait();
                }
            });
            for _ in 0..100 {
                barrier.wait();
            }
            peer.join().unwrap();
        });
    }

    #[test]
    fn poisoned_barrier_panics_waiters_instead_of_hanging() {
        let barrier = EpochBarrier::new(2);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| catch_unwind(AssertUnwindSafe(|| barrier.wait())).is_err());
            // Never arrive at the barrier: poison it instead, as a panicking
            // worker's drop guard would.
            std::thread::sleep(std::time::Duration::from_millis(20));
            barrier.poison();
            assert!(
                waiter.join().unwrap(),
                "the waiter must panic once poisoned, not block forever"
            );
        });
        // Late arrivals see the poison immediately.
        assert!(catch_unwind(AssertUnwindSafe(|| barrier.wait())).is_err());
    }

    #[test]
    fn unwinding_worker_poisons_the_barrier_via_its_guard() {
        let barrier = EpochBarrier::new(2);
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            let _guard = PoisonOnPanic(&barrier);
            panic!("site worker died mid-epoch");
        }));
        assert!(unwound.is_err());
        assert!(
            catch_unwind(AssertUnwindSafe(|| barrier.wait())).is_err(),
            "the guard must have poisoned the barrier during unwind"
        );
    }
}
