//! # rfid-dist
//!
//! Distributed inference and query processing — the Section 4 contribution of
//! *"Distributed Inference and Query Processing for RFID Tracking and
//! Monitoring"* (Cao, Sutton, Diao, Shenoy; PVLDB 4(5), 2011).
//!
//! A supply chain spans many sites; each runs its own inference engine and
//! query processor over its own readers. When objects are dispatched to the
//! next site, the interesting question is what state should travel with them:
//!
//! | [`MigrationStrategy`] | what moves | paper |
//! |---|---|---|
//! | `None` | nothing — every site starts cold | Table 5 baseline |
//! | `CriticalRegionReadings` | the retained critical-region readings | §4.1, *Truncating History* |
//! | `CollapsedWeights` | one co-location weight per candidate container | §4.1, *Collapsing Inference State* |
//! | `Centralized` | every raw reading, to one central engine | accuracy upper bound |
//!
//! Query state (the per-object pattern-automaton state of Section 4.2) also
//! migrates, compressed with centroid-based sharing, and an EPCglobal-style
//! [`Ons`] records which site owns which tag. Every byte that crosses a site
//! boundary is charged to a [`MessageKind`] in a [`CommCost`], which is how
//! the Table 5 communication-cost comparison is produced. Every payload is
//! encoded with the [`WireFormat`] selected by
//! [`DistributedConfig::wire_format`] — the compact binary codec of
//! `rfid-wire` by default, JSON for debugging — and the charged bytes are
//! the encoded lengths, not estimates.
//!
//! ## Example
//!
//! ```
//! use rfid_dist::{DistributedConfig, DistributedDriver, MigrationStrategy};
//! use rfid_core::InferenceConfig;
//! use rfid_sim::{ChainConfig, SupplyChainSimulator, WarehouseConfig};
//!
//! let chain = SupplyChainSimulator::new(ChainConfig {
//!     warehouse: WarehouseConfig::default()
//!         .with_length(900)
//!         .with_items_per_case(2)
//!         .with_cases_per_pallet(2),
//!     num_warehouses: 2,
//!     transit_secs: 60,
//!     fanout: 1,
//! })
//! .generate();
//! let outcome = DistributedDriver::new(DistributedConfig {
//!     strategy: MigrationStrategy::CollapsedWeights,
//!     inference: InferenceConfig::default().without_change_detection(),
//!     ..Default::default()
//! })
//! .run(&chain);
//! assert!(outcome.comm.total_bytes() > 0 || chain.transfers.is_empty());
//! ```

#![warn(missing_docs)]

pub mod comm;
pub mod config;
pub mod driver;
pub mod ons;
pub mod oracle;
mod parallel;
pub mod transport;

pub use comm::{CommCost, MessageKind};
pub use config::{DistributedConfig, MigrationStrategy, TransportConfig};
pub use driver::{DistributedDriver, DistributedOutcome};
pub use ons::{Ons, ONS_UPDATE_BYTES};
pub use oracle::{assert_audit, audit, Violation};
pub use rfid_wire::{EdgeLedger, QuarantineEntry, WireCodec, WireFormat};
pub use transport::{TransportMode, TransportStats};
