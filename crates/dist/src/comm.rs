//! Communication-cost accounting (Table 5 and Section 5.3).
//!
//! Every byte that crosses a site boundary is charged to one of a small set
//! of [`MessageKind`]s, so experiments can report both the total
//! communication cost of a migration strategy and its breakdown (raw
//! readings vs collapsed inference state vs query state vs ONS updates).

use serde::{Deserialize, Serialize};

/// The kinds of inter-site messages the distributed system exchanges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Raw readings shipped to a central server (the Centralized baseline)
    /// or inside critical-region migration state.
    RawReadings,
    /// Collapsed or critical-region inference state moving with an object.
    InferenceState,
    /// Migrated per-object query state (possibly centroid-compressed).
    QueryState,
    /// Object-name-service custody updates (which site holds which tag).
    OnsUpdate,
    /// Reliable-transport control traffic: acks and anti-entropy resync
    /// requests. Only charged when the transport's ack/retransmit machinery
    /// is active (a fault plan with loss or partitions).
    Control,
}

impl MessageKind {
    /// Number of message kinds — the arity of every per-kind array,
    /// including the checkpoint form.
    pub const KINDS: usize = 5;

    /// All message kinds, in a fixed order.
    pub const ALL: [MessageKind; MessageKind::KINDS] = [
        MessageKind::RawReadings,
        MessageKind::InferenceState,
        MessageKind::QueryState,
        MessageKind::OnsUpdate,
        MessageKind::Control,
    ];

    fn index(self) -> usize {
        match self {
            MessageKind::RawReadings => 0,
            MessageKind::InferenceState => 1,
            MessageKind::QueryState => 2,
            MessageKind::OnsUpdate => 3,
            MessageKind::Control => 4,
        }
    }
}

/// Byte tallies per [`MessageKind`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommCost {
    bytes: [usize; MessageKind::KINDS],
    messages: [usize; MessageKind::KINDS],
}

impl CommCost {
    /// An empty tally.
    pub fn new() -> CommCost {
        CommCost::default()
    }

    /// Charge one message of `kind` costing `bytes` bytes.
    pub fn record(&mut self, kind: MessageKind, bytes: usize) {
        self.bytes[kind.index()] += bytes;
        self.messages[kind.index()] += 1;
    }

    /// Total bytes transferred across all message kinds.
    pub fn total_bytes(&self) -> usize {
        self.bytes.iter().sum()
    }

    /// Bytes transferred by one message kind.
    pub fn bytes_of_kind(&self, kind: MessageKind) -> usize {
        self.bytes[kind.index()]
    }

    /// Number of messages of one kind.
    pub fn messages_of_kind(&self, kind: MessageKind) -> usize {
        self.messages[kind.index()]
    }

    /// Total number of messages across all kinds.
    pub fn total_messages(&self) -> usize {
        self.messages.iter().sum()
    }

    /// The tally as `(bytes, messages)` arrays in [`MessageKind::ALL`]
    /// order — the form a [`SiteCheckpoint`](rfid_wire::SiteCheckpoint)
    /// carries.
    pub fn to_parts(&self) -> ([u64; MessageKind::KINDS], [u64; MessageKind::KINDS]) {
        (
            self.bytes.map(|b| b as u64),
            self.messages.map(|m| m as u64),
        )
    }

    /// Rebuild a tally from [`Self::to_parts`] arrays, the restore path of a
    /// checkpointed site. Round-trips exactly: `CommCost::from_parts(a, b)`
    /// of `c.to_parts()` equals `c`.
    pub fn from_parts(
        bytes: [u64; MessageKind::KINDS],
        messages: [u64; MessageKind::KINDS],
    ) -> CommCost {
        CommCost {
            bytes: bytes.map(|b| b as usize),
            messages: messages.map(|m| m as usize),
        }
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &CommCost) {
        for i in 0..self.bytes.len() {
            self.bytes[i] += other.bytes[i];
            self.messages[i] += other.messages[i];
        }
    }

    /// Merge many tallies — one per site worker, typically — into one.
    /// Addition is commutative, so the result is independent of the order in
    /// which workers finished.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a CommCost>) -> CommCost {
        let mut total = CommCost::new();
        for part in parts {
            total.merge(part);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kind_tallies_sum_to_the_total() {
        let mut cost = CommCost::new();
        cost.record(MessageKind::RawReadings, 140);
        cost.record(MessageKind::InferenceState, 33);
        cost.record(MessageKind::InferenceState, 17);
        cost.record(MessageKind::QueryState, 256);
        cost.record(MessageKind::OnsUpdate, 10);
        let by_kind: usize = MessageKind::ALL
            .iter()
            .map(|&k| cost.bytes_of_kind(k))
            .sum();
        assert_eq!(by_kind, cost.total_bytes());
        assert_eq!(cost.total_bytes(), 456);
        assert_eq!(cost.messages_of_kind(MessageKind::InferenceState), 2);
        assert_eq!(cost.total_messages(), 5);
    }

    #[test]
    fn merge_adds_up() {
        let mut a = CommCost::new();
        a.record(MessageKind::QueryState, 5);
        let mut b = CommCost::new();
        b.record(MessageKind::QueryState, 7);
        b.record(MessageKind::OnsUpdate, 10);
        a.merge(&b);
        assert_eq!(a.bytes_of_kind(MessageKind::QueryState), 12);
        assert_eq!(a.total_bytes(), 22);
        assert_eq!(a.total_messages(), 3);
    }

    #[test]
    fn merged_aggregates_per_worker_tallies() {
        let mut a = CommCost::new();
        a.record(MessageKind::InferenceState, 100);
        let mut b = CommCost::new();
        b.record(MessageKind::InferenceState, 25);
        b.record(MessageKind::RawReadings, 14);
        let c = CommCost::new();
        let forward = CommCost::merged([&a, &b, &c]);
        let backward = CommCost::merged([&c, &b, &a]);
        assert_eq!(forward, backward);
        assert_eq!(forward.total_bytes(), 139);
        assert_eq!(forward.messages_of_kind(MessageKind::InferenceState), 2);
        assert_eq!(
            CommCost::merged(std::iter::empty::<&CommCost>()).total_bytes(),
            0
        );
    }

    #[test]
    fn parts_round_trip_the_tally() {
        let mut cost = CommCost::new();
        cost.record(MessageKind::RawReadings, 140);
        cost.record(MessageKind::InferenceState, 33);
        cost.record(MessageKind::QueryState, 256);
        cost.record(MessageKind::QueryState, 4);
        cost.record(MessageKind::OnsUpdate, 10);
        cost.record(MessageKind::Control, 6);
        let (bytes, messages) = cost.to_parts();
        assert_eq!(CommCost::from_parts(bytes, messages), cost);
        assert_eq!(bytes[2], 260, "kind order must match MessageKind::ALL");
        assert_eq!(messages[2], 2);
        assert_eq!(bytes[4], 6, "control is the fifth kind");
        assert_eq!(bytes.len(), MessageKind::KINDS);
    }

    #[test]
    fn empty_cost_is_zero() {
        let cost = CommCost::new();
        assert_eq!(cost.total_bytes(), 0);
        assert_eq!(cost.total_messages(), 0);
        for k in MessageKind::ALL {
            assert_eq!(cost.bytes_of_kind(k), 0);
        }
    }
}
