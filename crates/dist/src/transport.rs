//! Reliable-delivery transport for cross-site payloads.
//!
//! The seed drivers delivered every [`ShipmentMsg`](crate::driver) directly:
//! a message handed to the destination's inbox was guaranteed to arrive. A
//! [`FaultPlan`] with loss probabilities or link partitions breaks that
//! assumption, so this module adds the classic reliable-channel machinery on
//! top of the same inbox exchange:
//!
//! * every cross-site payload travels on a **per-edge sequence-numbered
//!   channel** ([`EdgeSequencer`]);
//! * the receiver **deduplicates** by sequence number ([`ReliableInbox`]) so
//!   retransmitted (or fault-duplicated) copies are ingested at most once;
//! * the receiver **acks** every arriving copy, and the sender
//!   **retransmits** under deterministic epoch-based exponential backoff
//!   until an ack is seen or the retry budget runs out ([`DeliveryPlan`]).
//!
//! Determinism is the whole design: both executors (sequential and
//! parallel), and a crash-replaying site, must observe the *same* losses,
//! retransmissions and arrival epochs. The entire ack/retransmit exchange is
//! therefore computed sender-side at departure time as a pure function of the
//! message key and the [`FaultPlan`]'s order-independent hash draws —
//! [`DeliveryPlan::compute`] — and the sender emits one inbox copy per
//! attempt that actually arrives. The receiver's dedup and ack accounting
//! then runs against real arriving copies, so the at-most-once guarantee is
//! enforced where it matters, not assumed.
//!
//! Three [`TransportMode`]s keep the legacy paths bit-identical:
//!
//! | mode | when | behavior |
//! |---|---|---|
//! | [`Off`] | no plan, or a plan without transport faults | exact seed behavior: direct delivery, duplicated copies imported twice |
//! | [`Optimistic`] | [`TransportConfig::always_on`] on a loss-free plan | sequence numbers + dedup active, acks elided (zero control bytes) |
//! | [`Reliable`] | the plan can lose payloads or partition links | full seq/ack/retransmit/dedup with control-byte accounting |
//!
//! [`Off`]: TransportMode::Off
//! [`Optimistic`]: TransportMode::Optimistic
//! [`Reliable`]: TransportMode::Reliable

use crate::config::TransportConfig;
use rfid_sim::FaultPlan;
use rfid_types::{Epoch, TagId};
use rfid_wire::EdgeSeqs;
use std::collections::{BTreeMap, BTreeSet};

pub use rfid_wire::TransportStats;

/// How much of the reliable-delivery machinery a run engages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Direct delivery, exactly the pre-transport behavior. No sequence
    /// numbers are assigned, no dedup runs, fault-duplicated copies are
    /// imported twice.
    Off,
    /// Sequence numbers and receiver dedup are active but acks are elided —
    /// the loss-free fast path [`TransportConfig::always_on`] forces, used to
    /// pin that a reliable loss-free run is bit-identical to direct delivery
    /// (including per-kind byte tallies: zero control bytes).
    Optimistic,
    /// The full protocol: retransmission under deterministic backoff, acks
    /// charged as [`MessageKind::Control`](crate::MessageKind::Control)
    /// traffic, dedup, degraded-mode abandonment.
    Reliable,
}

impl TransportMode {
    /// Resolve the mode for a run from its fault plan and transport tuning.
    pub fn resolve(plan: Option<&FaultPlan>, config: &TransportConfig) -> TransportMode {
        match plan {
            Some(plan) if plan.has_transport_faults() => TransportMode::Reliable,
            _ if config.always_on => TransportMode::Optimistic,
            _ => TransportMode::Off,
        }
    }

    /// Whether receivers assign/deduplicate sequence numbers in this mode.
    pub fn dedups(self) -> bool {
        self != TransportMode::Off
    }
}

/// Per-destination outbound sequence counters for one site.
///
/// Sequence numbers are per directed edge and are assigned in the site's
/// deterministic departure order, so a crash-restored site can rebuild its
/// counters by counting the transport envelopes in its already-processed
/// departure prefix.
#[derive(Debug, Default, Clone)]
pub struct EdgeSequencer {
    next: BTreeMap<u16, u64>,
}

impl EdgeSequencer {
    /// Fresh counters (every edge starts at sequence 0).
    pub fn new() -> EdgeSequencer {
        EdgeSequencer::default()
    }

    /// Allocate the next sequence number on the edge to `peer`.
    pub fn next(&mut self, peer: u16) -> u64 {
        let counter = self.next.entry(peer).or_insert(0);
        let seq = *counter;
        *counter += 1;
        seq
    }

    /// Drop all counters (crash restore rebuilds them from the departure
    /// prefix).
    pub fn clear(&mut self) {
        self.next.clear();
    }
}

/// Receiver-side dedup state for one inbound edge: a watermark below which
/// every sequence number has been seen, plus the sparse set of seen numbers
/// above it.
///
/// `watermark` counts the contiguous prefix `0..watermark` of seen sequence
/// numbers; out-of-order arrivals park in `extras` until the gap closes, at
/// which point the watermark advances and the extras compact away — bounded
/// memory even under heavy reordering.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ReliableInbox {
    watermark: u64,
    extras: BTreeSet<u64>,
}

impl ReliableInbox {
    /// An inbox that has seen nothing.
    pub fn new() -> ReliableInbox {
        ReliableInbox::default()
    }

    /// Record `seq`; returns `true` the first time a number is seen and
    /// `false` for every duplicate.
    pub fn accept(&mut self, seq: u64) -> bool {
        if seq < self.watermark || !self.extras.insert(seq) {
            return false;
        }
        while self.extras.remove(&self.watermark) {
            self.watermark += 1;
        }
        true
    }

    /// The durable form carried inside a
    /// [`SiteCheckpoint`](rfid_wire::SiteCheckpoint).
    pub fn to_seqs(&self, peer: u16) -> EdgeSeqs {
        EdgeSeqs {
            peer,
            watermark: self.watermark,
            extras: self.extras.iter().copied().collect(),
        }
    }

    /// Rehydrate from a checkpointed [`EdgeSeqs`].
    pub fn from_seqs(seqs: &EdgeSeqs) -> ReliableInbox {
        ReliableInbox {
            watermark: seqs.watermark,
            extras: seqs.extras.iter().copied().collect(),
        }
    }
}

/// The sender-side simulation of one envelope's reliable delivery: which
/// attempts were transmitted, and the epoch at which each surviving copy
/// reaches the destination.
///
/// Computed at departure time as a pure function of the message key, the
/// [`FaultPlan`] and the [`TransportConfig`] — so the sequential executor,
/// every parallel worker and a crash-replaying sender all derive the
/// identical schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryPlan {
    /// Arrival epoch of every copy that survives loss and partitions, in
    /// transmission order (ascending). Empty when the envelope is abandoned.
    pub arrivals: Vec<Epoch>,
    /// Number of copies actually transmitted (1 = no retransmission).
    pub attempts: u32,
    /// No copy ever arrived within the horizon: the destination proceeds in
    /// degraded mode (cold-start ingestion of the physically-arrived object).
    pub abandoned: bool,
}

impl DeliveryPlan {
    /// Simulate the delivery of one envelope on the edge `from → to`.
    ///
    /// `arrive` is the first-attempt arrival epoch (the physical transit,
    /// plus any legacy delay fault, which therefore stretches every
    /// attempt's transit identically). Attempt `k` is transmitted at
    /// `s_k` where `s_0 = depart` and `s_{k+1} = s_k + rtt +
    /// min(rto_base · 2^k, rto_max)`; it is lost iff the plan's loss draw
    /// for `(edge, tag, depart, k)` fires or the edge is partitioned at
    /// `s_k`. A surviving copy arrives `transit` epochs later (never past
    /// the horizon) and is acked immediately; the ack is lost iff the ack
    /// draw fires or the *reverse* edge is partitioned at the arrival
    /// epoch, and otherwise reaches the sender one hop later, stopping all
    /// retransmission from that epoch on. `max_retries` bounds the number
    /// of retransmissions (`None` retries until the horizon).
    // The argument list *is* the message key plus its schedule inputs;
    // bundling them into a struct would only rename the coupling.
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        plan: &FaultPlan,
        config: &TransportConfig,
        from: u16,
        to: u16,
        tag: TagId,
        depart: Epoch,
        arrive: Epoch,
        horizon: Epoch,
    ) -> DeliveryPlan {
        let transit = arrive.0.saturating_sub(depart.0);
        let hop = transit.max(1);
        let rtt = hop.saturating_mul(2);
        let mut arrivals = Vec::new();
        let mut attempts = 0u32;
        let mut send = depart.0;
        // Earliest epoch at which an ack is back at the sender.
        let mut acked_at: Option<u32> = None;
        let mut k = 0u32;
        loop {
            if send > horizon.0 || acked_at.is_some_and(|ack| ack <= send) {
                break;
            }
            attempts += 1;
            let lost = plan.message_lost(from, to, tag, depart, k)
                || plan.link_partitioned(from, to, Epoch(send));
            if !lost {
                let arrival = send.saturating_add(transit);
                if arrival <= horizon.0 {
                    arrivals.push(Epoch(arrival));
                    let ack_lost = plan.ack_lost(from, to, tag, depart, k)
                        || plan.link_partitioned(to, from, Epoch(arrival));
                    if !ack_lost {
                        let back = arrival.saturating_add(hop);
                        acked_at = Some(acked_at.map_or(back, |prev| prev.min(back)));
                    }
                }
            }
            if config.max_retries.is_some_and(|max| k >= max) {
                break;
            }
            let backoff = config
                .rto_base_secs
                .checked_shl(k)
                .map_or(config.rto_max_secs, |b| b.min(config.rto_max_secs));
            send = send.saturating_add(rtt.saturating_add(backoff).max(1));
            k += 1;
        }
        DeliveryPlan {
            abandoned: arrivals.is_empty(),
            arrivals,
            attempts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::FaultPlanConfig;

    fn unreliable_plan(seed: u64) -> FaultPlan {
        FaultPlan::generate(&FaultPlanConfig::unreliable(seed, 4, 3600))
    }

    #[test]
    fn mode_resolution_matches_the_plan() {
        let config = TransportConfig::default();
        assert_eq!(TransportMode::resolve(None, &config), TransportMode::Off);
        let quiet = FaultPlan::generate(&FaultPlanConfig::quiet(7, 4, 3600));
        assert_eq!(
            TransportMode::resolve(Some(&quiet), &config),
            TransportMode::Off,
            "a plan without transport faults keeps the legacy direct path"
        );
        let lossy = FaultPlan::generate(&FaultPlanConfig::lossy(7, 4, 3600));
        assert_eq!(
            TransportMode::resolve(Some(&lossy), &config),
            TransportMode::Off,
            "delay/dup-only plans predate the transport and stay direct"
        );
        let always = TransportConfig {
            always_on: true,
            ..TransportConfig::default()
        };
        assert_eq!(
            TransportMode::resolve(None, &always),
            TransportMode::Optimistic
        );
        assert_eq!(
            TransportMode::resolve(Some(&quiet), &always),
            TransportMode::Optimistic
        );
        let unreliable = unreliable_plan(7);
        for cfg in [&config, &always] {
            assert_eq!(
                TransportMode::resolve(Some(&unreliable), cfg),
                TransportMode::Reliable
            );
        }
        assert!(TransportMode::Reliable.dedups());
        assert!(TransportMode::Optimistic.dedups());
        assert!(!TransportMode::Off.dedups());
    }

    #[test]
    fn sequencers_count_per_edge() {
        let mut seqs = EdgeSequencer::new();
        assert_eq!(seqs.next(1), 0);
        assert_eq!(seqs.next(1), 1);
        assert_eq!(seqs.next(2), 0, "edges are independent channels");
        assert_eq!(seqs.next(1), 2);
        seqs.clear();
        assert_eq!(seqs.next(1), 0);
    }

    #[test]
    fn inbox_accepts_each_sequence_number_exactly_once() {
        let mut inbox = ReliableInbox::new();
        assert!(inbox.accept(0));
        assert!(!inbox.accept(0), "duplicate of the first copy");
        assert!(inbox.accept(2), "out of order is fine");
        assert!(inbox.accept(1));
        assert!(!inbox.accept(2));
        assert!(!inbox.accept(1));
        assert!(inbox.accept(3));
        // 0..=3 all seen: everything compacted into the watermark.
        assert_eq!(inbox.to_seqs(9).watermark, 4);
        assert!(inbox.to_seqs(9).extras.is_empty());
    }

    #[test]
    fn inbox_round_trips_through_checkpoint_form() {
        let mut inbox = ReliableInbox::new();
        for seq in [0u64, 1, 5, 7] {
            assert!(inbox.accept(seq));
        }
        let seqs = inbox.to_seqs(3);
        assert_eq!(seqs.peer, 3);
        assert_eq!(seqs.watermark, 2);
        assert_eq!(seqs.extras, vec![5, 7]);
        let mut back = ReliableInbox::from_seqs(&seqs);
        assert_eq!(back, inbox);
        // The rehydrated inbox keeps rejecting what the original saw.
        for seq in [0u64, 1, 5, 7] {
            assert!(!back.accept(seq));
        }
        assert!(back.accept(6));
    }

    #[test]
    fn loss_free_plans_deliver_on_the_first_attempt() {
        let quiet = FaultPlan::generate(&FaultPlanConfig::quiet(11, 4, 3600));
        let plan = DeliveryPlan::compute(
            &quiet,
            &TransportConfig::default(),
            0,
            1,
            TagId::item(4),
            Epoch(100),
            Epoch(160),
            Epoch(3600),
        );
        assert_eq!(plan.arrivals, vec![Epoch(160)]);
        assert_eq!(plan.attempts, 1);
        assert!(!plan.abandoned);
    }

    #[test]
    fn a_partition_outliving_the_horizon_abandons_the_envelope() {
        let dark = FaultPlan::scripted_partition(4, 0, 1, Epoch(0), Epoch(3600));
        let plan = DeliveryPlan::compute(
            &dark,
            &TransportConfig::default(),
            0,
            1,
            TagId::item(4),
            Epoch(100),
            Epoch(160),
            Epoch(3600),
        );
        assert!(plan.abandoned);
        assert!(plan.arrivals.is_empty());
        assert!(
            plan.attempts >= 2,
            "the sender kept trying into the dark window"
        );
    }

    #[test]
    fn unlimited_retries_ride_out_a_bounded_partition() {
        // Link dark for the first 600 epochs only; a persistent transport
        // must get a copy through after it heals.
        let dark = FaultPlan::scripted_partition(4, 0, 1, Epoch(0), Epoch(600));
        let plan = DeliveryPlan::compute(
            &dark,
            &TransportConfig::persistent(),
            0,
            1,
            TagId::item(4),
            Epoch(100),
            Epoch(160),
            Epoch(3600),
        );
        assert!(!plan.abandoned);
        assert!(plan.attempts > 1);
        assert!(
            plan.arrivals.iter().all(|&a| a > Epoch(600)),
            "nothing crosses while the link is dark"
        );
    }

    #[test]
    fn the_retry_budget_is_a_hard_cap() {
        let dark = FaultPlan::scripted_partition(4, 0, 1, Epoch(0), Epoch(3600));
        for budget in [0u32, 1, 3] {
            let plan = DeliveryPlan::compute(
                &dark,
                &TransportConfig {
                    max_retries: Some(budget),
                    ..TransportConfig::default()
                },
                0,
                1,
                TagId::item(4),
                Epoch(0),
                Epoch(60),
                Epoch(3600),
            );
            assert_eq!(plan.attempts, budget + 1);
            assert!(plan.abandoned);
        }
    }

    #[test]
    fn delivery_plans_are_pure_functions_of_the_key() {
        let config = TransportConfig::default();
        for seed in [3u64, 97] {
            let a = unreliable_plan(seed);
            let b = unreliable_plan(seed);
            for tag in [TagId::item(1), TagId::case(9)] {
                for depart in [0u32, 500, 1200] {
                    let args = (0u16, 2u16, tag, Epoch(depart), Epoch(depart + 90));
                    let first = DeliveryPlan::compute(
                        &a,
                        &config,
                        args.0,
                        args.1,
                        args.2,
                        args.3,
                        args.4,
                        Epoch(3600),
                    );
                    let second = DeliveryPlan::compute(
                        &b,
                        &config,
                        args.0,
                        args.1,
                        args.2,
                        args.3,
                        args.4,
                        Epoch(3600),
                    );
                    assert_eq!(first, second);
                }
            }
        }
    }

    #[test]
    fn lost_acks_produce_duplicate_arrivals_for_dedup_to_drop() {
        // Scan an unreliable plan for an envelope where a copy arrived, its
        // ack was lost, and the retransmission also arrived — the situation
        // the receiver-side dedup exists for.
        let plan = unreliable_plan(97);
        let config = TransportConfig::persistent();
        let found = (0u64..400).any(|serial| {
            let d = DeliveryPlan::compute(
                &plan,
                &config,
                0,
                1,
                TagId::item(serial),
                Epoch(50),
                Epoch(110),
                Epoch(3600),
            );
            d.arrivals.len() > 1
        });
        assert!(
            found,
            "an unreliable plan must produce at least one duplicate arrival"
        );
    }
}
