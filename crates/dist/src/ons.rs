//! A minimal object name service (ONS).
//!
//! The paper's distributed architecture (Section 4) assumes an EPCglobal-style
//! name service that records which site currently holds which tag, so that
//! queries about an object can be routed to the site that owns its state.
//! Here the ONS is a custody map updated whenever an object is dispatched to
//! another site; the destination site owns the object's inference and query
//! state from the moment of dispatch (state travels with the shipment).

use rfid_types::{SiteId, TagId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Wire size of one custody update: the tag id (8) plus the site id (2).
pub const ONS_UPDATE_BYTES: usize = 10;

/// Custody registry mapping each tag to the site that owns its state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ons {
    custody: BTreeMap<TagId, SiteId>,
}

impl Ons {
    /// An empty registry.
    pub fn new() -> Ons {
        Ons::default()
    }

    /// Record that `site` now owns `tag`.
    pub fn register(&mut self, tag: TagId, site: SiteId) {
        self.custody.insert(tag, site);
    }

    /// The site owning `tag`, if the tag has ever been registered.
    pub fn lookup(&self, tag: TagId) -> Option<SiteId> {
        self.custody.get(&tag).copied()
    }

    /// The site owning `tag`, defaulting to the supply chain's source site
    /// for tags that never migrated.
    pub fn site_of(&self, tag: TagId, source: SiteId) -> SiteId {
        self.lookup(tag).unwrap_or(source)
    }

    /// Number of registered tags.
    pub fn len(&self) -> usize {
        self.custody.len()
    }

    /// Whether no tag is registered.
    pub fn is_empty(&self) -> bool {
        self.custody.is_empty()
    }

    /// Iterate over all `(tag, site)` custody entries.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, SiteId)> + '_ {
        self.custody.iter().map(|(t, s)| (*t, *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custody_updates_override_and_default_to_source() {
        let mut ons = Ons::new();
        assert!(ons.is_empty());
        let item = TagId::item(4);
        assert_eq!(ons.lookup(item), None);
        assert_eq!(ons.site_of(item, SiteId(0)), SiteId(0));
        ons.register(item, SiteId(1));
        ons.register(item, SiteId(2));
        assert_eq!(ons.lookup(item), Some(SiteId(2)));
        assert_eq!(ons.site_of(item, SiteId(0)), SiteId(2));
        assert_eq!(ons.len(), 1);
        assert_eq!(ons.iter().count(), 1);
    }
}
