//! The distributed driver: replays a multi-site [`ChainTrace`] against
//! per-site inference engines and query processors, migrating per-object
//! state between sites according to the configured
//! [`MigrationStrategy`](crate::MigrationStrategy) and accounting every
//! byte that crosses a site boundary (Sections 4, 5.3 and 5.4).
//!
//! Two execution modes cover the paper's spectrum:
//!
//! * **federated** (`None` / `CriticalRegionReadings` / `CollapsedWeights`) —
//!   every site runs its own [`InferenceEngine`] and [`QueryProcessor`];
//!   when a pallet is dispatched, the departing objects' inference state
//!   (nothing, the critical-region readings, or one collapsed weight per
//!   candidate container) and their query state (centroid-compressed) travel
//!   with the shipment, and the ONS custody map is updated;
//! * **centralized** — every raw reading of every site is shipped to one
//!   central engine whose location space is the disjoint union of the
//!   per-site location spaces: the accuracy upper bound and the
//!   communication worst case.

use crate::comm::{CommCost, MessageKind};
use crate::config::{DistributedConfig, MigrationStrategy};
use crate::ons::{Ons, ONS_UPDATE_BYTES};
use rfid_core::{InferenceEngine, MigrationState};
use rfid_query::sharing::unshared_bytes;
use rfid_query::{share_states, Alert, ObjectQueryState, QueryProcessor};
use rfid_sim::ChainTrace;
use rfid_types::{
    ContainmentMap, Epoch, LocationId, ObjectEvent, RawReading, ReadRateTable, ReaderId,
    SensorReading, SiteId, TagId,
};
use std::collections::BTreeMap;

/// Minimum seconds between two departure-forced inference runs at one site;
/// a dispatch within this window reuses the (slightly stale) last outcome.
const FORCED_RUN_SPACING_SECS: u32 = 150;

/// Everything a distributed run produces: the merged containment estimate,
/// alerts, custody registry and the communication bill.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// Final containment estimate, each object reported by the site that
    /// owns it according to the ONS.
    pub containment: ContainmentMap,
    /// Bytes and message counts per [`MessageKind`].
    pub comm: CommCost,
    /// All alerts raised by the (per-site or central) query processors, in
    /// firing order.
    pub alerts: Vec<Alert>,
    /// Total migrated query-state bytes with centroid-based sharing — what
    /// the system actually transferred.
    pub query_state_shared_bytes: usize,
    /// What the same migrations would have cost without sharing (the
    /// Section 5.4 baseline).
    pub query_state_unshared_bytes: usize,
    /// The object-name-service custody registry after the run.
    pub ons: Ons,
    /// Number of inference runs executed across all engines.
    pub inference_runs: usize,
}

impl DistributedOutcome {
    /// The inferred container of an object (from the site owning it).
    pub fn container_of(&self, object: TagId) -> Option<TagId> {
        self.containment.container_of(object)
    }
}

/// State migrating with one shipment, waiting for its arrival epoch.
struct Shipment {
    to: SiteId,
    inference: MigrationState,
    query: Vec<ObjectQueryState>,
}

/// Drives a [`ChainTrace`] through the distributed pipeline.
#[derive(Debug, Clone)]
pub struct DistributedDriver {
    config: DistributedConfig,
}

impl DistributedDriver {
    /// Create a driver with the given configuration.
    pub fn new(config: DistributedConfig) -> DistributedDriver {
        DistributedDriver { config }
    }

    /// The driver's configuration.
    pub fn config(&self) -> &DistributedConfig {
        &self.config
    }

    /// Replay the chain and return the outcome.
    pub fn run(&self, chain: &ChainTrace) -> DistributedOutcome {
        match self.config.strategy {
            MigrationStrategy::Centralized => self.run_centralized(chain),
            _ => self.run_federated(chain),
        }
    }

    fn make_processor(&self) -> QueryProcessor {
        let mut processor = QueryProcessor::new();
        for query in &self.config.queries {
            processor.register(query.clone());
        }
        processor
    }

    /// Annotate an inferred event with the product property used by `IsA`
    /// predicates and feed it to a processor.
    fn feed_event(&self, processor: &mut QueryProcessor, mut event: ObjectEvent) {
        if let Some(property) = self.config.product_properties.get(&event.tag) {
            event.property = Some(property.clone());
        }
        processor.on_event(&event);
    }

    fn run_federated(&self, chain: &ChainTrace) -> DistributedOutcome {
        let num_sites = chain.sites.len();
        let horizon = chain.sites.first().map(|s| s.meta.length).unwrap_or(0);
        let strategy = self.config.strategy;
        let migrates_state = strategy != MigrationStrategy::None;
        let with_queries = !self.config.queries.is_empty();
        let stride = self.config.event_stride_secs.max(1);

        let mut engines: Vec<InferenceEngine> = chain
            .sites
            .iter()
            .map(|site| {
                InferenceEngine::new(self.config.inference.clone(), site.read_rates.clone())
            })
            .collect();
        let mut processors: Vec<QueryProcessor> =
            (0..num_sites).map(|_| self.make_processor()).collect();

        // Per-site time-ordered replay cursors.
        let site_readings: Vec<Vec<RawReading>> = chain
            .sites
            .iter()
            .map(|site| {
                let mut batch = site.readings.clone();
                batch.readings().to_vec()
            })
            .collect();
        let mut reading_cursor = vec![0usize; num_sites];
        let site_sensors: Vec<Vec<SensorReading>> = match &self.config.temperature {
            Some(model) if with_queries => chain
                .sites
                .iter()
                .map(|site| model.generate(site.meta.num_locations, Epoch(horizon)))
                .collect(),
            _ => vec![Vec::new(); num_sites],
        };
        let mut sensor_cursor = vec![0usize; num_sites];

        let mut transfer_cursor = 0usize;
        let mut in_transit: BTreeMap<Epoch, Vec<Shipment>> = BTreeMap::new();
        let mut last_run: Vec<Option<Epoch>> = vec![None; num_sites];

        let mut comm = CommCost::new();
        let mut ons = Ons::new();
        let mut shared_bytes = 0usize;
        let mut unshared = 0usize;
        let mut inference_runs = 0usize;

        for t in 0..=horizon {
            let now = Epoch(t);

            // 1. Local streams: sensor readings, then raw RFID readings.
            for s in 0..num_sites {
                let sensors = &site_sensors[s];
                while sensor_cursor[s] < sensors.len() && sensors[sensor_cursor[s]].time <= now {
                    processors[s].on_sensor(sensors[sensor_cursor[s]]);
                    sensor_cursor[s] += 1;
                }
                let readings = &site_readings[s];
                while reading_cursor[s] < readings.len() && readings[reading_cursor[s]].time <= now
                {
                    engines[s].observe(readings[reading_cursor[s]]);
                    reading_cursor[s] += 1;
                }
            }

            // 2. Shipments arriving now: import migrated state.
            if let Some(batch) = in_transit.remove(&now) {
                for shipment in batch {
                    let dest = shipment.to.0 as usize;
                    engines[dest].import_state(shipment.inference);
                    if !shipment.query.is_empty() {
                        processors[dest].import_state(shipment.query);
                    }
                }
            }

            // 3. Dispatches departing now: snapshot, export, forget.
            let mut departing = Vec::new();
            while transfer_cursor < chain.transfers.len()
                && chain.transfers[transfer_cursor].depart == now
            {
                departing.push(chain.transfers[transfer_cursor]);
                transfer_cursor += 1;
            }
            if !departing.is_empty() {
                // Refresh the departure sites' outcomes so exported state
                // reflects the readings collected since the last run.
                if migrates_state {
                    let mut sites: Vec<u16> = departing.iter().map(|tr| tr.from_site.0).collect();
                    sites.sort_unstable();
                    sites.dedup();
                    for s in sites {
                        let due = match last_run[s as usize] {
                            None => true,
                            Some(last) => now.since(last) >= FORCED_RUN_SPACING_SECS,
                        };
                        if due {
                            engines[s as usize].run_inference(now);
                            last_run[s as usize] = Some(now);
                            inference_runs += 1;
                        }
                    }
                }
                // Group the dispatch by route so query state is shared per
                // shipment (the objects of one container travel together).
                let mut by_route: BTreeMap<(SiteId, SiteId), Vec<TagId>> = BTreeMap::new();
                for tr in &departing {
                    ons.register(tr.tag, tr.to_site);
                    if migrates_state {
                        comm.record(MessageKind::OnsUpdate, ONS_UPDATE_BYTES);
                    }
                    by_route
                        .entry((tr.from_site, tr.to_site))
                        .or_default()
                        .push(tr.tag);
                }
                for ((from, to), tags) in by_route {
                    let src = from.0 as usize;
                    let arrive = departing
                        .iter()
                        .find(|tr| tr.from_site == from && tr.to_site == to)
                        .map(|tr| tr.arrive)
                        .unwrap_or(now);
                    // Inference state: objects carry state, containers are
                    // re-localized from their own readings at the next site.
                    let mut shipment_states: Vec<ObjectQueryState> = Vec::new();
                    for &tag in &tags {
                        let state = if !tag.is_object() {
                            MigrationState::None
                        } else {
                            match strategy {
                                MigrationStrategy::None => MigrationState::None,
                                MigrationStrategy::CollapsedWeights => {
                                    MigrationState::Collapsed(engines[src].export_collapsed(tag))
                                }
                                MigrationStrategy::CriticalRegionReadings => {
                                    MigrationState::Readings(engines[src].export_readings(tag))
                                }
                                MigrationStrategy::Centralized => unreachable!(),
                            }
                        };
                        let bytes = state.wire_bytes();
                        if bytes > 0 {
                            comm.record(MessageKind::InferenceState, bytes);
                        }
                        // Query state travels per object so the automaton
                        // run continues seamlessly at the next site. Under
                        // `None` nothing at all crosses the boundary, so the
                        // automaton restarts cold — that is the baseline.
                        let query = if with_queries && migrates_state && tag.is_object() {
                            processors[src].export_state(tag)
                        } else {
                            Vec::new()
                        };
                        shipment_states.extend(query.iter().cloned());
                        in_transit.entry(arrive).or_default().push(Shipment {
                            to,
                            inference: state,
                            query,
                        });
                    }
                    // Centroid-based sharing: compress the query states of
                    // this shipment's objects (Section 4.2) and charge the
                    // compressed size.
                    if let Some(bundle) = share_states(&shipment_states) {
                        let shared = bundle.wire_bytes();
                        shared_bytes += shared;
                        unshared += unshared_bytes(&shipment_states);
                        comm.record(MessageKind::QueryState, shared);
                    }
                    // The state has left the building.
                    for &tag in &tags {
                        engines[src].forget(tag);
                        processors[src].forget(tag);
                    }
                }
                // Zero-transit shipments (arrive == depart) were keyed on an
                // epoch whose arrival pass already ran; deliver them now.
                if let Some(batch) = in_transit.remove(&now) {
                    for shipment in batch {
                        let dest = shipment.to.0 as usize;
                        engines[dest].import_state(shipment.inference);
                        if !shipment.query.is_empty() {
                            processors[dest].import_state(shipment.query);
                        }
                    }
                }
            }

            // 4. Periodic inference and event-stream push.
            for s in 0..num_sites {
                if engines[s].step(now).is_some() {
                    last_run[s] = Some(now);
                    inference_runs += 1;
                }
            }
            if with_queries && t % stride == 0 {
                for s in 0..num_sites {
                    for event in engines[s].events_at(now) {
                        // only the custody site feeds events for an object,
                        // so a departed object's stale estimates do not keep
                        // an abandoned automaton alive
                        if ons.site_of(event.tag, SiteId(0)).0 as usize != s {
                            continue;
                        }
                        self.feed_event(&mut processors[s], event);
                    }
                }
            }
        }

        // Final refresh so the reported containment reflects every reading
        // (skipped where the periodic step already ran at the horizon).
        for (s, engine) in engines.iter_mut().enumerate() {
            if last_run[s] != Some(Epoch(horizon)) {
                engine.run_inference(Epoch(horizon));
                inference_runs += 1;
            }
        }

        let mut containment = ContainmentMap::new();
        for object in chain.objects() {
            let site = ons.site_of(object, SiteId(0)).0 as usize;
            if let Some(container) = engines.get(site).and_then(|e| e.container_of(object)) {
                containment.set(object, container);
            }
        }

        let mut alerts: Vec<Alert> = processors
            .iter()
            .flat_map(|p| p.alerts().iter().cloned())
            .collect();
        alerts.sort_by(|a, b| (a.at, &a.query, a.tag).cmp(&(b.at, &b.query, b.tag)));

        DistributedOutcome {
            containment,
            comm,
            alerts,
            query_state_shared_bytes: shared_bytes,
            query_state_unshared_bytes: unshared,
            ons,
            inference_runs,
        }
    }

    /// The Centralized baseline: one engine over the disjoint union of the
    /// per-site location spaces, with every raw reading shipped to it.
    fn run_centralized(&self, chain: &ChainTrace) -> DistributedOutcome {
        let num_sites = chain.sites.len();
        let horizon = chain.sites.first().map(|s| s.meta.length).unwrap_or(0);
        let with_queries = !self.config.queries.is_empty();
        let stride = self.config.event_stride_secs.max(1);
        let site_locs = chain
            .sites
            .first()
            .map(|s| s.meta.num_locations)
            .unwrap_or(0);
        let total_locs = num_sites * site_locs;
        assert!(
            total_locs <= u16::MAX as usize,
            "global location space exceeds u16"
        );

        // Block-diagonal global read-rate table: within a site the measured
        // per-site table applies; across sites only stray background reads.
        let background = (0..site_locs)
            .flat_map(|r| {
                let table = &chain.sites[0].read_rates;
                (0..site_locs).map(move |a| table.rate(LocationId(r as u16), LocationId(a as u16)))
            })
            .fold(f64::INFINITY, f64::min)
            .min(1e-4);
        let mut global = ReadRateTable::uniform(total_locs, background);
        for (s, site) in chain.sites.iter().enumerate() {
            let offset = (s * site_locs) as u16;
            for r in 0..site_locs as u16 {
                for a in 0..site_locs as u16 {
                    global.set(
                        LocationId(offset + r),
                        LocationId(offset + a),
                        site.read_rates.rate(LocationId(r), LocationId(a)),
                    );
                }
            }
        }

        let mut engine = InferenceEngine::new(self.config.inference.clone(), global);
        let mut processor = self.make_processor();
        let mut comm = CommCost::new();
        let mut inference_runs = 0usize;

        // Every reading of every site crosses the network, remapped into the
        // global location space.
        let mut readings: Vec<RawReading> = Vec::new();
        for (s, site) in chain.sites.iter().enumerate() {
            let offset = (s * site_locs) as u16;
            for r in site.readings.readings_unordered() {
                readings.push(RawReading::new(
                    r.time,
                    r.tag,
                    ReaderId(offset + r.reader.0),
                ));
            }
        }
        readings.sort_unstable();
        readings.dedup();

        let mut sensors: Vec<SensorReading> = Vec::new();
        if with_queries {
            if let Some(model) = &self.config.temperature {
                for s in 0..num_sites {
                    let offset = (s * site_locs) as u16;
                    for reading in model.generate(site_locs, Epoch(horizon)) {
                        sensors.push(SensorReading::new(
                            reading.time,
                            LocationId(offset + reading.location.0),
                            reading.value,
                        ));
                    }
                }
                sensors.sort_by_key(|r| (r.time, r.location));
            }
        }

        let mut reading_cursor = 0usize;
        let mut sensor_cursor = 0usize;
        let mut ran_at_horizon = false;
        for t in 0..=horizon {
            let now = Epoch(t);
            while sensor_cursor < sensors.len() && sensors[sensor_cursor].time <= now {
                processor.on_sensor(sensors[sensor_cursor]);
                sensor_cursor += 1;
            }
            while reading_cursor < readings.len() && readings[reading_cursor].time <= now {
                comm.record(MessageKind::RawReadings, RawReading::WIRE_BYTES);
                engine.observe(readings[reading_cursor]);
                reading_cursor += 1;
            }
            if engine.step(now).is_some() {
                inference_runs += 1;
                ran_at_horizon = t == horizon;
            }
            if with_queries && t % stride == 0 {
                for event in engine.events_at(now) {
                    self.feed_event(&mut processor, event);
                }
            }
        }
        if !ran_at_horizon {
            engine.run_inference(Epoch(horizon));
            inference_runs += 1;
        }

        // Custody bookkeeping (no messages: the server knows everything).
        let mut ons = Ons::new();
        for tr in &chain.transfers {
            ons.register(tr.tag, tr.to_site);
        }

        let mut containment = ContainmentMap::new();
        for object in chain.objects() {
            if let Some(container) = engine.container_of(object) {
                containment.set(object, container);
            }
        }

        DistributedOutcome {
            containment,
            comm,
            alerts: processor.alerts().to_vec(),
            query_state_shared_bytes: 0,
            query_state_unshared_bytes: 0,
            ons,
            inference_runs,
        }
    }
}
