//! The distributed driver: replays a multi-site [`ChainTrace`] against
//! per-site inference engines and query processors, migrating per-object
//! state between sites according to the configured
//! [`MigrationStrategy`] and accounting every
//! byte that crosses a site boundary (Sections 4, 5.3 and 5.4).
//!
//! Two execution modes cover the paper's spectrum:
//!
//! * **federated** (`None` / `CriticalRegionReadings` / `CollapsedWeights`) —
//!   every site runs its own [`InferenceEngine`] and [`QueryProcessor`];
//!   when a pallet is dispatched, the departing objects' inference state
//!   (nothing, the critical-region readings, or one collapsed weight per
//!   candidate container) and their query state (centroid-compressed) travel
//!   with the shipment, and the ONS custody map is updated;
//! * **centralized** — every raw reading of every site is shipped to one
//!   central engine whose location space is the disjoint union of the
//!   per-site location spaces: the accuracy upper bound and the
//!   communication worst case.
//!
//! The federated mode is built from per-site `SiteState` machines whose
//! only cross-site interaction is the `ShipmentMsg` exchange (both private
//! to this crate). The sequential replay drives every machine on one thread;
//! the `parallel` module shards the same machines across worker threads with
//! bit-identical results (set [`DistributedConfig::num_workers`]).

use crate::comm::{CommCost, MessageKind};
use crate::config::{DistributedConfig, MigrationStrategy};
use crate::ons::{Ons, ONS_UPDATE_BYTES};
use crate::transport::{DeliveryPlan, EdgeSequencer, ReliableInbox, TransportMode, TransportStats};
use rfid_core::{InferenceEngine, InferenceReport, InferenceStats, MemoryStats, MigrationState};
use rfid_query::sharing::unshared_bytes_with;
use rfid_query::{share_states_with, Alert, ObjectQueryState, QueryProcessor};
use rfid_sim::{ChainTrace, CrashFault, FaultPlan, ObjectTransfer};
use rfid_types::{
    ContainmentMap, Epoch, LocationId, ObjectEvent, RawReading, ReadRateTable, ReaderId,
    SensorReading, SiteId, TagId,
};
use rfid_wire::{
    ControlMsg, EdgeLedger, PendingShipment, QuarantineEntry, SiteCheckpoint, WireCodec,
};
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Minimum seconds between two departure-forced inference runs at one site;
/// a dispatch within this window reuses the (slightly stale) last outcome.
const FORCED_RUN_SPACING_SECS: u32 = 150;

/// Everything a distributed run produces: the merged containment estimate,
/// alerts, custody registry and the communication bill.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// Final containment estimate, each object reported by the site that
    /// owns it according to the ONS.
    pub containment: ContainmentMap,
    /// Bytes and message counts per [`MessageKind`].
    pub comm: CommCost,
    /// All alerts raised by the (per-site or central) query processors, in
    /// firing order.
    pub alerts: Vec<Alert>,
    /// Total migrated query-state bytes with centroid-based sharing — what
    /// the system actually transferred.
    pub query_state_shared_bytes: usize,
    /// What the same migrations would have cost without sharing (the
    /// Section 5.4 baseline).
    pub query_state_unshared_bytes: usize,
    /// The object-name-service custody registry after the run.
    pub ons: Ons,
    /// Number of inference runs executed across all engines.
    pub inference_runs: usize,
    /// Wall-clock time spent inside inference runs, summed across all
    /// engines — the quantity incremental inference attacks.
    pub inference_wall: Duration,
    /// Dirty-set sizes and cache-reuse counters, summed across all runs of
    /// all engines.
    pub inference_stats: InferenceStats,
    /// Reliable-transport counters (envelopes, retransmissions, dedup drops,
    /// degraded-mode abandonments, …) summed across sites. All zero when the
    /// transport is [`TransportMode::Off`].
    pub transport: TransportStats,
    /// Every poisoned envelope quarantined during the run, tagged with the
    /// site that quarantined it, in `(site, from, seq)` order. Empty unless
    /// the fault plan corrupts payloads.
    pub quarantine: Vec<(SiteId, QuarantineEntry)>,
    /// Memory-budget counters (high-water observation count, compactions,
    /// cache evictions) merged across sites. All zero/default unless
    /// [`DistributedConfig::memory_budget`] is set (`high_water` is tracked
    /// whenever a budget is configured, even an unbounded one).
    pub memory: MemoryStats,
    /// Per-directed-edge conservation ledgers, sender and receiver halves
    /// merged, sorted by `(from, to)`. Empty when the transport is
    /// [`TransportMode::Off`] (and for the centralized strategy, whose
    /// uplink has no per-edge bookkeeping). The invariant oracles in
    /// [`crate::oracle`] audit these.
    pub ledgers: Vec<EdgeLedger>,
}

impl DistributedOutcome {
    /// The inferred container of an object (from the site owning it).
    pub fn container_of(&self, object: TagId) -> Option<TagId> {
        self.containment.container_of(object)
    }
}

/// One object's migrating state, en route between two sites.
///
/// This is the message the per-site workers exchange: the sequential driver
/// routes it through in-process inboxes, the parallel driver through
/// `std::sync::mpsc` channels. [`Self::order_key`] reproduces the order in
/// which a strictly sequential replay would have generated the message, so a
/// receiving site imports a batch identically no matter which worker thread
/// delivered which part of it first.
#[derive(Clone)]
pub(crate) struct ShipmentMsg {
    /// Epoch the shipment left its origin.
    pub(crate) depart: Epoch,
    /// Origin site.
    pub(crate) from: SiteId,
    /// Destination site.
    pub(crate) to: SiteId,
    /// The migrating tag.
    pub(crate) tag: TagId,
    /// Epoch the shipment reaches `to` and its state is imported.
    pub(crate) arrive: Epoch,
    /// Reliable-transport sequence number on the `from → to` edge; every
    /// retransmitted copy of one envelope carries the same number, which is
    /// how the receiver deduplicates. Always 0 when the transport is off or
    /// the envelope carries nothing.
    pub(crate) seq: u64,
    /// Epoch the *object* physically reaches `to` per the trace — unlike
    /// [`arrive`](Self::arrive), never stretched by delivery faults or
    /// retransmission. A copy with `arrive > physical` is late state merged
    /// into an engine that already cold-started the object, and state older
    /// than the tag's last local departure is stale.
    pub(crate) physical: Epoch,
    /// Migrating inference state (see [`MigrationStrategy`]), already encoded
    /// in the run's [`WireCodec`] — exactly the bytes charged to
    /// [`MessageKind::InferenceState`]. `None` when nothing migrates (the
    /// `None` strategy, or a container tag re-localized from its own
    /// readings), which costs no message at all.
    inference: Option<Vec<u8>>,
    /// Migrating per-object query state.
    query: Vec<ObjectQueryState>,
}

impl ShipmentMsg {
    /// Sequential generation order: epochs ascending, then origin site, then
    /// route, then tag — the exact order the one-thread replay emits.
    fn order_key(&self) -> (Epoch, SiteId, SiteId, TagId) {
        (self.depart, self.from, self.to, self.tag)
    }

    /// Whether this message carries anything the transport must deliver
    /// reliably; empty envelopes (the `None` strategy, container tags) skip
    /// the sequence/ack machinery entirely.
    fn is_envelope(&self) -> bool {
        self.inference.is_some() || !self.query.is_empty()
    }

    /// The durable form this message takes inside a [`SiteCheckpoint`].
    fn to_pending(&self) -> PendingShipment {
        PendingShipment {
            depart: self.depart,
            from: self.from.0,
            to: self.to.0,
            tag: self.tag,
            arrive: self.arrive,
            seq: self.seq,
            physical: self.physical,
            inference: self.inference.clone(),
            query: self.query.clone(),
        }
    }

    /// Rehydrate a checkpointed shipment.
    fn from_pending(pending: PendingShipment) -> ShipmentMsg {
        ShipmentMsg {
            depart: pending.depart,
            from: SiteId(pending.from),
            to: SiteId(pending.to),
            tag: pending.tag,
            arrive: pending.arrive,
            seq: pending.seq,
            physical: pending.physical,
            inference: pending.inference,
            query: pending.query,
        }
    }
}

/// Immutable context shared by every site worker of one federated run.
pub(crate) struct FederatedCtx<'a> {
    driver: &'a DistributedDriver,
    /// Last epoch of the replay.
    pub(crate) horizon: u32,
    strategy: MigrationStrategy,
    migrates_state: bool,
    with_queries: bool,
    stride: u32,
    /// Encoder/decoder for every cross-site payload.
    codec: WireCodec,
    /// How much of the reliable-delivery machinery this run engages.
    transport_mode: TransportMode,
}

impl<'a> FederatedCtx<'a> {
    pub(crate) fn new(driver: &'a DistributedDriver, chain: &ChainTrace) -> FederatedCtx<'a> {
        let strategy = driver.config.strategy;
        FederatedCtx {
            driver,
            horizon: chain.sites.first().map(|s| s.meta.length).unwrap_or(0),
            strategy,
            migrates_state: strategy != MigrationStrategy::None,
            with_queries: !driver.config.queries.is_empty(),
            stride: driver.config.event_stride_secs.max(1),
            codec: WireCodec::new(driver.config.wire_format),
            transport_mode: TransportMode::resolve(
                driver.config.faults.as_ref(),
                &driver.config.transport,
            ),
        }
    }
}

/// Replica of the object name service driven from the static transfer
/// schedule.
///
/// Custody registrations depend only on the transfer list — never on
/// inference results — so every worker advances its own replica locally
/// instead of synchronising on a shared registry: by construction all
/// replicas agree at every epoch boundary.
pub(crate) struct OnsTracker {
    ons: Ons,
    cursor: usize,
}

impl OnsTracker {
    pub(crate) fn new() -> OnsTracker {
        OnsTracker {
            ons: Ons::new(),
            cursor: 0,
        }
    }

    /// Register every transfer departing at or before `now`.
    pub(crate) fn advance(&mut self, transfers: &[ObjectTransfer], now: Epoch) {
        while self.cursor < transfers.len() && transfers[self.cursor].depart <= now {
            self.ons
                .register(transfers[self.cursor].tag, transfers[self.cursor].to_site);
            self.cursor += 1;
        }
    }

    pub(crate) fn get(&self) -> &Ons {
        &self.ons
    }

    pub(crate) fn into_ons(self) -> Ons {
        self.ons
    }
}

/// What one site contributes to the merged [`DistributedOutcome`].
pub(crate) struct SiteOutcome {
    site: usize,
    comm: CommCost,
    shared_bytes: usize,
    unshared_bytes: usize,
    inference_runs: usize,
    inference_wall: Duration,
    inference_stats: InferenceStats,
    alerts: Vec<Alert>,
    containment: Vec<(TagId, TagId)>,
    transport: TransportStats,
    quarantine: Vec<QuarantineEntry>,
    memory: MemoryStats,
    ledgers: BTreeMap<(u16, u16), EdgeLedger>,
}

/// The per-site state machine: one site's engine, query processor, replay
/// cursors and communication tally.
///
/// Both execution modes drive the *same* methods in the *same* per-epoch
/// order — ingest, deliver, depart, (route shipments), deliver, step — which
/// is what makes the parallel driver bit-identical to the sequential one: the
/// only cross-site interaction is the [`ShipmentMsg`] exchange, and imports
/// are replayed in [`ShipmentMsg::order_key`] order at the arrival epoch.
pub(crate) struct SiteState<'a> {
    site: usize,
    engine: InferenceEngine,
    processor: QueryProcessor,
    /// Time-ordered replay source; borrowed straight from the trace when the
    /// batch is already sorted, so large traces are not copied per run.
    readings: Cow<'a, [RawReading]>,
    reading_cursor: usize,
    sensors: Vec<SensorReading>,
    sensor_cursor: usize,
    /// Transfers departing from this site, in global (depart, tag) order.
    departures: Vec<ObjectTransfer>,
    departure_cursor: usize,
    /// Shipments awaiting their arrival epoch, keyed by it.
    inbox: BTreeMap<Epoch, Vec<ShipmentMsg>>,
    /// The run's wire codec (kept here so the arrival path, which has no
    /// context handle, can decode inbound payloads).
    codec: WireCodec,
    comm: CommCost,
    shared_bytes: usize,
    unshared_bytes: usize,
    inference_runs: usize,
    inference_wall: Duration,
    inference_stats: InferenceStats,
    /// Checkpoint period (validated non-zero); `None` disables durability.
    checkpoint_every: Option<u32>,
    /// Encoded bytes of the newest checkpoint — the durable artifact a crash
    /// restores from. Only the newest is retained (bounded memory); the
    /// journal covers everything after it.
    last_checkpoint: Option<Vec<u8>>,
    /// Durable receive log: every shipment accepted since the last
    /// checkpoint compaction. Only maintained when this site can crash.
    journal: Vec<ShipmentMsg>,
    /// The run's fault schedule (cloned per site: plans are small and the
    /// site queries them on hot paths).
    faults: Option<FaultPlan>,
    /// This site's scheduled crash, extracted from the plan.
    crash: Option<CrashFault>,
    /// Set while the site is down after a crash with non-zero downtime;
    /// every processing method is a no-op until the epoch it holds.
    down_until: Option<Epoch>,
    /// Whether this epoch's processing is suppressed (down after a crash).
    down: bool,
    /// How much of the reliable-delivery machinery this run engages.
    transport_mode: TransportMode,
    /// Outbound per-destination sequence counters (transport on only).
    seqs: EdgeSequencer,
    /// Receiver-side dedup state, one [`ReliableInbox`] per inbound edge.
    dedup: BTreeMap<u16, ReliableInbox>,
    /// Last local departure epoch per tag — the staleness guard: transport
    /// copies carrying state older than the tag's last departure from this
    /// site are dropped instead of resurrecting a forwarded object.
    forgotten: BTreeMap<TagId, Epoch>,
    /// Transport counters this site contributes to the merged outcome.
    tstats: TransportStats,
    /// Total sites in the chain (the rejoin resync fans out to all peers).
    num_sites: usize,
    /// This site's reader-clock skew from the fault plan: a reading
    /// timestamped `t` only becomes visible to `ingest` at epoch `t + skew`
    /// (timestamps are untouched — the evidence just surfaces late).
    skew_secs: u32,
    /// Reader slots at this site, the domain of rogue-reader draws.
    num_readers: u16,
    /// Poison ledger: every envelope whose payload failed to decode, in
    /// acceptance order. Durable in the checkpoint.
    quarantine: Vec<QuarantineEntry>,
    /// Memory-budget counters (high-water mark, compactions, evictions).
    /// Durable in the checkpoint.
    memory: MemoryStats,
    /// Per-directed-edge conservation ledgers: this site books the sender
    /// half of its out-edges and the receiver half of its in-edges; the
    /// merge step folds both halves of each edge together. Durable in the
    /// checkpoint.
    ledgers: BTreeMap<(u16, u16), EdgeLedger>,
}

impl<'a> SiteState<'a> {
    pub(crate) fn new(ctx: &FederatedCtx<'_>, chain: &'a ChainTrace, site: usize) -> SiteState<'a> {
        let trace = &chain.sites[site];
        let config = &ctx.driver.config;
        let readings = match trace.readings.sorted_readings() {
            Some(slice) => Cow::Borrowed(slice),
            None => {
                let mut copy = trace.readings.readings_unordered().to_vec();
                copy.sort_unstable();
                copy.dedup();
                Cow::Owned(copy)
            }
        };
        let sensors = match &config.temperature {
            Some(model) if ctx.with_queries => {
                model.generate(trace.meta.num_locations, Epoch(ctx.horizon))
            }
            _ => Vec::new(),
        };
        SiteState {
            site,
            engine: InferenceEngine::new(config.inference.clone(), trace.read_rates.clone()),
            processor: ctx.driver.make_processor(),
            readings,
            reading_cursor: 0,
            sensors,
            sensor_cursor: 0,
            departures: chain
                .transfers
                .iter()
                .filter(|tr| tr.from_site.0 as usize == site)
                .copied()
                .collect(),
            departure_cursor: 0,
            inbox: BTreeMap::new(),
            codec: ctx.codec,
            comm: CommCost::new(),
            shared_bytes: 0,
            unshared_bytes: 0,
            inference_runs: 0,
            inference_wall: Duration::ZERO,
            inference_stats: InferenceStats::default(),
            checkpoint_every: config.checkpoint_every_secs.filter(|&k| k > 0),
            last_checkpoint: None,
            journal: Vec::new(),
            faults: config.faults.clone(),
            crash: config
                .faults
                .as_ref()
                .and_then(|plan| plan.crash(site as u16)),
            down_until: None,
            down: false,
            transport_mode: ctx.transport_mode,
            seqs: EdgeSequencer::new(),
            dedup: BTreeMap::new(),
            forgotten: BTreeMap::new(),
            tstats: TransportStats::default(),
            num_sites: chain.sites.len(),
            skew_secs: config
                .faults
                .as_ref()
                .map_or(0, |plan| plan.clock_skew_secs(site as u16)),
            num_readers: trace.meta.num_locations as u16,
            quarantine: Vec::new(),
            memory: MemoryStats::default(),
            ledgers: BTreeMap::new(),
        }
    }

    /// The conservation ledger of the directed edge `from → to`, created on
    /// first touch.
    fn ledger_entry(&mut self, from: u16, to: u16) -> &mut EdgeLedger {
        self.ledgers
            .entry((from, to))
            .or_insert_with(|| EdgeLedger::new(from, to))
    }

    /// Account one engine run into the site's inference totals.
    fn note_report(&mut self, report: &InferenceReport) {
        self.inference_runs += 1;
        self.inference_wall += report.duration;
        self.inference_stats.absorb(&report.stats);
    }

    /// Feed this epoch's local sensor and RFID streams into the site.
    /// RFID readings falling inside a scheduled reader outage are dropped,
    /// a skewed reader clock surfaces readings `skew_secs` late (timestamps
    /// untouched), and a rogue-reader draw injects a cloned reading at a
    /// deterministic second antenna — all pure functions of the fault plan,
    /// so replays see the identical stream.
    pub(crate) fn ingest(&mut self, now: Epoch) {
        if self.down {
            return;
        }
        while self.sensor_cursor < self.sensors.len()
            && self.sensors[self.sensor_cursor].time <= now
        {
            self.processor.on_sensor(self.sensors[self.sensor_cursor]);
            self.sensor_cursor += 1;
        }
        let site = self.site as u16;
        while self.reading_cursor < self.readings.len()
            && self.readings[self.reading_cursor]
                .time
                .0
                .saturating_add(self.skew_secs)
                <= now.0
        {
            let reading = self.readings[self.reading_cursor];
            self.reading_cursor += 1;
            if let Some(plan) = &self.faults {
                if plan.reading_dropped(site, reading.time) {
                    continue;
                }
            }
            self.engine.observe(reading);
            if let Some(plan) = &self.faults {
                if let Some(slot) =
                    plan.rogue_reader_slot(site, reading.time, reading.tag, self.num_readers)
                {
                    self.engine
                        .observe(RawReading::new(reading.time, reading.tag, ReaderId(slot)));
                }
            }
        }
    }

    /// Buffer an inbound shipment until its arrival epoch, journaling it
    /// first if this site can crash: the journal is the durable receive log
    /// a restore re-enqueues, so no shipment is lost with the volatile inbox.
    pub(crate) fn receive(&mut self, msg: ShipmentMsg) {
        if self.crash.is_some() {
            self.journal.push(msg.clone());
        }
        self.enqueue(msg);
    }

    /// Insert into the volatile inbox without journaling (the restore path,
    /// which re-enqueues already-journaled shipments).
    fn enqueue(&mut self, msg: ShipmentMsg) {
        self.inbox.entry(msg.arrive).or_default().push(msg);
    }

    /// Import every shipment that arrived at `now` from an *earlier* epoch's
    /// departures, in sequential replay order.
    ///
    /// Shipments with `depart == now` (zero transit) are held back: the
    /// sequential replay delivers them only after this epoch's departure
    /// pass, and under the parallel driver a racing worker may have pushed
    /// one into the inbox a drain early — [`Self::deliver_zero_transit`]
    /// imports them at the correct point either way.
    pub(crate) fn deliver(&mut self, now: Epoch) {
        if self.down {
            return;
        }
        if let Some(batch) = self.inbox.remove(&now) {
            let (ready, hold): (Vec<ShipmentMsg>, Vec<ShipmentMsg>) =
                batch.into_iter().partition(|msg| msg.depart < now);
            if !hold.is_empty() {
                self.inbox.insert(now, hold);
            }
            self.import(ready);
        }
    }

    /// Import this epoch's zero-transit shipments (`depart == arrive ==
    /// now`), which the departure pass just produced.
    pub(crate) fn deliver_zero_transit(&mut self, now: Epoch) {
        if self.down {
            return;
        }
        if let Some(batch) = self.inbox.remove(&now) {
            self.import(batch);
        }
    }

    fn import(&mut self, mut batch: Vec<ShipmentMsg>) {
        batch.sort_by_key(ShipmentMsg::order_key);
        let me = self.site as u16;
        for msg in batch {
            let guarded = msg.is_envelope() && self.transport_mode.dedups();
            if guarded {
                let payload_len = msg.inference.as_ref().map_or(0, Vec::len) as u64;
                let entry = self.ledger_entry(msg.from.0, me);
                entry.recv_copies += 1;
                entry.recv_bytes += payload_len;
                if self.transport_mode == TransportMode::Reliable {
                    // The receiver acks every arriving copy — duplicates
                    // included, since the sender may be retransmitting
                    // precisely because an earlier ack was lost. Real encoded
                    // bytes, booked at the ack sender.
                    let ack = ControlMsg::Ack {
                        from: me,
                        to: msg.from.0,
                        seq: msg.seq,
                    };
                    let bytes = self.codec.encode_control(&ack).len();
                    self.comm.record(MessageKind::Control, bytes);
                    self.tstats.acks += 1;
                }
                // At-most-once delivery: retransmitted (and fault-duplicated)
                // copies of a sequence number never reach the engine twice.
                if !self.dedup.entry(msg.from.0).or_default().accept(msg.seq) {
                    self.tstats.duplicates_dropped += 1;
                    continue;
                }
                self.ledger_entry(msg.from.0, me).accepted += 1;
                // Staleness guard: if the tag already departed this site
                // after the physical arrival this copy belongs to, its state
                // would resurrect a forwarded object — drop it.
                if self
                    .forgotten
                    .get(&msg.tag)
                    .is_some_and(|&gone| gone > msg.physical)
                {
                    self.tstats.stale_dropped += 1;
                    self.ledger_entry(msg.from.0, me).stale += 1;
                    continue;
                }
            }
            if let Some(payload) = &msg.inference {
                match self.codec.decode_migration(payload) {
                    Ok(state) => {
                        if guarded && msg.arrive > msg.physical {
                            // Degraded-mode reconciliation: the object itself
                            // arrived earlier and was cold-started from local
                            // readings; merge the late migration state through
                            // the dirty-set journal so incremental inference
                            // re-runs it exactly.
                            let summary = self.engine.import_late_state(state);
                            if summary.merged() {
                                self.tstats.reconciled += 1;
                            }
                        } else {
                            self.engine.import_state(state);
                        }
                    }
                    Err(_) if guarded => {
                        // Poison quarantine: a corrupted payload is a typed
                        // decode error, never a panic. The whole envelope is
                        // suspect, so its query state is dropped too and the
                        // receiver degrades to None-semantics for this object
                        // (cold-started from local readings). A reliable
                        // receiver additionally asks the sender for
                        // anti-entropy resync, charged as control traffic.
                        self.quarantine.push(QuarantineEntry {
                            from: msg.from.0,
                            seq: msg.seq,
                            physical: msg.physical,
                        });
                        self.tstats.quarantined += 1;
                        self.ledger_entry(msg.from.0, me).quarantined += 1;
                        if self.transport_mode == TransportMode::Reliable {
                            let resync = ControlMsg::Resync {
                                site: me,
                                peer: msg.from.0,
                                since: msg.physical,
                            };
                            let bytes = self.codec.encode_control(&resync).len();
                            self.comm.record(MessageKind::Control, bytes);
                            self.tstats.resyncs += 1;
                        }
                        continue;
                    }
                    Err(err) => panic!("in-process shipment payload decodes: {err}"),
                }
            }
            if !msg.query.is_empty() {
                self.processor.import_state(msg.query);
            }
            if guarded {
                self.ledger_entry(msg.from.0, me).imported += 1;
            }
        }
    }

    /// Process the dispatches leaving this site at `now`: refresh the local
    /// outcome, snapshot the departing objects' inference and query state,
    /// charge every byte, forget the objects, and emit one [`ShipmentMsg`]
    /// per object into `out`.
    pub(crate) fn depart(
        &mut self,
        ctx: &FederatedCtx<'_>,
        now: Epoch,
        out: &mut Vec<ShipmentMsg>,
    ) {
        if self.down {
            return;
        }
        let mut departing = Vec::new();
        while self.departure_cursor < self.departures.len()
            && self.departures[self.departure_cursor].depart == now
        {
            departing.push(self.departures[self.departure_cursor]);
            self.departure_cursor += 1;
        }
        if departing.is_empty() {
            return;
        }
        // Refresh this site's outcome so exported state reflects the readings
        // collected since the last run.
        if ctx.migrates_state {
            let due = match self.engine.last_inference_at() {
                None => true,
                Some(last) => now.since(last) >= FORCED_RUN_SPACING_SECS,
            };
            if due {
                let report = self.engine.run_inference(now);
                self.note_report(&report);
            }
        }
        // Group the dispatch by route *and arrival epoch*, so that staggered
        // arrivals on one route import state at their own epochs and query
        // state is shared per physical shipment (the objects that actually
        // travel together).
        let from = SiteId(self.site as u16);
        let mut by_shipment: BTreeMap<(SiteId, Epoch), Vec<TagId>> = BTreeMap::new();
        for tr in &departing {
            if ctx.migrates_state {
                self.comm.record(MessageKind::OnsUpdate, ONS_UPDATE_BYTES);
            }
            by_shipment
                .entry((tr.to_site, tr.arrive))
                .or_default()
                .push(tr.tag);
        }
        for ((to, arrive), tags) in by_shipment {
            let mut shipment_states: Vec<ObjectQueryState> = Vec::new();
            // Transmissions of the physical shipment's query bundle: under a
            // reliable transport the bundle rides on every retransmission, so
            // it is charged once per the slowest envelope's attempt count.
            let mut group_attempts = 1u32;
            // Readings already on this shipment: a migrating object re-ships
            // its candidate containers' critical-region readings, and objects
            // of one case share those candidates, so without per-shipment
            // dedup the same container readings travel once per object.
            let mut shipped_readings: BTreeSet<RawReading> = BTreeSet::new();
            for &tag in &tags {
                // Inference state: objects carry state, containers are
                // re-localized from their own readings at the next site.
                let state = if !tag.is_object() {
                    MigrationState::None
                } else {
                    match ctx.strategy {
                        MigrationStrategy::None => MigrationState::None,
                        MigrationStrategy::CollapsedWeights => {
                            MigrationState::Collapsed(self.engine.export_collapsed(tag))
                        }
                        MigrationStrategy::CriticalRegionReadings => {
                            let mut readings = self.engine.export_readings(tag);
                            readings.readings.retain(|r| shipped_readings.insert(*r));
                            MigrationState::Readings(readings)
                        }
                        MigrationStrategy::Centralized => unreachable!(),
                    }
                };
                // Encode with the run's wire codec: the encoded length is the
                // communication cost, and the same bytes travel in the
                // shipment and are decoded at the destination. Carrying no
                // state costs no message.
                let inference = match state {
                    MigrationState::None => None,
                    state => {
                        let payload = ctx.codec.encode_migration(&state);
                        self.comm.record(MessageKind::InferenceState, payload.len());
                        Some(payload)
                    }
                };
                // Query state travels per object so the automaton run
                // continues seamlessly at the next site. Under `None` nothing
                // at all crosses the boundary, so the automaton restarts cold
                // — that is the baseline.
                let query = if ctx.with_queries && ctx.migrates_state && tag.is_object() {
                    self.processor.export_state(tag)
                } else {
                    Vec::new()
                };
                shipment_states.extend(query.iter().cloned());
                // Delivery faults are decided sender-side from the message's
                // identifying key, so both executors (and a crash replay)
                // inject the same delay or duplicate for the same shipment.
                // A delayed arrival past the horizon is never delivered.
                let mut delivered_at = arrive;
                let mut duplicated = false;
                if let Some(plan) = &self.faults {
                    let delay = plan.shipment_delay_secs(from.0, to.0, tag, now);
                    if delay > 0 {
                        delivered_at = Epoch(arrive.0.saturating_add(delay));
                    }
                    duplicated = plan.shipment_duplicated(from.0, to.0, tag, now);
                }
                let mut msg = ShipmentMsg {
                    depart: now,
                    from,
                    to,
                    tag,
                    arrive: delivered_at,
                    seq: 0,
                    physical: arrive,
                    inference,
                    query,
                };
                // Only envelopes with a payload ride the reliable channel
                // (crash restore rebuilds the sequence counters from exactly
                // this predicate, so it must stay a pure function of the
                // strategy and the tag).
                debug_assert_eq!(
                    msg.is_envelope(),
                    ctx.migrates_state && tag.is_object(),
                    "envelope predicate drifted from the seq-rebuild rule"
                );
                if !(msg.is_envelope() && self.transport_mode.dedups()) {
                    // Direct path: the exact seed behavior, bit for bit.
                    if duplicated {
                        out.push(msg.clone());
                    }
                    out.push(msg);
                } else {
                    msg.seq = self.seqs.next(to.0);
                    // Poison injection: a corrupted link flips a bit in the
                    // encoded payload. Keyed by `(edge, seq)` so every
                    // retransmitted copy of one envelope carries the
                    // identical corruption and both executors (and a crash
                    // replay) poison the same envelopes.
                    if let Some(plan) = &self.faults {
                        if plan.payload_corrupted(from.0, to.0, msg.seq) {
                            if let Some(byte) = msg.inference.as_mut().and_then(|p| p.first_mut()) {
                                *byte ^= 0x80;
                            }
                        }
                    }
                    let payload_len = msg.inference.as_ref().map_or(0, Vec::len) as u64;
                    if self.transport_mode == TransportMode::Optimistic {
                        self.tstats.envelopes += 1;
                        self.tstats.transmissions += 1;
                        let copies = 1 + u64::from(duplicated);
                        let entry = self.ledger_entry(from.0, to.0);
                        entry.envelopes += 1;
                        entry.sent_copies += copies;
                        entry.sent_bytes += payload_len * copies;
                        if duplicated {
                            out.push(msg.clone());
                        }
                        out.push(msg);
                    } else {
                        // Reliable: simulate the whole ack/retransmit
                        // exchange sender-side (a pure function of the fault
                        // plan), emit one copy per surviving attempt, and
                        // charge the payload once per transmission.
                        let plan = self
                            .faults
                            .as_ref()
                            .expect("reliable transport implies a fault plan");
                        let delivery = DeliveryPlan::compute(
                            plan,
                            &ctx.driver.config.transport,
                            from.0,
                            to.0,
                            tag,
                            now,
                            delivered_at,
                            Epoch(ctx.horizon),
                        );
                        self.tstats.envelopes += 1;
                        self.tstats.transmissions += u64::from(delivery.attempts);
                        self.tstats.retransmissions +=
                            u64::from(delivery.attempts.saturating_sub(1));
                        let copies = if delivery.abandoned {
                            0
                        } else {
                            delivery.arrivals.len() as u64 + u64::from(duplicated)
                        };
                        let entry = self.ledger_entry(from.0, to.0);
                        entry.envelopes += 1;
                        entry.abandoned += u64::from(delivery.abandoned);
                        entry.sent_copies += copies;
                        entry.sent_bytes += payload_len * copies;
                        if let Some(payload) = &msg.inference {
                            for _ in 1..delivery.attempts {
                                self.comm.record(MessageKind::InferenceState, payload.len());
                            }
                        }
                        group_attempts = group_attempts.max(delivery.attempts);
                        if delivery.abandoned {
                            // Retry budget exhausted (or the partition outlived
                            // the horizon): the destination never sees this
                            // state and cold-starts the physically-arrived
                            // object — degraded mode.
                            self.tstats.abandoned += 1;
                        } else {
                            if duplicated {
                                let mut copy = msg.clone();
                                copy.arrive = delivery.arrivals[0];
                                out.push(copy);
                            }
                            for &arrival in &delivery.arrivals {
                                let mut copy = msg.clone();
                                copy.arrive = arrival;
                                out.push(copy);
                            }
                        }
                    }
                }
            }
            // Centroid-based sharing: compress the query states of this
            // shipment's objects (Section 4.2) over payloads in the run's
            // wire format, and charge the encoded bundle size. The unshared
            // baseline is measured in the same format so the Section 5.4
            // comparison stays apples-to-apples, and a shipment whose bundle
            // framing would exceed the plain states ships them unbundled —
            // the shipment-level analogue of the per-state full-payload
            // fallback inside `delta_against`, keeping "sharing never makes
            // migration more expensive" true under every codec.
            if let Some(bundle) =
                share_states_with(&shipment_states, |s| ctx.codec.state_payload(s))
            {
                let bundled = ctx.codec.encode_bundle(&bundle).len();
                let unshared = unshared_bytes_with(&shipment_states, |s| {
                    ctx.codec.encode_query_state(s).len()
                });
                let shared = bundled.min(unshared);
                self.shared_bytes += shared;
                self.unshared_bytes += unshared;
                // The sharing-efficiency comparison (Section 5.4) counts the
                // logical bundle once; the wire tally charges it once per
                // transmission of the shipment it rides on.
                for _ in 0..group_attempts {
                    self.comm.record(MessageKind::QueryState, shared);
                }
            }
            // The state has left the building.
            for &tag in &tags {
                self.engine.forget(tag);
                self.processor.forget(tag);
                self.forgotten.insert(tag, now);
            }
        }
    }

    /// Run the periodic inference step and push enriched events into the
    /// query processor. `ons` must already reflect every transfer departing
    /// at or before `now`.
    pub(crate) fn step_and_feed(&mut self, ctx: &FederatedCtx<'_>, now: Epoch, ons: &Ons) {
        if self.down {
            return;
        }
        if let Some(report) = self.engine.step(now) {
            self.note_report(&report);
        }
        if ctx.with_queries && now.0.is_multiple_of(ctx.stride) {
            for event in self.engine.events_at(now) {
                // only the custody site feeds events for an object, so a
                // departed object's stale estimates do not keep an abandoned
                // automaton alive
                if ons.site_of(event.tag, SiteId(0)).0 as usize != self.site {
                    continue;
                }
                ctx.driver.feed_event(&mut self.processor, event);
            }
        }
        // Bounded-memory degradation: once the retained history exceeds the
        // budget, old epochs collapse into summary weights and cold cache
        // entries are evicted — a pure function of the engine state, so both
        // executors (and a crash replay) compact identically.
        if let Some(budget) = ctx.driver.config.memory_budget {
            self.engine.enforce_budget(budget, now, &mut self.memory);
        }
    }

    /// Epoch-start fault hook, called by both executors before any other
    /// processing at `now`. Fires the scheduled crash: immediately restore
    /// and replay for a zero-downtime crash (lossless), or mark the site
    /// down and defer the restore to the rejoin epoch for a lossy one. All
    /// processing methods are no-ops while the site is down.
    pub(crate) fn maybe_crash(&mut self, ctx: &FederatedCtx<'_>, chain: &ChainTrace, now: Epoch) {
        if let Some(crash) = self.crash {
            if crash.at == now {
                if crash.downtime_secs == 0 {
                    self.crash_and_restore(ctx, chain, crash.at);
                    self.down = false;
                    return;
                }
                self.down_until = Some(crash.resume_at());
            }
            if let Some(resume) = self.down_until {
                if now < resume {
                    self.down = true;
                    return;
                }
                // Rejoin: restore to the pre-crash state, then fast-forward
                // through the missed epochs — their local readings and
                // departures are lost, which is the lossy part.
                self.down_until = None;
                // The down flag must drop *before* the restore: the replay
                // loop inside `crash_and_restore` runs the regular per-epoch
                // hooks, and every one of them no-ops while the site is down.
                // Restoring first would skip the tail replay entirely,
                // leaving the outbound sequence counters at the checkpoint
                // and re-issuing live sequence numbers for fresh envelopes —
                // which the peer's dedup window would then silently drop.
                self.down = false;
                self.crash_and_restore(ctx, chain, crash.at);
                self.fast_forward(resume);
                // Anti-entropy resync: a rejoining site asks every peer to
                // replay anything it missed while dark — one control round
                // per inbound edge, charged like any other control traffic.
                // (The pending-inbox replay itself is the `fast_forward`
                // import above; only the request bytes are new.)
                if self.transport_mode == TransportMode::Reliable {
                    let me = self.site as u16;
                    for peer in 0..self.num_sites as u16 {
                        if peer == me {
                            continue;
                        }
                        let resync = ControlMsg::Resync {
                            site: me,
                            peer,
                            since: resume,
                        };
                        let bytes = self.codec.encode_control(&resync).len();
                        self.comm.record(MessageKind::Control, bytes);
                        self.tstats.resyncs += 1;
                    }
                }
            }
        }
        self.down = false;
    }

    /// Crash at the start of `crash_at`: destroy the volatile state, restore
    /// from the newest checkpoint (or from scratch when none exists),
    /// re-enqueue the durable journal, and deterministically replay the
    /// local trace tail up to (excluding) `crash_at`. Replayed departures
    /// are discarded — their shipments already reached their destinations in
    /// the pre-crash timeline — but are still charged, which is exactly how
    /// the communication tally is rebuilt to match the uninterrupted run.
    fn crash_and_restore(&mut self, ctx: &FederatedCtx<'_>, chain: &ChainTrace, crash_at: Epoch) {
        self.inbox.clear();
        let restored = self.last_checkpoint.as_ref().map(|bytes| {
            self.codec
                .decode_checkpoint(bytes)
                .expect("a site's own checkpoint decodes")
        });
        let replay_from = match restored {
            Some(checkpoint) => {
                let resume = checkpoint.at.0 + 1;
                self.engine.restore(checkpoint.engine);
                self.processor.restore(checkpoint.processor);
                self.reading_cursor = checkpoint.reading_cursor as usize;
                self.sensor_cursor = checkpoint.sensor_cursor as usize;
                self.departure_cursor = checkpoint.departure_cursor as usize;
                self.comm = CommCost::from_parts(checkpoint.comm_bytes, checkpoint.comm_messages);
                self.shared_bytes = checkpoint.shared_bytes as usize;
                self.unshared_bytes = checkpoint.unshared_bytes as usize;
                self.inference_runs = checkpoint.inference_runs as usize;
                self.inference_stats = checkpoint.stats;
                self.tstats = checkpoint.transport;
                self.quarantine = checkpoint.quarantine;
                self.memory = checkpoint.memory;
                self.ledgers = checkpoint
                    .ledgers
                    .iter()
                    .map(|ledger| ((ledger.from, ledger.to), *ledger))
                    .collect();
                self.dedup = checkpoint
                    .inbox_seqs
                    .iter()
                    .map(|seqs| (seqs.peer, ReliableInbox::from_seqs(seqs)))
                    .collect();
                for pending in checkpoint.inbox {
                    self.enqueue(ShipmentMsg::from_pending(pending));
                }
                resume
            }
            None => {
                let trace = &chain.sites[self.site];
                self.engine = InferenceEngine::new(
                    ctx.driver.config.inference.clone(),
                    trace.read_rates.clone(),
                );
                self.processor = ctx.driver.make_processor();
                self.reading_cursor = 0;
                self.sensor_cursor = 0;
                self.departure_cursor = 0;
                self.comm = CommCost::new();
                self.shared_bytes = 0;
                self.unshared_bytes = 0;
                self.inference_runs = 0;
                self.inference_stats = InferenceStats::default();
                self.tstats = TransportStats::default();
                self.quarantine.clear();
                self.memory = MemoryStats::default();
                self.ledgers.clear();
                self.dedup.clear();
                0
            }
        };
        // Outbound sequence counters and the staleness guard are not
        // persisted: both are pure functions of the already-processed
        // departure prefix (the envelope predicate asserted in `depart`), so
        // the restore recomputes them and the tail replay extends them.
        self.seqs.clear();
        self.forgotten.clear();
        let assigns_seqs = self.transport_mode.dedups() && ctx.migrates_state;
        for tr in &self.departures[..self.departure_cursor] {
            self.forgotten.insert(tr.tag, tr.depart);
            if assigns_seqs && tr.tag.is_object() {
                self.seqs.next(tr.to_site.0);
            }
        }
        // Wall-clock is not durable state (and deliberately outside the
        // determinism contract); the replay below re-accumulates some.
        self.inference_wall = Duration::ZERO;
        // Re-enqueue the durable receive log — everything accepted after the
        // checkpoint — without journaling it a second time.
        let journaled: Vec<ShipmentMsg> = self.journal.clone();
        for msg in journaled {
            self.enqueue(msg);
        }
        // Bounded replay of the local tail, in the executors' per-epoch call
        // order, against a private custody replica.
        let mut ons = OnsTracker::new();
        let mut discarded: Vec<ShipmentMsg> = Vec::new();
        for t in replay_from..crash_at.0 {
            let now = Epoch(t);
            self.ingest(now);
            self.deliver(now);
            self.depart(ctx, now, &mut discarded);
            discarded.clear();
            self.deliver_zero_transit(now);
            ons.advance(&chain.transfers, now);
            self.step_and_feed(ctx, now, ons.get());
        }
    }

    /// Skip the cursors past everything the site slept through and import,
    /// in sequential generation order, the shipments that arrived while it
    /// was down.
    fn fast_forward(&mut self, resume: Epoch) {
        while self.reading_cursor < self.readings.len()
            && self.readings[self.reading_cursor]
                .time
                .0
                .saturating_add(self.skew_secs)
                < resume.0
        {
            self.reading_cursor += 1;
        }
        while self.sensor_cursor < self.sensors.len()
            && self.sensors[self.sensor_cursor].time < resume
        {
            self.sensor_cursor += 1;
        }
        while self.departure_cursor < self.departures.len()
            && self.departures[self.departure_cursor].depart < resume
        {
            self.departure_cursor += 1;
        }
        let stale: Vec<Epoch> = self.inbox.range(..resume).map(|(key, _)| *key).collect();
        let mut late = Vec::new();
        for key in stale {
            if let Some(batch) = self.inbox.remove(&key) {
                late.extend(batch);
            }
        }
        self.import(late);
    }

    /// End-of-epoch durability hook: cut a checkpoint when the policy says
    /// so, retain only its encoded bytes, and compact the journal down to
    /// the receives the checkpoint does not already cover.
    pub(crate) fn maybe_checkpoint(&mut self, now: Epoch) {
        let Some(every) = self.checkpoint_every else {
            return;
        };
        if self.down || now.0 == 0 || !now.0.is_multiple_of(every) {
            return;
        }
        let checkpoint = self.build_checkpoint(now);
        self.last_checkpoint = Some(self.codec.encode_checkpoint(&checkpoint));
        // Receives departing at or before `now` are either already imported
        // (inside the engine snapshot) or in the checkpoint inbox; only
        // shipments a racing worker delivered early from the next epoch
        // remain journaled.
        self.journal.retain(|msg| msg.depart > now);
    }

    /// The site's durable state at the end of epoch `at`. The inbox section
    /// keeps only shipments departing at or before `at`, sorted into
    /// sequential generation order, so both executors cut byte-identical
    /// checkpoints even when a racing worker delivered an `at + 1` shipment
    /// early.
    fn build_checkpoint(&self, at: Epoch) -> SiteCheckpoint {
        let mut pending: Vec<&ShipmentMsg> = self
            .inbox
            .values()
            .flatten()
            .filter(|msg| msg.depart <= at)
            .collect();
        pending.sort_by_key(|msg| msg.order_key());
        let (comm_bytes, comm_messages) = self.comm.to_parts();
        SiteCheckpoint {
            site: self.site as u16,
            at,
            engine: self.engine.snapshot(),
            processor: self.processor.snapshot(),
            reading_cursor: self.reading_cursor as u64,
            sensor_cursor: self.sensor_cursor as u64,
            departure_cursor: self.departure_cursor as u64,
            inbox: pending.into_iter().map(ShipmentMsg::to_pending).collect(),
            comm_bytes,
            comm_messages,
            shared_bytes: self.shared_bytes as u64,
            unshared_bytes: self.unshared_bytes as u64,
            inference_runs: self.inference_runs as u64,
            stats: self.inference_stats,
            inbox_seqs: self
                .dedup
                .iter()
                .map(|(&peer, inbox)| inbox.to_seqs(peer))
                .collect(),
            transport: self.tstats,
            quarantine: self.quarantine.clone(),
            memory: self.memory,
            ledgers: self.ledgers.values().copied().collect(),
        }
    }

    /// Final refresh so the reported containment reflects every reading
    /// (skipped where the periodic step already ran at the horizon).
    pub(crate) fn finalize(&mut self, horizon: Epoch) {
        if self.engine.last_inference_at() != Some(horizon) {
            let report = self.engine.run_inference(horizon);
            self.note_report(&report);
        }
    }

    /// Consume the site, reporting the containment of the objects this site
    /// owns (per the final ONS), its alerts and its communication tally.
    pub(crate) fn into_outcome(mut self, objects: &[TagId], ons: &Ons) -> SiteOutcome {
        // Conservation drain: copies still in the inbox at the end of the
        // run (the site was down from their arrival through the horizon, or
        // a delay fault pushed the arrival past it) are booked as
        // undelivered, so the per-edge ledgers balance instead of silently
        // losing them. The dedup probe distinguishes a leftover duplicate of
        // an accepted envelope from an envelope that never got through.
        let leftovers = std::mem::take(&mut self.inbox);
        let me = self.site as u16;
        for msg in leftovers.into_values().flatten() {
            if !(msg.is_envelope() && self.transport_mode.dedups()) {
                continue;
            }
            let payload_len = msg.inference.as_ref().map_or(0, Vec::len) as u64;
            let fresh = self.dedup.entry(msg.from.0).or_default().accept(msg.seq);
            let entry = self.ledger_entry(msg.from.0, me);
            entry.undelivered += 1;
            entry.undelivered_bytes += payload_len;
            if fresh {
                entry.dark_envelopes += 1;
            }
        }
        let mut containment = Vec::new();
        for &object in objects {
            if ons.site_of(object, SiteId(0)).0 as usize != self.site {
                continue;
            }
            if let Some(container) = self.engine.container_of(object) {
                containment.push((object, container));
            }
        }
        SiteOutcome {
            site: self.site,
            comm: self.comm,
            shared_bytes: self.shared_bytes,
            unshared_bytes: self.unshared_bytes,
            inference_runs: self.inference_runs,
            inference_wall: self.inference_wall,
            inference_stats: self.inference_stats,
            alerts: self.processor.alerts().to_vec(),
            containment,
            transport: self.tstats,
            quarantine: self.quarantine,
            memory: self.memory,
            ledgers: self.ledgers,
        }
    }
}

/// Merge per-site contributions into one [`DistributedOutcome`], replaying
/// the order a sequential run reports in (sites ascending, alerts sorted by
/// firing order).
pub(crate) fn merge_outcomes(mut outcomes: Vec<SiteOutcome>, ons: Ons) -> DistributedOutcome {
    outcomes.sort_by_key(|o| o.site);
    let comm = CommCost::merged(outcomes.iter().map(|o| &o.comm));
    let mut alerts: Vec<Alert> = outcomes
        .iter()
        .flat_map(|o| o.alerts.iter().cloned())
        .collect();
    alerts.sort_by(|a, b| (a.at, &a.query, a.tag).cmp(&(b.at, &b.query, b.tag)));
    let mut containment = ContainmentMap::new();
    for outcome in &outcomes {
        for &(object, container) in &outcome.containment {
            containment.set(object, container);
        }
    }
    let mut inference_stats = InferenceStats::default();
    let mut transport = TransportStats::default();
    let mut memory = MemoryStats::default();
    let mut ledger_map: BTreeMap<(u16, u16), EdgeLedger> = BTreeMap::new();
    let mut quarantine: Vec<(SiteId, QuarantineEntry)> = Vec::new();
    for outcome in &outcomes {
        inference_stats.absorb(&outcome.inference_stats);
        transport.merge(&outcome.transport);
        memory.merge(&outcome.memory);
        for (&key, ledger) in &outcome.ledgers {
            ledger_map
                .entry(key)
                .or_insert_with(|| EdgeLedger::new(key.0, key.1))
                .merge(ledger);
        }
        for &entry in &outcome.quarantine {
            quarantine.push((SiteId(outcome.site as u16), entry));
        }
    }
    DistributedOutcome {
        containment,
        comm,
        alerts,
        query_state_shared_bytes: outcomes.iter().map(|o| o.shared_bytes).sum(),
        query_state_unshared_bytes: outcomes.iter().map(|o| o.unshared_bytes).sum(),
        ons,
        inference_runs: outcomes.iter().map(|o| o.inference_runs).sum(),
        inference_wall: outcomes.iter().map(|o| o.inference_wall).sum(),
        inference_stats,
        transport,
        quarantine,
        memory,
        ledgers: ledger_map.into_values().collect(),
    }
}

/// Drives a [`ChainTrace`] through the distributed pipeline.
///
/// # Example
///
/// Replay a two-warehouse chain under collapsed-weight migration and read
/// off the accuracy/communication trade-off:
///
/// ```
/// use rfid_core::InferenceConfig;
/// use rfid_dist::{DistributedConfig, DistributedDriver, MigrationStrategy};
/// use rfid_sim::{ChainConfig, SupplyChainSimulator, WarehouseConfig};
///
/// let chain = SupplyChainSimulator::new(ChainConfig {
///     warehouse: WarehouseConfig::default()
///         .with_length(600)
///         .with_items_per_case(2)
///         .with_cases_per_pallet(1),
///     num_warehouses: 2,
///     transit_secs: 60,
///     fanout: 1,
/// })
/// .generate();
/// let outcome = DistributedDriver::new(DistributedConfig {
///     strategy: MigrationStrategy::CollapsedWeights,
///     inference: InferenceConfig::default().without_change_detection(),
///     ..Default::default()
/// })
/// .run(&chain);
/// assert!(outcome.inference_runs > 0);
/// // Every byte that crossed a site boundary is accounted for:
/// assert_eq!(outcome.comm.total_bytes() > 0, !chain.transfers.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DistributedDriver {
    config: DistributedConfig,
}

impl DistributedDriver {
    /// Create a driver with the given configuration.
    pub fn new(config: DistributedConfig) -> DistributedDriver {
        DistributedDriver { config }
    }

    /// The driver's configuration.
    pub fn config(&self) -> &DistributedConfig {
        &self.config
    }

    /// Replay the chain and return the outcome.
    ///
    /// Federated strategies run sequentially by default; set
    /// [`DistributedConfig::num_workers`] above `1` to shard sites across
    /// worker threads (the `parallel` module) with bit-identical results.
    pub fn run(&self, chain: &ChainTrace) -> DistributedOutcome {
        match self.config.strategy {
            MigrationStrategy::Centralized => self.run_centralized(chain),
            _ if self.config.num_workers > 1 && chain.sites.len() > 1 => {
                crate::parallel::run_parallel(self, chain)
            }
            _ => self.run_federated(chain),
        }
    }

    fn make_processor(&self) -> QueryProcessor {
        let mut processor = QueryProcessor::new();
        for query in &self.config.queries {
            processor.register(query.clone());
        }
        processor
    }

    /// Annotate an inferred event with the product property used by `IsA`
    /// predicates and feed it to a processor.
    fn feed_event(&self, processor: &mut QueryProcessor, mut event: ObjectEvent) {
        if let Some(property) = self.config.product_properties.get(&event.tag) {
            event.property = Some(property.clone());
        }
        processor.on_event(&event);
    }

    /// Sequential federated replay: every site's [`SiteState`] is driven by
    /// the calling thread, with shipments routed through in-process inboxes.
    /// This is the reference execution the parallel driver is bit-identical
    /// to.
    pub(crate) fn run_federated(&self, chain: &ChainTrace) -> DistributedOutcome {
        let ctx = FederatedCtx::new(self, chain);
        let mut sites: Vec<SiteState> = (0..chain.sites.len())
            .map(|site| SiteState::new(&ctx, chain, site))
            .collect();
        let mut ons = OnsTracker::new();
        let mut outbound: Vec<ShipmentMsg> = Vec::new();

        for t in 0..=ctx.horizon {
            let now = Epoch(t);
            // 0. Scheduled faults fire at the top of the epoch: a crash
            // destroys the volatile state before any of this epoch's
            // processing, and restore + replay happen here too.
            // 1+2. Local streams, then shipments arriving now.
            for site in sites.iter_mut() {
                site.maybe_crash(&ctx, chain, now);
                site.ingest(now);
                site.deliver(now);
            }
            // 3. Dispatches departing now: snapshot, export, forget…
            for site in sites.iter_mut() {
                site.depart(&ctx, now, &mut outbound);
            }
            // …then route the shipments and deliver the zero-transit ones
            // (arrive == depart), whose arrival pass already ran.
            if !outbound.is_empty() {
                for msg in outbound.drain(..) {
                    let dest = msg.to.0 as usize;
                    sites[dest].receive(msg);
                }
                for site in sites.iter_mut() {
                    site.deliver_zero_transit(now);
                }
            }
            // 4. Periodic inference and event-stream push, against the
            // custody map as of this epoch's dispatches.
            ons.advance(&chain.transfers, now);
            for site in sites.iter_mut() {
                site.step_and_feed(&ctx, now, ons.get());
                // 5. Durability: cut a checkpoint at the policy boundary.
                site.maybe_checkpoint(now);
            }
        }

        for site in sites.iter_mut() {
            site.finalize(Epoch(ctx.horizon));
        }
        let objects = chain.objects();
        let outcomes = sites
            .into_iter()
            .map(|site| site.into_outcome(&objects, ons.get()))
            .collect();
        merge_outcomes(outcomes, ons.into_ons())
    }

    /// The Centralized baseline: one engine over the disjoint union of the
    /// per-site location spaces, with every raw reading shipped to it.
    fn run_centralized(&self, chain: &ChainTrace) -> DistributedOutcome {
        let num_sites = chain.sites.len();
        let horizon = chain.sites.first().map(|s| s.meta.length).unwrap_or(0);
        let with_queries = !self.config.queries.is_empty();
        let stride = self.config.event_stride_secs.max(1);
        let site_locs = chain
            .sites
            .first()
            .map(|s| s.meta.num_locations)
            .unwrap_or(0);
        let total_locs = num_sites * site_locs;
        assert!(
            total_locs <= u16::MAX as usize,
            "global location space exceeds u16"
        );

        // Block-diagonal global read-rate table: within a site the measured
        // per-site table applies; across sites only stray background reads.
        let background = (0..site_locs)
            .flat_map(|r| {
                let table = &chain.sites[0].read_rates;
                (0..site_locs).map(move |a| table.rate(LocationId(r as u16), LocationId(a as u16)))
            })
            .fold(f64::INFINITY, f64::min)
            .min(1e-4);
        let mut global = ReadRateTable::uniform(total_locs, background);
        for (s, site) in chain.sites.iter().enumerate() {
            let offset = (s * site_locs) as u16;
            for r in 0..site_locs as u16 {
                for a in 0..site_locs as u16 {
                    global.set(
                        LocationId(offset + r),
                        LocationId(offset + a),
                        site.read_rates.rate(LocationId(r), LocationId(a)),
                    );
                }
            }
        }

        let mut engine = InferenceEngine::new(self.config.inference.clone(), global);
        let mut processor = self.make_processor();
        let mut comm = CommCost::new();
        let mut inference_runs = 0usize;
        let mut inference_wall = Duration::ZERO;
        let mut inference_stats = InferenceStats::default();
        let mut memory = MemoryStats::default();

        // Every reading of every site crosses the network, remapped into the
        // global location space. Reader outages from the fault plan drop
        // readings here exactly as the federated sites drop them in `ingest`,
        // and rogue-reader draws inject the same cloned readings (remapped
        // into the origin site's block); crashes, shipment faults and clock
        // skew do not apply — there are no inter-site shipments, the central
        // server is assumed durable, and the uplink timestamps readings on
        // ingestion rather than trusting the site clock.
        let mut readings: Vec<RawReading> = Vec::new();
        for (s, site) in chain.sites.iter().enumerate() {
            let offset = (s * site_locs) as u16;
            for r in site.readings.readings_unordered() {
                if let Some(plan) = &self.config.faults {
                    if plan.reading_dropped(s as u16, r.time) {
                        continue;
                    }
                }
                readings.push(RawReading::new(
                    r.time,
                    r.tag,
                    ReaderId(offset + r.reader.0),
                ));
                if let Some(plan) = &self.config.faults {
                    if let Some(slot) =
                        plan.rogue_reader_slot(s as u16, r.time, r.tag, site_locs as u16)
                    {
                        readings.push(RawReading::new(r.time, r.tag, ReaderId(offset + slot)));
                    }
                }
            }
        }
        readings.sort_unstable();
        readings.dedup();

        let mut sensors: Vec<SensorReading> = Vec::new();
        if with_queries {
            if let Some(model) = &self.config.temperature {
                for s in 0..num_sites {
                    let offset = (s * site_locs) as u16;
                    for reading in model.generate(site_locs, Epoch(horizon)) {
                        sensors.push(SensorReading::new(
                            reading.time,
                            LocationId(offset + reading.location.0),
                            reading.value,
                        ));
                    }
                }
                sensors.sort_by_key(|r| (r.time, r.location));
            }
        }

        let codec = WireCodec::new(self.config.wire_format);
        // The coordinator uplink runs the same reliable transport as the
        // federated edges when the fault plan can lose messages: per-batch
        // loss draws (keyed by origin site, epoch and attempt — partitions do
        // not apply to the uplink, which is assumed multipath), deterministic
        // backoff, per-attempt byte charging and one ack per delivered batch.
        // A delivered batch is ingested at its delivery epoch; an abandoned
        // one never reaches the engine, degrading the central estimate.
        let transport_mode =
            TransportMode::resolve(self.config.faults.as_ref(), &self.config.transport);
        let transport_cfg = self.config.transport;
        let mut tstats = TransportStats::default();
        let mut uplink_seqs: Vec<u64> = vec![0; num_sites];
        let mut deferred: BTreeMap<u32, Vec<Vec<u8>>> = BTreeMap::new();
        let mut reading_cursor = 0usize;
        let mut sensor_cursor = 0usize;
        let mut ran_at_horizon = false;
        let mut site_batch: Vec<RawReading> = Vec::new();
        for t in 0..=horizon {
            let now = Epoch(t);
            while sensor_cursor < sensors.len() && sensors[sensor_cursor].time <= now {
                processor.on_sensor(sensors[sensor_cursor]);
                sensor_cursor += 1;
            }
            // Batches retransmitted from earlier epochs that finally got
            // through land before this epoch's fresh forwarding.
            if let Some(late) = deferred.remove(&t) {
                for payload in late {
                    let decoded = codec
                        .decode_readings(&payload)
                        .expect("in-process reading batch decodes");
                    for reading in decoded {
                        engine.observe(reading);
                    }
                }
            }
            // Raw-reading forwarding: each site sends the epoch's readings as
            // one encoded batch message — what actually crosses the network —
            // and the server ingests the decoded batch. Delta encoding makes
            // the batch far cheaper than per-reading framing.
            let epoch_start = reading_cursor;
            while reading_cursor < readings.len() && readings[reading_cursor].time <= now {
                reading_cursor += 1;
            }
            if epoch_start < reading_cursor {
                let arrived = &readings[epoch_start..reading_cursor];
                for (site, uplink_seq) in uplink_seqs.iter_mut().enumerate() {
                    site_batch.clear();
                    site_batch.extend(
                        arrived
                            .iter()
                            .filter(|r| (r.reader.0 as usize) / site_locs.max(1) == site),
                    );
                    if site_batch.is_empty() {
                        continue;
                    }
                    let payload = codec.encode_readings(&site_batch);
                    if transport_mode == TransportMode::Reliable {
                        let plan = self
                            .config
                            .faults
                            .as_ref()
                            .expect("reliable transport implies a fault plan");
                        let mut attempts = 0u32;
                        let mut delivered: Option<u32> = None;
                        let mut send = t;
                        let mut k = 0u32;
                        loop {
                            if send > horizon {
                                break;
                            }
                            attempts += 1;
                            if !plan.forward_lost(site as u16, now, k) {
                                delivered = Some(send);
                                break;
                            }
                            if transport_cfg.max_retries.is_some_and(|max| k >= max) {
                                break;
                            }
                            let backoff = transport_cfg
                                .rto_base_secs
                                .checked_shl(k)
                                .map_or(transport_cfg.rto_max_secs, |b| {
                                    b.min(transport_cfg.rto_max_secs)
                                })
                                .max(1);
                            send = send.saturating_add(backoff);
                            k += 1;
                        }
                        for _ in 0..attempts {
                            comm.record(MessageKind::RawReadings, payload.len());
                        }
                        tstats.envelopes += 1;
                        tstats.transmissions += u64::from(attempts);
                        tstats.retransmissions += u64::from(attempts.saturating_sub(1));
                        match delivered {
                            Some(at) => {
                                let seq = *uplink_seq;
                                *uplink_seq += 1;
                                let ack = ControlMsg::Ack {
                                    from: num_sites as u16,
                                    to: site as u16,
                                    seq,
                                };
                                comm.record(MessageKind::Control, codec.encode_control(&ack).len());
                                tstats.acks += 1;
                                if at == t {
                                    let decoded = codec
                                        .decode_readings(&payload)
                                        .expect("in-process reading batch decodes");
                                    for reading in decoded {
                                        engine.observe(reading);
                                    }
                                } else {
                                    deferred.entry(at).or_default().push(payload);
                                }
                            }
                            None => tstats.abandoned += 1,
                        }
                    } else {
                        comm.record(MessageKind::RawReadings, payload.len());
                        if transport_mode == TransportMode::Optimistic {
                            tstats.envelopes += 1;
                            tstats.transmissions += 1;
                        }
                        let decoded = codec
                            .decode_readings(&payload)
                            .expect("in-process reading batch decodes");
                        for reading in decoded {
                            engine.observe(reading);
                        }
                    }
                }
            }
            if let Some(report) = engine.step(now) {
                inference_runs += 1;
                inference_wall += report.duration;
                inference_stats.absorb(&report.stats);
                ran_at_horizon = t == horizon;
            }
            if let Some(budget) = self.config.memory_budget {
                engine.enforce_budget(budget, now, &mut memory);
            }
            if with_queries && t % stride == 0 {
                for event in engine.events_at(now) {
                    self.feed_event(&mut processor, event);
                }
            }
        }
        if !ran_at_horizon {
            let report = engine.run_inference(Epoch(horizon));
            inference_runs += 1;
            inference_wall += report.duration;
            inference_stats.absorb(&report.stats);
        }

        // Custody bookkeeping (no messages: the server knows everything).
        let mut ons = Ons::new();
        for tr in &chain.transfers {
            ons.register(tr.tag, tr.to_site);
        }

        let mut containment = ContainmentMap::new();
        for object in chain.objects() {
            if let Some(container) = engine.container_of(object) {
                containment.set(object, container);
            }
        }

        DistributedOutcome {
            containment,
            comm,
            alerts: processor.alerts().to_vec(),
            query_state_shared_bytes: 0,
            query_state_unshared_bytes: 0,
            ons,
            inference_runs,
            inference_wall,
            inference_stats,
            transport: tstats,
            quarantine: Vec::new(),
            memory,
            ledgers: Vec::new(),
        }
    }
}
