//! Configuration of the distributed pipeline: which state migrates with an
//! object (Section 4.1 / Table 5) and what the per-site query processors run.

use rfid_core::InferenceConfig;
use rfid_query::ExposureQuery;
use rfid_sim::{FaultPlan, TemperatureModel};
use rfid_types::TagId;
use rfid_wire::WireFormat;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What travels with an object when it is dispatched to another site.
///
/// These are the alternatives evaluated in Section 5.3 and Table 5 of the
/// paper, from "ship nothing" to "ship every raw reading to a central
/// server".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationStrategy {
    /// Transfer nothing; every site infers from scratch (the "None"
    /// baseline). No inter-site messages are sent at all.
    None,
    /// Transfer the raw readings retained in the object's critical region
    /// and recent history (the "CR" method of Section 4.1, *Truncating
    /// History*).
    CriticalRegionReadings,
    /// Transfer one accumulated co-location weight per candidate container
    /// (Section 4.1, *Collapsing Inference State*) — the paper's headline
    /// method: near-centralized accuracy at a tiny fraction of the bytes.
    CollapsedWeights,
    /// Ship every raw reading of every site to a central server that runs
    /// one global inference — the accuracy upper bound and communication
    /// worst case.
    Centralized,
}

/// Tuning of the reliable-delivery transport (see `crate::transport`).
///
/// The transport activates automatically when the run's
/// [`FaultPlan`] can lose payloads or partition links
/// ([`FaultPlan::has_transport_faults`]); `always_on` forces the
/// sequence-number/dedup machinery even on loss-free plans, which the
/// equivalence tests use to pin that a reliable loss-free run is
/// bit-identical to direct delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportConfig {
    /// Base retransmission backoff added on top of the round-trip estimate;
    /// attempt `k` waits `rtt + min(rto_base_secs << k, rto_max_secs)`.
    pub rto_base_secs: u32,
    /// Cap on the exponential backoff term.
    pub rto_max_secs: u32,
    /// Retransmissions allowed per payload after the first attempt; `None`
    /// retries until the horizon (the "retry budget ∞" of the equivalence
    /// proptests).
    pub max_retries: Option<u32>,
    /// Run the sequence-number/dedup machinery even when the fault plan is
    /// loss-free (acks are elided, so the byte accounting is unchanged).
    pub always_on: bool,
}

impl Default for TransportConfig {
    fn default() -> TransportConfig {
        TransportConfig {
            rto_base_secs: 30,
            rto_max_secs: 480,
            max_retries: Some(5),
            always_on: false,
        }
    }
}

impl TransportConfig {
    /// A transport that never gives up: unlimited retries with a small
    /// backoff, so any partition shorter than the horizon is ridden out.
    pub fn persistent() -> TransportConfig {
        TransportConfig {
            rto_base_secs: 15,
            rto_max_secs: 120,
            max_retries: None,
            always_on: false,
        }
    }
}

/// Configuration of a [`DistributedDriver`](crate::DistributedDriver) run.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Which state migrates between sites.
    pub strategy: MigrationStrategy,
    /// Inference-engine configuration shared by every site.
    pub inference: InferenceConfig,
    /// Monitoring queries registered at every site (queries travel with the
    /// objects they track, so every site runs all of them).
    pub queries: Vec<ExposureQuery>,
    /// Product properties from the manufacturer's database, attached to the
    /// enriched events so query predicates like `IsA` can evaluate.
    pub product_properties: BTreeMap<TagId, String>,
    /// Temperature model joined against by hybrid queries; `None` disables
    /// sensor streams.
    pub temperature: Option<TemperatureModel>,
    /// Seconds between two pushes of enriched events into the query
    /// processors.
    pub event_stride_secs: u32,
    /// Number of worker threads the federated driver shards sites across.
    /// `1` (the default) replays every site sequentially on the calling
    /// thread; any larger value distributes sites round-robin over up to
    /// `num_workers` OS threads (capped at the site count), exchanging
    /// shipments over channels with an epoch barrier. Results are
    /// bit-identical to the sequential replay. Ignored by
    /// [`MigrationStrategy::Centralized`], which has a single engine.
    pub num_workers: usize,
    /// Wire representation of every cross-site payload (inference state,
    /// raw-reading forwarding, query-state bundles). The compact
    /// [`WireFormat::Binary`] codec is the default; [`WireFormat::Json`] is
    /// retained for debugging and back-compat tests. Both formats produce
    /// bit-identical accuracy, alerts and custody — only the bytes charged to
    /// [`CommCost`](crate::CommCost) (and the encode wall-clock) differ.
    pub wire_format: WireFormat,
    /// Checkpoint policy: every site cuts a durable
    /// [`SiteCheckpoint`](rfid_wire::SiteCheckpoint) at the end of each epoch
    /// that is a positive multiple of this period (encoded in the run's
    /// [`wire_format`](Self::wire_format)), and keeps only the newest one —
    /// incoming shipments received after it live in a journal that each new
    /// checkpoint compacts. `None` (the default) disables checkpointing.
    /// Checkpoints alone never change a run's outcome; they only matter when
    /// a [`FaultPlan`] crash restores from one. Ignored by
    /// [`MigrationStrategy::Centralized`].
    pub checkpoint_every_secs: Option<u32>,
    /// Deterministic fault schedule injected into the run (site crashes with
    /// restore-from-checkpoint, reader outages, delayed and duplicated
    /// shipments). `None` (the default) runs fault-free. The plan is queried
    /// identically by the sequential and parallel executors, so a faulty run
    /// is still bit-identical across worker counts; crashes with zero
    /// downtime are additionally bit-identical to the uninterrupted run.
    /// [`MigrationStrategy::Centralized`] honours reader outages only.
    pub faults: Option<FaultPlan>,
    /// Reliable-delivery transport tuning. Inert unless the fault plan has
    /// transport faults (loss/partitions/corruption) or
    /// [`always_on`](TransportConfig::always_on) is set.
    pub transport: TransportConfig,
    /// Per-site memory budget: once a site's retained observation history
    /// exceeds the cap, old epochs are collapsed into summary prior weights
    /// and cold evidence-cache entries are evicted
    /// ([`InferenceEngine::enforce_budget`](rfid_core::InferenceEngine::enforce_budget)),
    /// with high-water/compaction/eviction counters reported in checkpoints
    /// and the merged outcome. `None` (the default) retains everything the
    /// truncation policy keeps; an unbounded budget only tracks the
    /// high-water mark. The centralized strategy applies the budget to its
    /// single global engine.
    pub memory_budget: Option<rfid_core::MemoryBudget>,
}

impl Default for DistributedConfig {
    fn default() -> DistributedConfig {
        DistributedConfig {
            strategy: MigrationStrategy::CollapsedWeights,
            inference: InferenceConfig::default(),
            queries: Vec::new(),
            product_properties: BTreeMap::new(),
            temperature: None,
            event_stride_secs: 10,
            num_workers: 1,
            wire_format: WireFormat::Binary,
            checkpoint_every_secs: None,
            faults: None,
            transport: TransportConfig::default(),
            memory_budget: None,
        }
    }
}

impl DistributedConfig {
    /// Builder-style setter for the number of site-worker threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.num_workers = workers;
        self
    }

    /// Builder-style setter for the cross-site wire format.
    pub fn with_wire_format(mut self, format: WireFormat) -> Self {
        self.wire_format = format;
        self
    }

    /// Builder-style setter for the checkpoint period.
    pub fn with_checkpoints(mut self, every_secs: u32) -> Self {
        self.checkpoint_every_secs = Some(every_secs);
        self
    }

    /// Builder-style setter for the fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Builder-style setter for the transport tuning.
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// Builder-style setter for the per-site memory budget.
    pub fn with_memory_budget(mut self, budget: rfid_core::MemoryBudget) -> Self {
        self.memory_budget = Some(budget);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_uses_the_papers_method() {
        let config = DistributedConfig::default();
        assert_eq!(config.strategy, MigrationStrategy::CollapsedWeights);
        assert!(config.queries.is_empty());
        assert!(config.temperature.is_none());
        assert_eq!(config.event_stride_secs, 10);
        assert_eq!(config.num_workers, 1, "sequential by default");
        assert_eq!(DistributedConfig::default().with_workers(8).num_workers, 8);
        assert_eq!(config.wire_format, WireFormat::Binary, "compact by default");
        assert_eq!(
            config.checkpoint_every_secs, None,
            "no checkpoints by default"
        );
        assert!(config.faults.is_none(), "fault-free by default");
        assert!(config.memory_budget.is_none(), "no budget by default");
        assert_eq!(
            DistributedConfig::default()
                .with_memory_budget(rfid_core::MemoryBudget::capped(1024))
                .memory_budget,
            Some(rfid_core::MemoryBudget::capped(1024))
        );
        assert_eq!(config.transport, TransportConfig::default());
        assert_eq!(config.transport.max_retries, Some(5));
        assert!(!config.transport.always_on);
        assert_eq!(
            TransportConfig::persistent().max_retries,
            None,
            "persistent transport never gives up"
        );
        assert!(
            DistributedConfig::default()
                .with_transport(TransportConfig {
                    always_on: true,
                    ..TransportConfig::default()
                })
                .transport
                .always_on
        );
        assert_eq!(
            DistributedConfig::default()
                .with_checkpoints(300)
                .checkpoint_every_secs,
            Some(300)
        );
        assert!(DistributedConfig::default()
            .with_faults(FaultPlan::scripted_crash(4, 1, rfid_types::Epoch(100), 0))
            .faults
            .is_some());
        assert_eq!(
            DistributedConfig::default()
                .with_wire_format(WireFormat::Json)
                .wire_format,
            WireFormat::Json
        );
    }

    #[test]
    fn strategies_are_distinct_and_debuggable() {
        let all = [
            MigrationStrategy::None,
            MigrationStrategy::CriticalRegionReadings,
            MigrationStrategy::CollapsedWeights,
            MigrationStrategy::Centralized,
        ];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
            assert!(!format!("{a:?}").is_empty());
        }
    }
}
