//! Invariant oracles: post-run audits that every distributed outcome must
//! pass, chaotic or not.
//!
//! A chaos soak is only as good as its oracles: injecting crashes, loss,
//! corruption and skew proves nothing unless something checks that the
//! system degraded *accountably*. [`audit`] runs the full battery against a
//! finished [`DistributedOutcome`]:
//!
//! * **envelope conservation** — every envelope the transport accepted is
//!   abandoned, accepted or dark (receiver down through the horizon); every
//!   transmitted copy is received or left undelivered; byte-for-byte, per
//!   directed edge ([`EdgeLedger`](crate::EdgeLedger)'s doc equations);
//! * **transport cross-check** — the per-edge ledgers sum to the global
//!   [`TransportStats`](crate::TransportStats) counters, which are booked on
//!   entirely different code paths;
//! * **quarantine accounting** — every poisoned payload is in the
//!   quarantine ledger, once, and nowhere else;
//! * **ONS custody** — the custody registry equals the one recomputed from
//!   the static transfer schedule (custody never depends on inference);
//! * **containment sanity** — only the chain's objects are reported, never
//!   containers or unknown tags.
//!
//! The crash-convergence oracle ("a zero-downtime crash-restore at any
//! chaos point is bit-identical to the uncrashed run") needs two runs to
//! state, so it lives in the test suites and the chaos bench runner rather
//! than here.

use crate::driver::DistributedOutcome;
use crate::ons::Ons;
use rfid_sim::ChainTrace;
use std::collections::BTreeSet;
use std::fmt;

/// One failed invariant: which oracle fired and what it saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the oracle that fired.
    pub oracle: &'static str,
    /// Human-readable account of the imbalance.
    pub detail: String,
}

impl Violation {
    fn new(oracle: &'static str, detail: String) -> Violation {
        Violation { oracle, detail }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oracle `{}` violated: {}", self.oracle, self.detail)
    }
}

impl std::error::Error for Violation {}

/// Audit a finished run against every invariant oracle. Returns the first
/// violation found, or `Ok(())` when the outcome is fully accountable.
pub fn audit(chain: &ChainTrace, outcome: &DistributedOutcome) -> Result<(), Violation> {
    edge_conservation(outcome)?;
    transport_cross_check(outcome)?;
    quarantine_accounting(outcome)?;
    ons_custody(chain, outcome)?;
    containment_sanity(chain, outcome)
}

/// The four per-edge ledger equations (see [`rfid_wire::EdgeLedger`]).
fn edge_conservation(outcome: &DistributedOutcome) -> Result<(), Violation> {
    for ledger in &outcome.ledgers {
        let edge = (ledger.from, ledger.to);
        if ledger.envelopes != ledger.abandoned + ledger.accepted + ledger.dark_envelopes {
            return Err(Violation::new(
                "edge-conservation",
                format!(
                    "edge {edge:?}: envelopes {} != abandoned {} + accepted {} + dark {}",
                    ledger.envelopes, ledger.abandoned, ledger.accepted, ledger.dark_envelopes
                ),
            ));
        }
        if ledger.sent_copies != ledger.recv_copies + ledger.undelivered {
            return Err(Violation::new(
                "edge-conservation",
                format!(
                    "edge {edge:?}: sent copies {} != received {} + undelivered {}",
                    ledger.sent_copies, ledger.recv_copies, ledger.undelivered
                ),
            ));
        }
        if ledger.sent_bytes != ledger.recv_bytes + ledger.undelivered_bytes {
            return Err(Violation::new(
                "edge-conservation",
                format!(
                    "edge {edge:?}: sent bytes {} != received {} + undelivered {}",
                    ledger.sent_bytes, ledger.recv_bytes, ledger.undelivered_bytes
                ),
            ));
        }
        if ledger.accepted != ledger.imported + ledger.stale + ledger.quarantined {
            return Err(Violation::new(
                "edge-conservation",
                format!(
                    "edge {edge:?}: accepted {} != imported {} + stale {} + quarantined {}",
                    ledger.accepted, ledger.imported, ledger.stale, ledger.quarantined
                ),
            ));
        }
    }
    Ok(())
}

/// The ledgers and the global transport counters are booked on different
/// code paths; their sums must agree. Skipped when no ledger exists (the
/// direct-delivery path and the centralized uplink keep no per-edge books).
fn transport_cross_check(outcome: &DistributedOutcome) -> Result<(), Violation> {
    if outcome.ledgers.is_empty() {
        return Ok(());
    }
    let t = &outcome.transport;
    let sums = [
        (
            "envelopes",
            outcome.ledgers.iter().map(|l| l.envelopes).sum::<u64>(),
            t.envelopes,
        ),
        (
            "abandoned",
            outcome.ledgers.iter().map(|l| l.abandoned).sum(),
            t.abandoned,
        ),
        (
            "quarantined",
            outcome.ledgers.iter().map(|l| l.quarantined).sum(),
            t.quarantined,
        ),
        (
            "stale",
            outcome.ledgers.iter().map(|l| l.stale).sum(),
            t.stale_dropped,
        ),
        (
            "duplicates",
            outcome
                .ledgers
                .iter()
                .map(|l| l.recv_copies - l.accepted)
                .sum(),
            t.duplicates_dropped,
        ),
    ];
    for (name, ledger_sum, transport_total) in sums {
        if ledger_sum != transport_total {
            return Err(Violation::new(
                "transport-cross-check",
                format!("ledger {name} sum {ledger_sum} != transport counter {transport_total}"),
            ));
        }
    }
    // A reliable receiver acks every arriving copy (acks == 0 means the
    // optimistic ack-free mode, where the equation does not apply).
    if t.acks > 0 {
        let recv: u64 = outcome.ledgers.iter().map(|l| l.recv_copies).sum();
        if recv != t.acks {
            return Err(Violation::new(
                "transport-cross-check",
                format!("received copies {recv} != acks {}", t.acks),
            ));
        }
    }
    Ok(())
}

/// Every quarantined envelope appears exactly once in the merged quarantine
/// ledger, matching the transport counter.
fn quarantine_accounting(outcome: &DistributedOutcome) -> Result<(), Violation> {
    let listed = outcome.quarantine.len() as u64;
    if listed != outcome.transport.quarantined {
        return Err(Violation::new(
            "quarantine-accounting",
            format!(
                "{listed} quarantine entries != transport counter {}",
                outcome.transport.quarantined
            ),
        ));
    }
    let mut seen = BTreeSet::new();
    for (site, entry) in &outcome.quarantine {
        if !seen.insert((*site, entry.from, entry.seq)) {
            return Err(Violation::new(
                "quarantine-accounting",
                format!(
                    "envelope (from {}, seq {}) quarantined twice at site {}",
                    entry.from, entry.seq, site.0
                ),
            ));
        }
    }
    Ok(())
}

/// Custody is a pure function of the static transfer schedule; the outcome's
/// registry must equal the recomputation.
fn ons_custody(chain: &ChainTrace, outcome: &DistributedOutcome) -> Result<(), Violation> {
    let mut expected = Ons::new();
    for tr in &chain.transfers {
        expected.register(tr.tag, tr.to_site);
    }
    if expected != outcome.ons {
        let diff = expected
            .iter()
            .find(|&(tag, site)| outcome.ons.lookup(tag) != Some(site))
            .map(|(tag, site)| {
                format!(
                    "tag {tag:?}: schedule says site {}, registry says {:?}",
                    site.0,
                    outcome.ons.lookup(tag)
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "registry has {} entries, schedule implies {}",
                    outcome.ons.len(),
                    expected.len()
                )
            });
        return Err(Violation::new("ons-custody", diff));
    }
    Ok(())
}

/// The reported containment only ever mentions the chain's objects.
fn containment_sanity(chain: &ChainTrace, outcome: &DistributedOutcome) -> Result<(), Violation> {
    let objects: BTreeSet<_> = chain.objects().into_iter().collect();
    for (object, _container) in outcome.containment.iter() {
        if !objects.contains(&object) {
            return Err(Violation::new(
                "containment-sanity",
                format!("containment reports {object:?}, which is not a chain object"),
            ));
        }
    }
    Ok(())
}

/// Convenience: audit and panic with the violation on failure. For tests and
/// bench runners, where an unaccountable run should abort loudly.
pub fn assert_audit(chain: &ChainTrace, outcome: &DistributedOutcome) {
    if let Err(violation) = audit(chain, outcome) {
        panic!("{violation}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DistributedConfig, MigrationStrategy};
    use crate::driver::DistributedDriver;
    use rfid_sim::{presets, ChaosPlan};
    use rfid_types::SiteId;

    fn outcome_under(plan: Option<rfid_sim::FaultPlan>) -> (ChainTrace, DistributedOutcome) {
        let chain = presets::smoke_chain(900, 3, None);
        let mut config = DistributedConfig {
            strategy: MigrationStrategy::CollapsedWeights,
            inference: rfid_core::InferenceConfig::default().without_change_detection(),
            ..DistributedConfig::default()
        };
        config.faults = plan;
        let outcome = DistributedDriver::new(config).run(&chain);
        (chain, outcome)
    }

    #[test]
    fn a_fault_free_run_passes_every_oracle() {
        let (chain, outcome) = outcome_under(None);
        assert!(outcome.ledgers.is_empty(), "direct path keeps no ledgers");
        audit(&chain, &outcome).unwrap();
    }

    #[test]
    fn a_chaotic_run_passes_every_oracle() {
        let chain = presets::smoke_chain(900, 3, None);
        let horizon = chain.sites[0].meta.length;
        let plan = ChaosPlan::soak(41, chain.sites.len() as u16, horizon);
        let (chain, outcome) = outcome_under(Some(plan.into_plan()));
        assert!(
            !outcome.ledgers.is_empty(),
            "a chaotic run books per-edge ledgers"
        );
        audit(&chain, &outcome).unwrap();
    }

    #[test]
    fn a_cooked_ledger_is_caught() {
        let chain = presets::smoke_chain(900, 3, None);
        let horizon = chain.sites[0].meta.length;
        let plan = ChaosPlan::soak(41, chain.sites.len() as u16, horizon);
        let (chain, mut outcome) = outcome_under(Some(plan.into_plan()));
        let ledger = outcome
            .ledgers
            .iter_mut()
            .find(|l| l.envelopes > 0)
            .expect("a chaotic run sends envelopes");
        ledger.envelopes += 1; // one envelope silently lost
        let violation = audit(&chain, &outcome).unwrap_err();
        assert_eq!(violation.oracle, "edge-conservation");
        assert!(violation.detail.contains("envelopes"));
        assert!(!format!("{violation}").is_empty());
    }

    #[test]
    fn a_cooked_custody_registry_is_caught() {
        let (chain, mut outcome) = outcome_under(None);
        let (tag, site) = outcome.ons.iter().next().expect("transfers registered");
        outcome.ons.register(tag, SiteId(site.0 + 1));
        let violation = audit(&chain, &outcome).unwrap_err();
        assert_eq!(violation.oracle, "ons-custody");
    }

    #[test]
    fn a_dropped_quarantine_entry_is_caught() {
        let chain = presets::smoke_chain(900, 3, None);
        let horizon = chain.sites[0].meta.length;
        // Corruption-heavy plan so at least one envelope is quarantined.
        let mut config = rfid_sim::FaultPlanConfig::quiet(
            presets::SMOKE_SEED,
            chain.sites.len() as u16,
            horizon,
        );
        config.corruption_probability = 1.0;
        let plan = rfid_sim::FaultPlan::generate(&config);
        let (chain, mut outcome) = outcome_under(Some(plan));
        assert!(
            outcome.transport.quarantined > 0,
            "a fully corrupted link quarantines every envelope"
        );
        outcome.quarantine.pop();
        let violation = audit(&chain, &outcome).unwrap_err();
        assert_eq!(violation.oracle, "quarantine-accounting");
    }
}
