//! Communication-cost accounting invariants of the distributed driver:
//! per-kind byte tallies always sum to the total, and the migration
//! strategies order exactly as Table 5 of the paper predicts
//! (None < CollapsedWeights < CriticalRegionReadings < Centralized).

use rfid_core::InferenceConfig;
use rfid_dist::{
    DistributedConfig, DistributedDriver, DistributedOutcome, MessageKind, MigrationStrategy,
};
use rfid_query::ExposureQuery;
use rfid_sim::{ChainConfig, ChainTrace, SupplyChainSimulator, TemperatureModel, WarehouseConfig};
use std::collections::BTreeMap;

fn chain() -> ChainTrace {
    SupplyChainSimulator::new(ChainConfig {
        warehouse: WarehouseConfig::default()
            .with_length(1800)
            .with_items_per_case(4)
            .with_cases_per_pallet(2)
            .with_seed(11),
        num_warehouses: 2,
        transit_secs: 90,
        fanout: 1,
    })
    .generate()
}

fn run(chain: &ChainTrace, strategy: MigrationStrategy) -> DistributedOutcome {
    DistributedDriver::new(DistributedConfig {
        strategy,
        inference: InferenceConfig::default().without_change_detection(),
        ..Default::default()
    })
    .run(chain)
}

fn kind_sum(outcome: &DistributedOutcome) -> usize {
    MessageKind::ALL
        .iter()
        .map(|&k| outcome.comm.bytes_of_kind(k))
        .sum()
}

#[test]
fn per_kind_tallies_sum_to_total_bytes_for_every_strategy() {
    let chain = chain();
    assert!(!chain.transfers.is_empty(), "the chain must see migrations");
    for strategy in [
        MigrationStrategy::None,
        MigrationStrategy::CollapsedWeights,
        MigrationStrategy::CriticalRegionReadings,
        MigrationStrategy::Centralized,
    ] {
        let outcome = run(&chain, strategy);
        assert_eq!(
            kind_sum(&outcome),
            outcome.comm.total_bytes(),
            "per-kind tallies must sum to the total under {strategy:?}"
        );
    }
}

#[test]
fn collapsed_weights_transfer_strictly_fewer_bytes_than_readings() {
    let chain = chain();
    let collapsed = run(&chain, MigrationStrategy::CollapsedWeights);
    let readings = run(&chain, MigrationStrategy::CriticalRegionReadings);
    let collapsed_state = collapsed.comm.bytes_of_kind(MessageKind::InferenceState);
    let readings_state = readings.comm.bytes_of_kind(MessageKind::InferenceState);
    assert!(collapsed_state > 0, "collapsed migration must ship state");
    assert!(
        collapsed_state < readings_state,
        "collapsing must shrink migrated inference state \
         ({collapsed_state} vs {readings_state} bytes)"
    );
    assert!(
        collapsed.comm.total_bytes() < readings.comm.total_bytes(),
        "collapsed total must undercut critical-region readings"
    );
    // both migrate the same objects, so custody traffic is identical
    assert_eq!(
        collapsed.comm.bytes_of_kind(MessageKind::OnsUpdate),
        readings.comm.bytes_of_kind(MessageKind::OnsUpdate)
    );
    // With per-shipment dedup of candidate-container readings, migrating the
    // critical regions must stay below shipping every raw reading: the
    // objects of one case no longer each re-ship their shared candidates.
    let central = run(&chain, MigrationStrategy::Centralized);
    assert!(
        readings.comm.total_bytes() < central.comm.total_bytes(),
        "deduplicated CR migration ({} bytes) must undercut centralized \
         raw-reading shipping ({} bytes)",
        readings.comm.total_bytes(),
        central.comm.total_bytes()
    );
}

#[test]
fn none_sends_nothing_and_centralized_ships_every_reading() {
    let chain = chain();
    let none = run(&chain, MigrationStrategy::None);
    assert_eq!(none.comm.total_bytes(), 0, "the None baseline is silent");
    assert_eq!(none.comm.total_messages(), 0);

    let central = run(&chain, MigrationStrategy::Centralized);
    assert_eq!(
        central.comm.total_bytes(),
        central.comm.bytes_of_kind(MessageKind::RawReadings),
        "centralized sends nothing but raw-reading forwarding"
    );
    assert!(
        central.comm.bytes_of_kind(MessageKind::RawReadings) > 0,
        "every reading still crosses the network"
    );
    // Forwarding is batched per (site, epoch) and delta-encoded by the
    // default binary codec: the bill must undercut the seed's flat
    // 14-bytes-per-reading framing by at least 2x...
    let flat = chain.total_readings() * rfid_types::RawReading::WIRE_BYTES;
    assert!(
        central.comm.total_bytes() * 2 < flat,
        "binary batches ({} B) must at least halve flat per-reading framing ({flat} B)",
        central.comm.total_bytes()
    );
    // ...and the message count is per batch, not per reading.
    assert!(central.comm.total_messages() < chain.total_readings());
}

#[test]
fn query_state_bytes_appear_only_when_queries_are_registered() {
    let chain = chain();
    let without = run(&chain, MigrationStrategy::CollapsedWeights);
    assert_eq!(without.comm.bytes_of_kind(MessageKind::QueryState), 0);
    assert_eq!(without.query_state_shared_bytes, 0);

    let mut properties = BTreeMap::new();
    for object in chain.objects() {
        properties.insert(object, "temperature-sensitive".to_string());
    }
    let with = DistributedDriver::new(DistributedConfig {
        strategy: MigrationStrategy::CollapsedWeights,
        inference: InferenceConfig::default().without_change_detection(),
        queries: vec![ExposureQuery {
            duration_secs: 600,
            ..ExposureQuery::q1([])
        }],
        product_properties: properties,
        temperature: Some(TemperatureModel::new([])),
        ..Default::default()
    })
    .run(&chain);
    assert!(with.comm.bytes_of_kind(MessageKind::QueryState) > 0);
    assert_eq!(
        with.query_state_shared_bytes,
        with.comm.bytes_of_kind(MessageKind::QueryState),
        "charged query-state bytes are the shared (compressed) bytes"
    );
    assert!(with.query_state_shared_bytes <= with.query_state_unshared_bytes);
    assert_eq!(kind_sum(&with), with.comm.total_bytes());
}

#[test]
fn custody_follows_the_last_transfer() {
    let chain = chain();
    let outcome = run(&chain, MigrationStrategy::CollapsedWeights);
    for tr in &chain.transfers {
        let site = outcome
            .ons
            .lookup(tr.tag)
            .expect("every transferred tag is registered");
        let last = chain.transfers.iter().rfind(|t| t.tag == tr.tag).unwrap();
        assert_eq!(site, last.to_site);
    }
}

/// A hand-built two-site chain with zero transit time and an object the
/// destination site never reads: the shipment departs and arrives in the
/// same epoch, and only the imported collapsed state can tell site 1 what
/// contains the item. Regression test for (a) same-epoch shipment delivery
/// and (b) imported containment surviving later inference runs.
#[test]
fn zero_transit_shipments_deliver_state_the_destination_cannot_relearn() {
    use rfid_sim::ObjectTransfer;
    use rfid_types::{
        ContainmentMap, ContainmentTimeline, Epoch, GroundTruth, LocationId, RawReading,
        ReadRateTable, ReaderId, ReadingBatch, SiteId, TagId, Trace, TraceMetadata,
    };

    let item = TagId::item(1);
    let case = TagId::case(1);
    let map: ContainmentMap = [(item, case)].into_iter().collect();
    let timeline = ContainmentTimeline::new(map);
    let rates = || ReadRateTable::diagonal(2, 0.8, 1e-4);

    // Site 0: item and case co-travel at location 0 until the dispatch.
    let mut readings0 = Vec::new();
    for t in 0..50u32 {
        readings0.push(RawReading::new(Epoch(t), item, ReaderId(0)));
        readings0.push(RawReading::new(Epoch(t), case, ReaderId(0)));
    }
    let mut truth0 = GroundTruth::new(timeline.clone());
    truth0.record_location(item, Epoch(0), LocationId(0));
    truth0.record_location(case, Epoch(0), LocationId(0));
    let site0 = Trace {
        readings: ReadingBatch::from_readings(readings0),
        truth: truth0,
        read_rates: rates(),
        meta: TraceMetadata::stable("site0", 0.8, 0.0, 100, 2),
    };

    // Site 1: only the case is ever read; the item is missed entirely.
    let mut readings1 = Vec::new();
    for t in 60..100u32 {
        readings1.push(RawReading::new(Epoch(t), case, ReaderId(1)));
    }
    let mut truth1 = GroundTruth::new(timeline.clone());
    truth1.record_location(case, Epoch(60), LocationId(1));
    truth1.record_location(item, Epoch(60), LocationId(1));
    let site1 = Trace {
        readings: ReadingBatch::from_readings(readings1),
        truth: truth1,
        read_rates: rates(),
        meta: TraceMetadata::stable("site1", 0.8, 0.0, 100, 2),
    };

    let chain = ChainTrace {
        sites: vec![site0, site1],
        transfers: vec![
            ObjectTransfer {
                tag: case,
                from_site: SiteId(0),
                to_site: SiteId(1),
                depart: Epoch(60),
                arrive: Epoch(60),
            },
            ObjectTransfer {
                tag: item,
                from_site: SiteId(0),
                to_site: SiteId(1),
                depart: Epoch(60),
                arrive: Epoch(60),
            },
        ],
        containment: timeline,
    };

    // Both execution modes must deliver the zero-transit shipment in the
    // post-departure pass of its epoch.
    for workers in [1usize, 2] {
        let outcome = DistributedDriver::new(DistributedConfig {
            strategy: MigrationStrategy::CollapsedWeights,
            inference: InferenceConfig::default()
                .with_period(20)
                .without_change_detection(),
            num_workers: workers,
            ..Default::default()
        })
        .run(&chain);

        assert_eq!(outcome.ons.lookup(item), Some(SiteId(1)));
        assert_eq!(
            outcome.container_of(item),
            Some(case),
            "workers={workers}: the zero-transit shipment must deliver the \
             collapsed state, and the destination must keep it even though \
             it never reads the item"
        );
    }
}

/// Regression test: two dispatches leave one site for the same destination in
/// the same epoch but with *different* arrival epochs. The driver used to key
/// the whole route group on the first matching transfer's arrival, so the
/// late shipment's state was imported too early. Here the late shipment
/// arrives only after the horizon: its state must still be in transit at the
/// end of the run — the destination cannot report a containment estimate it
/// has not received. The parallel driver must agree epoch for epoch.
#[test]
fn same_route_staggered_arrivals_import_at_their_own_epochs() {
    use rfid_sim::ObjectTransfer;
    use rfid_types::{
        ContainmentMap, ContainmentTimeline, Epoch, GroundTruth, LocationId, RawReading,
        ReadRateTable, ReaderId, ReadingBatch, SiteId, TagId, Trace, TraceMetadata,
    };

    let item_early = TagId::item(1);
    let item_late = TagId::item(2);
    let case = TagId::case(1);
    let map: ContainmentMap = [(item_early, case), (item_late, case)]
        .into_iter()
        .collect();
    let timeline = ContainmentTimeline::new(map);
    let rates = || ReadRateTable::diagonal(2, 0.8, 1e-4);

    // Site 0: both items co-travel with the case at location 0 until the
    // dispatch at epoch 60.
    let mut readings0 = Vec::new();
    for t in 0..50u32 {
        readings0.push(RawReading::new(Epoch(t), item_early, ReaderId(0)));
        readings0.push(RawReading::new(Epoch(t), item_late, ReaderId(0)));
        readings0.push(RawReading::new(Epoch(t), case, ReaderId(0)));
    }
    let mut truth0 = GroundTruth::new(timeline.clone());
    truth0.record_location(item_early, Epoch(0), LocationId(0));
    truth0.record_location(item_late, Epoch(0), LocationId(0));
    truth0.record_location(case, Epoch(0), LocationId(0));
    let site0 = Trace {
        readings: ReadingBatch::from_readings(readings0),
        truth: truth0,
        read_rates: rates(),
        meta: TraceMetadata::stable("site0", 0.8, 0.0, 100, 2),
    };

    // Site 1: only the case is ever read; the items are missed entirely, so
    // only imported state can tell this site what contains them.
    let mut readings1 = Vec::new();
    for t in 70..100u32 {
        readings1.push(RawReading::new(Epoch(t), case, ReaderId(1)));
    }
    let mut truth1 = GroundTruth::new(timeline.clone());
    truth1.record_location(case, Epoch(70), LocationId(1));
    let site1 = Trace {
        readings: ReadingBatch::from_readings(readings1),
        truth: truth1,
        read_rates: rates(),
        meta: TraceMetadata::stable("site1", 0.8, 0.0, 100, 2),
    };

    // Same route (0 → 1), same departure epoch, staggered arrivals: the case
    // and the first item arrive at 70; the second item arrives at 150 — far
    // beyond the 100-epoch horizon.
    let transfer = |tag, arrive| ObjectTransfer {
        tag,
        from_site: SiteId(0),
        to_site: SiteId(1),
        depart: Epoch(60),
        arrive: Epoch(arrive),
    };
    let chain = ChainTrace {
        sites: vec![site0, site1],
        transfers: vec![
            transfer(case, 70),
            transfer(item_early, 70),
            transfer(item_late, 150),
        ],
        containment: timeline,
    };

    for workers in [1usize, 2] {
        let outcome = DistributedDriver::new(DistributedConfig {
            strategy: MigrationStrategy::CollapsedWeights,
            inference: InferenceConfig::default()
                .with_period(20)
                .without_change_detection(),
            num_workers: workers,
            ..Default::default()
        })
        .run(&chain);

        assert_eq!(
            outcome.container_of(item_early),
            Some(case),
            "workers={workers}: the epoch-70 shipment must deliver its state"
        );
        assert_eq!(outcome.ons.lookup(item_late), Some(SiteId(1)));
        assert_eq!(
            outcome.container_of(item_late),
            None,
            "workers={workers}: the epoch-150 shipment is still in transit at \
             the horizon — importing it at the route's first arrival epoch is \
             the bug this test pins"
        );
    }
}
