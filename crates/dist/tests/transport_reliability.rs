//! Property tests for the reliable transport under *faulty* networks:
//!
//! * under an arbitrary seeded loss schedule the transport's accounting
//!   proves every payload reached the engine at most once — every arrived
//!   copy was acked, and every copy beyond the first accepted one was
//!   dropped by the receiver's dedup window;
//! * with an unlimited retry budget and partitions shorter than the horizon,
//!   degraded-mode cold starts plus late-state reconciliation converge to
//!   the *fault-free* final containment and custody — losing messages (but
//!   never giving up on them) costs bytes and latency, not accuracy;
//! * lossy runs are bit-identical across the sequential and parallel
//!   executors — the loss/ack/partition draws are pure functions of message
//!   keys, never of executor scheduling;
//! * a partition outliving the horizon forces degraded mode: envelopes are
//!   abandoned, the destination cold-starts, and the run still completes.

use proptest::prelude::*;
use rfid_core::InferenceConfig;
use rfid_dist::{
    DistributedConfig, DistributedDriver, DistributedOutcome, MessageKind, MigrationStrategy,
    TransportConfig,
};
use rfid_sim::{presets, ChainTrace, FaultPlan};
use std::sync::OnceLock;

const HORIZON: u32 = 1800;
const SITES: u32 = 3;

fn chain() -> &'static ChainTrace {
    static CHAIN: OnceLock<ChainTrace> = OnceLock::new();
    CHAIN.get_or_init(|| {
        let chain = presets::smoke_chain(HORIZON, SITES, None);
        assert!(!chain.transfers.is_empty(), "the chain must see migrations");
        chain
    })
}

fn config(strategy: MigrationStrategy, workers: usize) -> DistributedConfig {
    DistributedConfig {
        strategy,
        inference: InferenceConfig::default().without_change_detection(),
        ..Default::default()
    }
    .with_workers(workers)
}

/// The fault-free reference outcome per strategy (computed once).
fn fault_free(strategy: MigrationStrategy) -> &'static DistributedOutcome {
    static COLLAPSED: OnceLock<DistributedOutcome> = OnceLock::new();
    static READINGS: OnceLock<DistributedOutcome> = OnceLock::new();
    let cell = match strategy {
        MigrationStrategy::CollapsedWeights => &COLLAPSED,
        MigrationStrategy::CriticalRegionReadings => &READINGS,
        other => panic!("no fault-free reference cached for {other:?}"),
    };
    cell.get_or_init(|| DistributedDriver::new(config(strategy, 1)).run(chain()))
}

/// A loss-only plan (no crashes, outages, delays or duplicates) whose
/// partition windows are bounded well below the horizon.
fn lossy_network(seed: u64) -> FaultPlan {
    presets::lossy_network_plan(seed, SITES as u16, HORIZON, 0.25, 0.25, 0.3, HORIZON / 4)
}

/// A gentler loss schedule for the reconciliation property: light enough
/// that a useful fraction of seeds lose no envelope to the end of the run,
/// yet heavy enough that retransmission, dedup and late-state reconciliation
/// all fire.
fn reconcilable_network(seed: u64) -> FaultPlan {
    presets::lossy_network_plan(seed, SITES as u16, HORIZON, 0.1, 0.1, 0.2, HORIZON / 4)
}

/// The at-most-once ledger: every copy that arrived was acked, and the
/// acked copies split exactly into first-accepted deliveries
/// (`envelopes - abandoned`) plus dedup-dropped duplicates.
fn assert_at_most_once(outcome: &DistributedOutcome, label: &str) {
    let t = outcome.transport;
    assert_eq!(
        t.acks,
        (t.envelopes - t.abandoned) + t.duplicates_dropped,
        "{label}: ack ledger does not match at-most-once delivery \
         (envelopes {}, abandoned {}, duplicates {})",
        t.envelopes,
        t.abandoned,
        t.duplicates_dropped
    );
    assert_eq!(
        t.transmissions,
        t.envelopes + t.retransmissions,
        "{label}: transmissions must decompose into first sends + retries"
    );
    assert_eq!(
        outcome.comm.messages_of_kind(MessageKind::Control) as u64,
        t.acks + t.resyncs,
        "{label}: control-plane message count diverged from the ack ledger"
    );
}

proptest! {
    #[test]
    /// Retry budget ∞, partitions shorter than the horizon: whenever no
    /// envelope was abandoned or superseded (the tag moved on before its
    /// state caught up), the final containment and custody are bit-identical
    /// to the fault-free run — late arrivals reconcile through the dirty-set
    /// journal instead of corrupting state.
    fn unlimited_retries_reconcile_to_the_fault_free_outcome(seed in any::<u64>()) {
        let strategy = if seed % 2 == 0 {
            MigrationStrategy::CollapsedWeights
        } else {
            MigrationStrategy::CriticalRegionReadings
        };
        let faulted = DistributedDriver::new(
            config(strategy, 1)
                .with_faults(reconcilable_network(seed))
                .with_transport(TransportConfig::persistent()),
        )
        .run(chain());
        assert_at_most_once(&faulted, &format!("seed {seed} {strategy:?}"));
        // An attempt lost close enough to the horizon can run out of *time*
        // (never out of budget), and a copy can still lose the race against
        // the object's next departure; those runs legitimately degrade, so
        // only the clean ones are held to bit-identity.
        if faulted.transport.abandoned == 0 && faulted.transport.stale_dropped == 0 {
            let reference = fault_free(strategy);
            prop_assert_eq!(&faulted.containment, &reference.containment,
                "seed {} {:?}: containment diverged from fault-free", seed, strategy);
            prop_assert_eq!(&faulted.ons, &reference.ons,
                "seed {} {:?}: ONS custody diverged from fault-free", seed, strategy);
            prop_assert_eq!(faulted.inference_runs, reference.inference_runs,
                "seed {} {:?}: inference cadence diverged", seed, strategy);
        }
    }
}

proptest! {
    #[test]
    /// The loss/ack/partition draws are pure functions of message keys, so a
    /// lossy run — retransmissions, dedup drops, degraded-mode abandonments
    /// and all — is bit-identical across executors.
    fn lossy_runs_are_bit_identical_across_executors(seed in any::<u64>()) {
        let plan = lossy_network(seed);
        let sequential = DistributedDriver::new(
            config(MigrationStrategy::CollapsedWeights, 1).with_faults(plan.clone()),
        )
        .run(chain());
        let parallel = DistributedDriver::new(
            config(MigrationStrategy::CollapsedWeights, chain().sites.len())
                .with_faults(plan),
        )
        .run(chain());
        prop_assert_eq!(&sequential.containment, &parallel.containment);
        prop_assert_eq!(&sequential.ons, &parallel.ons);
        prop_assert_eq!(sequential.transport, parallel.transport);
        for kind in MessageKind::ALL {
            prop_assert_eq!(
                sequential.comm.bytes_of_kind(kind),
                parallel.comm.bytes_of_kind(kind),
                "seed {}: bytes of {:?} diverged", seed, kind
            );
            prop_assert_eq!(
                sequential.comm.messages_of_kind(kind),
                parallel.comm.messages_of_kind(kind),
                "seed {}: message count of {:?} diverged", seed, kind
            );
        }
        assert_at_most_once(&sequential, &format!("seed {seed}"));
    }
}

#[test]
fn a_partition_outliving_the_horizon_forces_degraded_mode() {
    // Sever 0 → 1 (and back) for the whole run: every envelope on that edge
    // exhausts its budget, the destinations cold-start the arriving objects,
    // and the run still completes with full custody.
    let plan = FaultPlan::scripted_partition(
        SITES as u16,
        0,
        1,
        rfid_types::Epoch(0),
        rfid_types::Epoch(HORIZON),
    );
    let sequential = DistributedDriver::new(
        config(MigrationStrategy::CollapsedWeights, 1).with_faults(plan.clone()),
    )
    .run(chain());
    let parallel = DistributedDriver::new(
        config(MigrationStrategy::CollapsedWeights, chain().sites.len()).with_faults(plan),
    )
    .run(chain());
    assert!(
        sequential.transport.abandoned > 0,
        "a permanent partition must abandon envelopes"
    );
    assert_eq!(sequential.transport, parallel.transport);
    assert_eq!(sequential.containment, parallel.containment);
    assert_eq!(
        sequential.ons,
        fault_free(MigrationStrategy::CollapsedWeights).ons,
        "custody follows the physical goods, not the state messages"
    );
    assert!(
        sequential.comm.bytes_of_kind(MessageKind::Control) > 0,
        "the surviving edges still ack their deliveries"
    );
}

#[test]
fn late_state_reconciliation_happens_under_lossy_acks() {
    // Scan a few seeds for a run where a retransmitted copy arrives *after*
    // the physical object (a lost first attempt), i.e. the destination
    // cold-started and then merged the late state.
    let mut seen_reconciled = 0u64;
    let mut seen_duplicates = 0u64;
    for seed in 0..10u64 {
        let outcome = DistributedDriver::new(
            config(MigrationStrategy::CollapsedWeights, 1)
                .with_faults(lossy_network(seed))
                .with_transport(TransportConfig::persistent()),
        )
        .run(chain());
        assert_at_most_once(&outcome, &format!("seed {seed}"));
        seen_reconciled += outcome.transport.reconciled;
        seen_duplicates += outcome.transport.duplicates_dropped;
        if seen_reconciled > 0 && seen_duplicates > 0 {
            return;
        }
    }
    panic!(
        "10 lossy seeds produced no reconciliation ({seen_reconciled}) \
         or no dedup drops ({seen_duplicates}) — the degraded path never ran"
    );
}
