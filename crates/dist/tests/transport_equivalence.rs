//! The headline transport invariant: a loss-free run through the reliable
//! transport (sequence numbers assigned, receiver-side dedup active) is
//! *bit-identical* to legacy direct delivery — same containment, same
//! per-kind communication bytes, same alerts, same ONS — across every
//! migration strategy, both wire formats, and both executors. Sequencing
//! and dedup are pure bookkeeping until the network actually misbehaves.

use rfid_core::InferenceConfig;
use rfid_dist::{
    audit, DistributedConfig, DistributedDriver, DistributedOutcome, MessageKind,
    MigrationStrategy, TransportConfig, WireFormat,
};
use rfid_query::ExposureQuery;
use rfid_sim::{presets, ChainTrace, ChaosPlan, FaultPlan, FaultPlanConfig, TemperatureModel};
use std::collections::BTreeMap;

fn smoke_chain() -> ChainTrace {
    presets::smoke_chain(1800, 3, None)
}

const STRATEGIES: [MigrationStrategy; 4] = [
    MigrationStrategy::None,
    MigrationStrategy::CriticalRegionReadings,
    MigrationStrategy::CollapsedWeights,
    MigrationStrategy::Centralized,
];

fn config(
    chain: &ChainTrace,
    strategy: MigrationStrategy,
    format: WireFormat,
    workers: usize,
) -> DistributedConfig {
    let mut properties = BTreeMap::new();
    for object in chain.objects() {
        properties.insert(object, "temperature-sensitive".to_string());
    }
    DistributedConfig {
        strategy,
        inference: InferenceConfig::default().without_change_detection(),
        queries: vec![ExposureQuery {
            duration_secs: 600,
            ..ExposureQuery::q1([])
        }],
        product_properties: properties,
        temperature: Some(TemperatureModel::new([])),
        ..Default::default()
    }
    .with_wire_format(format)
    .with_workers(workers)
}

/// Field-by-field equality, ignoring the transport counters themselves
/// (the transport-on run *does* count envelopes — what must not change is
/// everything observable: accuracy, bytes, alerts, custody).
fn assert_identical(seq: &DistributedOutcome, par: &DistributedOutcome, label: &str) {
    assert_eq!(
        seq.containment, par.containment,
        "{label}: containment diverged"
    );
    for kind in MessageKind::ALL {
        assert_eq!(
            seq.comm.bytes_of_kind(kind),
            par.comm.bytes_of_kind(kind),
            "{label}: bytes of {kind:?} diverged"
        );
        assert_eq!(
            seq.comm.messages_of_kind(kind),
            par.comm.messages_of_kind(kind),
            "{label}: message count of {kind:?} diverged"
        );
    }
    assert_eq!(seq.alerts, par.alerts, "{label}: alerts diverged");
    assert_eq!(
        seq.query_state_shared_bytes, par.query_state_shared_bytes,
        "{label}: shared query-state bytes diverged"
    );
    assert_eq!(
        seq.query_state_unshared_bytes, par.query_state_unshared_bytes,
        "{label}: unshared query-state bytes diverged"
    );
    assert_eq!(seq.ons, par.ons, "{label}: ONS custody diverged");
    assert_eq!(
        seq.inference_runs, par.inference_runs,
        "{label}: inference-run count diverged"
    );
}

#[test]
fn loss_free_transport_is_bit_identical_to_direct_delivery() {
    let chain = smoke_chain();
    assert!(!chain.transfers.is_empty(), "the chain must see migrations");
    let on = TransportConfig {
        always_on: true,
        ..TransportConfig::default()
    };
    for format in [WireFormat::Binary, WireFormat::Json] {
        for strategy in STRATEGIES {
            let baseline = DistributedDriver::new(config(&chain, strategy, format, 1)).run(&chain);
            assert_eq!(
                baseline.transport,
                Default::default(),
                "{strategy:?}/{format:?}: the transport must stay Off by default"
            );
            let sequential =
                DistributedDriver::new(config(&chain, strategy, format, 1).with_transport(on))
                    .run(&chain);
            let parallel = DistributedDriver::new(
                config(&chain, strategy, format, chain.sites.len()).with_transport(on),
            )
            .run(&chain);
            assert_identical(
                &baseline,
                &sequential,
                &format!("{strategy:?}/{format:?} seq"),
            );
            assert_identical(
                &baseline,
                &parallel,
                &format!("{strategy:?}/{format:?} par"),
            );
            assert_eq!(
                sequential.transport, parallel.transport,
                "{strategy:?}/{format:?}: transport counters diverged across executors"
            );
            // The transport really ran: payloads were sequenced and each was
            // delivered exactly once on the first attempt — no acks on the
            // wire (Control stays silent), nothing retransmitted, dropped,
            // reconciled or abandoned.
            let t = sequential.transport;
            if strategy == MigrationStrategy::None {
                // Nothing migrates: the transport has nothing to guard.
                assert_eq!(t.envelopes, 0, "{strategy:?}/{format:?}");
            } else {
                assert!(
                    t.envelopes > 0,
                    "{strategy:?}/{format:?}: no envelopes were sequenced"
                );
            }
            assert_eq!(t.transmissions, t.envelopes, "{strategy:?}/{format:?}");
            assert_eq!(t.retransmissions, 0, "{strategy:?}/{format:?}");
            assert_eq!(t.acks, 0, "{strategy:?}/{format:?}");
            assert_eq!(t.duplicates_dropped, 0, "{strategy:?}/{format:?}");
            assert_eq!(t.abandoned, 0, "{strategy:?}/{format:?}");
            assert_eq!(t.stale_dropped, 0, "{strategy:?}/{format:?}");
            assert_eq!(t.reconciled, 0, "{strategy:?}/{format:?}");
            assert_eq!(
                sequential.comm.bytes_of_kind(MessageKind::Control),
                0,
                "{strategy:?}/{format:?}: a loss-free run must put no control bytes on the wire"
            );
        }
    }
}

#[test]
fn a_calm_chaos_plan_is_bit_identical_to_direct_delivery() {
    // The chaos orchestrator with every fault family disabled is the
    // identity schedule: outcomes match the no-plan run field by field, the
    // transport stays asleep, no per-edge ledgers or quarantine entries are
    // booked — and the run still clears the full invariant-oracle battery.
    let chain = smoke_chain();
    let horizon = chain.sites[0].meta.length;
    let calm = ChaosPlan::calm(11, chain.sites.len() as u16, horizon);
    assert!(calm.plan().is_quiet(), "calm schedules carry no faults");
    for strategy in STRATEGIES {
        let baseline =
            DistributedDriver::new(config(&chain, strategy, WireFormat::Binary, 1)).run(&chain);
        let calmed = DistributedDriver::new(
            config(&chain, strategy, WireFormat::Binary, 1).with_faults(calm.clone().into_plan()),
        )
        .run(&chain);
        assert_identical(&baseline, &calmed, &format!("{strategy:?} calm chaos"));
        assert_eq!(
            calmed.transport,
            Default::default(),
            "{strategy:?}: a calm chaos plan must not wake the transport"
        );
        assert!(
            calmed.ledgers.is_empty(),
            "{strategy:?}: the direct path keeps no per-edge ledgers"
        );
        assert!(
            calmed.quarantine.is_empty(),
            "{strategy:?}: nothing to quarantine on a calm run"
        );
        audit(&chain, &calmed).unwrap_or_else(|violation| {
            panic!("{strategy:?}: calm chaos run failed an oracle: {violation}")
        });
    }
}

#[test]
fn a_quiet_fault_plan_keeps_the_transport_off() {
    // A plan with no loss, no ack loss and no partitions — even combined
    // with `always_on: false` — must leave the legacy direct-delivery path
    // byte-exact (this is what keeps the `faults` benchmark stable).
    let chain = smoke_chain();
    let horizon = chain.sites[0].meta.length;
    let plan = FaultPlan::generate(&FaultPlanConfig::quiet(
        7,
        chain.sites.len() as u16,
        horizon,
    ));
    for strategy in STRATEGIES {
        let baseline =
            DistributedDriver::new(config(&chain, strategy, WireFormat::Binary, 1)).run(&chain);
        let quieted = DistributedDriver::new(
            config(&chain, strategy, WireFormat::Binary, 1).with_faults(plan.clone()),
        )
        .run(&chain);
        assert_identical(&baseline, &quieted, &format!("{strategy:?} quiet plan"));
        assert_eq!(
            quieted.transport,
            Default::default(),
            "{strategy:?}: a quiet plan must not wake the transport"
        );
    }
}
